//! Workspace facade crate: re-exports every Rainbow layer so integration
//! tests and examples can depend on a single crate, mirroring how the paper's
//! applet bundles the whole system behind one entry point.

pub use rainbow_cc as cc;
pub use rainbow_commit as commit;
pub use rainbow_common as common;
pub use rainbow_control as control;
pub use rainbow_core as core;
pub use rainbow_net as net;
pub use rainbow_replication as replication;
pub use rainbow_storage as storage;
pub use rainbow_trace as trace;
pub use rainbow_wlg as wlg;
