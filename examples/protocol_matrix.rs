//! The replication-control protocol matrix, live: sweep every replication
//! protocol (ROWA, QC, AC, TQ, PC) across the standard fault scenarios and
//! print one availability/latency row per cell — the classroom experiment
//! the paper's protocol-configuration panel is built for.
//!
//! ```text
//! cargo run --release --example protocol_matrix
//! ```
//!
//! For the full grid with more workloads and machine-readable output, run
//! `cargo bench --bench protocol_sweep`, which writes
//! `BENCH_protocols.json`.

use rainbow_common::protocol::RcpKind;
use rainbow_control::{run_protocol_sweep, sweep_table, FaultScenario, SweepConfig};
use rainbow_wlg::WorkloadProfile;

fn main() {
    let config = SweepConfig {
        protocols: RcpKind::ALL.to_vec(),
        profiles: vec![WorkloadProfile::WriteHeavy],
        faults: FaultScenario::standard(),
        sites: 5,
        items: 24,
        replication_degree: 5,
        transactions: 30,
        mpl: 6,
        ..SweepConfig::default()
    };

    println!("Rainbow protocol matrix: 5 RCPs x write-heavy x 3 fault scenarios");
    println!("(every cell runs on a fresh 5-site cluster, replication degree 5)\n");

    let report = run_protocol_sweep(&config).expect("sweep failed");
    println!("{}", sweep_table("protocol matrix", &report).render());

    // Narrate the headline trade-offs the numbers show.
    let commit = |rcp: RcpKind, fault: &str| -> f64 {
        report
            .cell(rcp, "write-heavy", fault)
            .map(|c| c.commit_rate * 100.0)
            .unwrap_or(0.0)
    };
    println!("what to look for:");
    println!(
        "  - one site down:    ROWA writes block ({:.0}% commits) while AC keeps \
         writing to the available copies ({:.0}%)",
        commit(RcpKind::Rowa, "1-site-down"),
        commit(RcpKind::AvailableCopies, "1-site-down")
    );
    println!(
        "  - minority split:   QC commits from the majority side ({:.0}%) while the \
         write-all-available protocols time out on the unreachable holders",
        commit(RcpKind::QuorumConsensus, "minority-partition")
    );
    println!(
        "  - healthy cluster:  every protocol commits (QC {:.0}%, TQ {:.0}%, PC {:.0}%), \
         differing in message cost and latency, not availability",
        commit(RcpKind::QuorumConsensus, "healthy"),
        commit(RcpKind::TreeQuorum, "healthy"),
        commit(RcpKind::PrimaryCopy, "healthy")
    );
}
