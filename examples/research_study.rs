//! Research-study example (Section 3 of the paper): use Rainbow as an
//! experimentation tool to study quorum-consensus message traffic and
//! availability, the way the authors' earlier SETH work ([3]) did.
//!
//! ```text
//! cargo run -p rainbow-control --example research_study
//! ```

use rainbow_common::protocol::{ProtocolStack, RcpKind};
use rainbow_common::SiteId;
use rainbow_control::{ExperimentTable, Session};
use rainbow_wlg::{ArrivalProcess, WorkloadProfile};
use std::time::Duration;

fn study_session(rcp: RcpKind, sites: usize, degree: usize, seed: u64) -> Session {
    let mut session = Session::new();
    session.configure_sites(sites).expect("sites");
    session
        .configure_protocols(
            ProtocolStack::rainbow_default()
                .with_rcp(rcp)
                .with_quorum_timeout(Duration::from_millis(400))
                .with_commit_timeout(Duration::from_millis(400)),
        )
        .expect("protocols");
    session
        .configure_uniform_database(12, 100, degree)
        .expect("database");
    session.set_seed(seed);
    session.set_client_timeout(Duration::from_secs(3));
    session.start().expect("start");
    session
}

fn main() {
    // Study 1: message traffic per transaction, QC vs ROWA, as replication
    // degree grows (read-heavy workload).
    println!("== Study 1: message traffic vs replication degree ==");
    let mut traffic = ExperimentTable::new(
        "messages per transaction (read-heavy, 80 txns, MPL 8)",
        &["degree", "ROWA", "QC"],
    );
    for degree in [1usize, 3, 5] {
        let mut cells = vec![degree.to_string()];
        for rcp in [RcpKind::Rowa, RcpKind::QuorumConsensus] {
            let session = study_session(rcp, 5, degree, degree as u64);
            let report = session
                .run_generated(
                    WorkloadProfile::ReadHeavy,
                    80,
                    ArrivalProcess::Closed { mpl: 8 },
                )
                .expect("workload");
            let stats = session.statistics().expect("stats");
            drop(report);
            cells.push(format!("{:.1}", stats.messages_per_txn()));
        }
        traffic.row(&cells);
    }
    println!("{}", traffic.render());

    // Study 2: availability under failures — commit rate of a write-heavy
    // workload as copy holders crash.
    println!("== Study 2: availability under site failures ==");
    let mut availability = ExperimentTable::new(
        "commit rate with crashed copy holders (write-heavy, degree 5)",
        &["crashed sites", "ROWA commit%", "QC commit%"],
    );
    for crashed in [0usize, 1, 2] {
        let mut cells = vec![crashed.to_string()];
        for rcp in [RcpKind::Rowa, RcpKind::QuorumConsensus] {
            let session = study_session(rcp, 5, 5, 7 + crashed as u64);
            for i in 0..crashed {
                session.crash_site(SiteId((4 - i) as u32)).expect("crash");
            }
            let report = session
                .run_generated(
                    WorkloadProfile::WriteHeavy,
                    60,
                    ArrivalProcess::Closed { mpl: 6 },
                )
                .expect("workload");
            cells.push(format!("{:.1}", report.commit_rate() * 100.0));
        }
        availability.row(&cells);
    }
    println!("{}", availability.render());
    println!("Expected shape: ROWA wins slightly on failure-free read-heavy message cost;");
    println!("QC keeps committing writes once copy holders start failing, ROWA drops to ~0%.");
}
