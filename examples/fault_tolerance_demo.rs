//! Fault-tolerance walkthrough: crash a site in the middle of a running
//! workload, watch orphan transactions and RCP aborts appear in the
//! statistics, recover the site, and verify that the replicas converge and
//! committed data survived.
//!
//! ```text
//! cargo run -p rainbow-control --example fault_tolerance_demo
//! ```

use rainbow_common::protocol::ProtocolStack;
use rainbow_common::txn::TxnSpec;
use rainbow_common::{Operation, SiteId};
use rainbow_control::{render_stats_panel, ProgressRunner, Session};
use rainbow_wlg::{ArrivalProcess, WorkloadProfile};
use std::time::Duration;

fn main() {
    let mut session = Session::new();
    session.configure_sites(4).expect("sites");
    session
        .configure_protocols(
            ProtocolStack::rainbow_default()
                .with_quorum_timeout(Duration::from_millis(400))
                .with_commit_timeout(Duration::from_millis(400)),
        )
        .expect("protocols");
    session
        .configure_uniform_database(12, 1000, 3)
        .expect("database");
    session.set_client_timeout(Duration::from_secs(2));
    session.start().expect("start");

    // Seed the database with a committed marker value we will check after
    // the crash/recovery cycle.
    let marker = session
        .submit(TxnSpec::new("marker", vec![Operation::write("x0", 777i64)]))
        .expect("marker");
    println!("marker transaction: {:?}", marker.outcome);

    // Run a workload while site 3 crashes and recovers in the background.
    println!("running a write-heavy workload while site3 crashes and recovers...");
    let report = std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            session.run_generated(
                WorkloadProfile::WriteHeavy,
                120,
                ArrivalProcess::Closed { mpl: 8 },
            )
        });
        std::thread::sleep(Duration::from_millis(200));
        session.crash_site(SiteId(3)).expect("crash site3");
        println!("  >> site3 crashed");
        std::thread::sleep(Duration::from_millis(600));
        session.recover_site(SiteId(3)).expect("recover site3");
        println!("  >> site3 recovered");
        worker.join().expect("worker thread")
    })
    .expect("workload");

    println!(
        "workload finished: {} committed, {} aborted, {} orphaned",
        report.committed(),
        report.aborted(),
        report.orphaned()
    );

    // Verify durability and convergence.
    let check = session
        .submit(TxnSpec::new("check", vec![Operation::read("x0")]))
        .expect("check");
    println!("marker value after recovery: {:?}", check.reads);

    let pm = ProgressRunner::new(&session);
    let divergence = pm.replica_divergence().expect("divergence check");
    println!(
        "replica divergence after recovery: {}",
        if divergence.is_empty() {
            "none (all copies consistent)".to_string()
        } else {
            format!("{divergence:?}")
        }
    );
    println!(
        "{}",
        render_stats_panel(
            "fault tolerance demo",
            &session.statistics().expect("stats")
        )
    );
}
