//! Quickstart: configure a Rainbow instance, submit a few transactions and
//! read the statistics panel.
//!
//! This walks the three tiers of Figure 1/2 of the paper: the `Session` is
//! the GUI tier, its runner facades are the middle tier, and the name
//! server + sites it starts are the Rainbow core. Run with:
//!
//! ```text
//! cargo run -p rainbow-control --example quickstart
//! ```

use rainbow_common::protocol::ProtocolStack;
use rainbow_common::txn::TxnSpec;
use rainbow_common::{Operation, SiteId};
use rainbow_control::{ProgressRunner, Session, WorkloadRunner};
use rainbow_net::NetworkConfig;
use std::time::Duration;

fn main() {
    // 1. Configure the session (network first, then sites, protocols and the
    //    database — the order the paper prescribes).
    let mut session = Session::new();
    session
        .configure_network(
            NetworkConfig::lan(Duration::from_micros(200), Duration::from_millis(1)).with_seed(1),
        )
        .expect("configure network");
    session.configure_sites(4).expect("configure sites");
    session
        .configure_protocols(ProtocolStack::rainbow_default())
        .expect("configure protocols");
    session
        .configure_uniform_database(16, 100, 3)
        .expect("configure database");

    // 2. Start the Rainbow core: name server + 4 sites on a simulated LAN.
    session.start().expect("start Rainbow");
    println!(
        "Rainbow started with sites {:?} using stack {}",
        session.site_ids(),
        session.config().stack.label()
    );

    // 3. Submit a couple of transactions through the workload runner (the
    //    WLGlet role).
    let wlg = WorkloadRunner::new(&session);
    let transfer = wlg
        .submit(TxnSpec::new(
            "transfer",
            vec![
                Operation::increment("x0", -25),
                Operation::increment("x1", 25),
            ],
        ))
        .expect("submit transfer");
    println!(
        "transfer {} -> {:?} in {:?} using {} messages",
        transfer.id, transfer.outcome, transfer.response_time, transfer.messages
    );

    let audit = wlg
        .submit(TxnSpec::new(
            "audit",
            vec![Operation::read("x0"), Operation::read("x1")],
        ))
        .expect("submit audit");
    println!("audit reads: {:?}", audit.reads);

    // 4. Read the statistics panel through the progress runner (the PMlet
    //    role) and show one site's database view.
    let pm = ProgressRunner::new(&session);
    println!("{}", pm.render("quickstart").expect("render stats"));
    println!(
        "database view at site0 (first 4 items): {:?}",
        &pm.database_view(SiteId(0)).expect("database view")[..4]
    );
}
