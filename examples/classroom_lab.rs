//! Classroom lab assignment (Section 5 of the paper): students configure
//! sites, protocols and a small banking database, compose transactions
//! manually, inject a failure, and compare concurrency-control protocols.
//!
//! ```text
//! cargo run -p rainbow-control --example classroom_lab
//! ```

use rainbow_common::protocol::{CcpKind, ProtocolStack};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{Operation, SiteId};
use rainbow_control::{render_stats_panel, ExperimentTable, Session};
use rainbow_wlg::{ArrivalProcess, ManualWorkloadBuilder, WorkloadProfile};
use std::time::Duration;

/// Builds the lab's banking database: 8 accounts of 1000 units, fully
/// replicated on 3 sites.
fn lab_session(ccp: CcpKind) -> Session {
    let mut session = Session::new();
    session.configure_sites(3).expect("sites");
    session
        .configure_protocols(
            ProtocolStack::rainbow_default()
                .with_ccp(ccp)
                .with_lock_wait_timeout(Duration::from_millis(200)),
        )
        .expect("protocols");
    for account in 0..8 {
        session
            .declare_item(
                format!("account{account}"),
                1000i64,
                &[SiteId(0), SiteId(1), SiteId(2)],
            )
            .expect("declare item");
    }
    session.set_seed(2024);
    session.start().expect("start");
    session
}

fn main() {
    // Part 1 — manual transactions (the Figure A-2 panel): a transfer and an
    // audit, composed operation by operation.
    println!("== Part 1: manual transactions ==");
    let session = lab_session(CcpKind::TwoPhaseLocking);
    let manual = ManualWorkloadBuilder::new()
        .begin("tuition-payment")
        .increment("account0", -300)
        .increment("account7", 300)
        .at_site(SiteId(1))
        .begin("audit")
        .read("account0")
        .read("account7")
        .build();
    for result in session.submit_manual(manual).expect("manual workload") {
        println!(
            "  {:<16} {:?} reads={:?}",
            result.label, result.outcome, result.reads
        );
    }

    // Part 2 — inject a site failure and observe that the quorum-replicated
    // accounts stay available, then recover the site.
    println!("\n== Part 2: failure injection ==");
    session.crash_site(SiteId(2)).expect("crash");
    let during_failure = session
        .submit(TxnSpec::new(
            "while-site2-down",
            vec![
                Operation::increment("account1", -50),
                Operation::increment("account2", 50),
            ],
        ))
        .expect("submit during failure");
    println!("  during failure: {:?}", during_failure.outcome);
    session.recover_site(SiteId(2)).expect("recover");
    let after_recovery = session
        .submit(TxnSpec::new(
            "after-recovery",
            vec![Operation::read("account1"), Operation::read("account2")],
        ))
        .expect("submit after recovery");
    println!("  after recovery reads: {:?}", after_recovery.reads);
    println!(
        "{}",
        render_stats_panel("lab part 1+2 (2PL)", &session.statistics().expect("stats"))
    );

    // Part 3 — the homework question: how do 2PL and TSO differ under a
    // contended workload? Run the same generated workload under both.
    println!("== Part 3: 2PL vs TSO homework comparison ==");
    let mut table = ExperimentTable::new(
        "hot-spot workload, 60 transactions, MPL 8",
        &["CCP", "committed", "aborted", "commit%", "mean rt (ms)"],
    );
    for ccp in [CcpKind::TwoPhaseLocking, CcpKind::TimestampOrdering] {
        let session = lab_session(ccp);
        let report = session
            .run_generated(
                WorkloadProfile::HotSpotContention,
                60,
                ArrivalProcess::Closed { mpl: 8 },
            )
            .expect("generated workload");
        table.row(&[
            ccp.to_string(),
            report.committed().to_string(),
            report.aborted().to_string(),
            format!("{:.1}", report.commit_rate() * 100.0),
            format!("{:.2}", report.mean_response_time().as_secs_f64() * 1000.0),
        ]);
    }
    println!("{}", table.render());
    println!("Suggested exercise: re-run part 3 with CcpKind::MultiversionTimestampOrdering");
    println!("and explain why the read-only audit never aborts under MVTO.");
}
