//! End-to-end transaction tracing: run a traced workload, export the span
//! trees as a Chrome trace (loadable in Perfetto / `chrome://tracing`) and
//! print the phase-level latency breakdown plus the span tree of the
//! slowest transaction.
//!
//! Every transaction produces a tree of spans covering the whole stack:
//! the coordinator conversation and its operations, the per-site quorum
//! fan-out legs, the participants' concurrency-control decisions and
//! commit-protocol votes, WAL forces and simulated-network queueing. Run
//! with:
//!
//! ```text
//! cargo run --example trace_txn
//! ```
//!
//! The Chrome trace is written to `trace_txn.json` in the current
//! directory (CI uploads it as an artifact).

use rainbow_control::Session;
use rainbow_control::WorkloadRunner;
use rainbow_net::NetworkConfig;
use rainbow_trace::{ascii_span_tree, chrome_trace_json, validate_chrome_trace, TraceConfig};
use rainbow_wlg::{ArrivalProcess, WorkloadProfile};
use std::time::Duration;

fn main() {
    // 1. Configure a 4-site cluster on a simulated LAN with tracing on for
    //    every transaction (production setups would sample instead).
    let mut session = Session::new();
    session
        .configure_network(
            NetworkConfig::lan(Duration::from_micros(200), Duration::from_millis(1)).with_seed(7),
        )
        .expect("configure network");
    session.configure_sites(4).expect("configure sites");
    session
        .configure_uniform_database(16, 100, 3)
        .expect("configure database");
    session.set_tracing(TraceConfig::sample_all());
    session.start().expect("start Rainbow");

    // 2. Run 100 transactions of the hot-spot profile — contention makes
    //    the lock-wait phase visible in the histograms.
    let wlg = WorkloadRunner::new(&session);
    let report = wlg
        .run_profile(
            WorkloadProfile::HotSpotContention,
            100,
            ArrivalProcess::Closed { mpl: 8 },
        )
        .expect("run workload");
    println!(
        "ran {} transactions: {} committed, {} aborted\n",
        report.results.len(),
        report.stats.committed,
        report.stats.aborted
    );

    let tracer = session
        .tracer()
        .expect("cluster running")
        .expect("tracing enabled");

    // 3. Export every captured span as a Chrome trace-event JSON array and
    //    sanity-check it: valid JSON, balanced begin/end pairs.
    let events = tracer.events();
    let json = chrome_trace_json(&events);
    let check = validate_chrome_trace(&json).expect("exported trace must validate");
    std::fs::write("trace_txn.json", &json).expect("write trace_txn.json");
    println!(
        "wrote trace_txn.json: {} spans across {} transactions ({} begin / {} end events) — \
         load it at ui.perfetto.dev",
        check.begins, check.processes, check.begins, check.ends
    );

    // 4. Phase-level latency breakdown, aggregated over all 100
    //    transactions from the constant-memory log-bucketed histograms.
    println!("\nphase latency breakdown (ms):");
    println!(
        "  {:<12} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "phase", "count", "p50", "p95", "p99", "p999"
    );
    for (name, stats) in tracer.phase_stats() {
        println!(
            "  {:<12} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name,
            stats.count,
            stats.p50_us as f64 / 1000.0,
            stats.p95_us as f64 / 1000.0,
            stats.p99_us as f64 / 1000.0,
            stats.p999_us as f64 / 1000.0,
        );
    }

    // 5. The worst-N ring always keeps the slowest transactions — render
    //    the slowest one as an ASCII span tree.
    if let Some(&(txn, total_us)) = tracer.slowest().first() {
        println!(
            "\nslowest transaction {txn} ({:.3} ms end-to-end):",
            total_us as f64 / 1000.0
        );
        println!("{}", ascii_span_tree(&tracer.txn_events(txn)));
    }
}
