//! Interactive bank: conversational transactions through the `Client`/`Txn`
//! handles — read a balance, *decide*, then transfer — with retry-on-abort
//! while a site is crashed.
//!
//! This is the workload shape no one-shot `TxnSpec` can express: the write
//! set depends on values observed mid-transaction. The retry combinator
//! (`Client::run`) replays aborted or orphaned conversations with seeded
//! backoff, rotating the home site — so the bank keeps serving while a
//! Rainbow site is down.
//!
//! ```text
//! cargo run --example interactive_bank
//! ```

use rainbow_common::protocol::ProtocolStack;
use rainbow_common::txn::{TxnError, TxnSpec};
use rainbow_common::{Operation, SiteId};
use rainbow_control::Session;
use std::time::Duration;

fn main() {
    // A 3-site bank: every account fully replicated, majority quorums.
    let mut session = Session::new();
    session.configure_sites(3).expect("configure sites");
    session
        .configure_protocols(
            ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(200))
                .with_quorum_timeout(Duration::from_millis(500))
                .with_commit_timeout(Duration::from_millis(500)),
        )
        .expect("configure protocols");
    for account in ["alice", "bob", "carol"] {
        session
            .declare_item(account, 100i64, &[SiteId(0), SiteId(1), SiteId(2)])
            .expect("declare account");
    }
    session.set_client_timeout(Duration::from_millis(800));
    session.start().expect("start Rainbow");
    println!("bank open: 3 sites, accounts alice/bob/carol at 100 each");

    // Crash one site mid-business: conversations homed there will orphan
    // and must be retried elsewhere.
    session.crash_site(SiteId(2)).expect("crash site");
    println!("site2 crashed — conversations will route around it\n");

    let mut client = session.client().expect("client");
    for (from, to, amount) in [
        ("alice", "bob", 60i64),
        ("alice", "carol", 60),
        ("bob", "carol", 120),
    ] {
        // The conversation: read the source balance, transfer only when the
        // funds cover the amount. `Client::run` retries retryable failures
        // (orphaned begin at the crashed site, lock conflicts, quorum
        // timeouts) with a fresh transaction and seeded backoff.
        let conversation = client.run(format!("{from}->{to}"), |txn| {
            let balance = txn.read(from)?.as_int().unwrap_or(0);
            if balance < amount {
                println!("  {from}: insufficient funds ({balance} < {amount}), aborting");
                return Err(TxnError::Aborted(
                    rainbow_common::txn::AbortCause::UserAbort,
                ));
            }
            txn.increment(from, -amount)?;
            txn.increment(to, amount)?;
            Ok(balance)
        });
        match conversation {
            Ok((balance_before, receipt)) => println!(
                "  {from}->{to}: moved {amount} (balance was {balance_before}), \
                 txn {} committed after {} restart(s), {} messages",
                receipt.id, receipt.restarts, receipt.messages
            ),
            Err(error) => println!(
                "  {from}->{to}: gave up — {error} (layer {})",
                error.layer()
            ),
        }
    }

    // Recover the site and audit: money is conserved.
    session.recover_site(SiteId(2)).expect("recover site");
    let audit = session
        .submit(TxnSpec::new(
            "audit",
            vec![
                Operation::read("alice"),
                Operation::read("bob"),
                Operation::read("carol"),
            ],
        ))
        .expect("audit");
    let total: i64 = audit.reads.values().filter_map(|v| v.as_int()).sum();
    println!("\naudit after recovery: {:?}", audit.reads);
    assert_eq!(total, 300, "money must be conserved");
    println!("total = {total} — conserved across crash, retries and recovery");

    let stats = session.statistics().expect("stats");
    println!(
        "\nsession: {} submitted, {} committed, {} aborted, {} orphaned (commit rate {:.2})",
        stats.submitted,
        stats.committed,
        stats.aborted,
        stats.orphans,
        stats.commit_rate()
    );
}
