//! The chaos-matrix driver CI runs: seeded nemesis runs over a seed range ×
//! a set of replication protocols, with the serializability checker as the
//! oracle. Exits non-zero when any seed fails, after writing the failing
//! seed's artifacts (schedule, serialized history, checker verdict) to
//! `chaos-artifacts/` for upload and local replay.
//!
//! ```text
//! cargo run --release --example chaos -- --seeds 8 --rcps TQ,PC
//! cargo run --release --example chaos -- --seeds 64 --rcps ALL --events 8
//! cargo run --release --example chaos -- --rcps PC --seed-start 17 --seeds 1   # replay one seed
//! ```

use rainbow_common::protocol::{CcpKind, RcpKind};
use rainbow_control::{format_schedule, run_nemesis, NemesisConfig, NemesisReport};
use rainbow_core::StorageConfig;
use std::path::Path;

struct Args {
    seeds: u64,
    seed_start: u64,
    rcps: Vec<RcpKind>,
    ccps: Vec<CcpKind>,
    events: usize,
    spec_transactions: usize,
    interactive_transactions: usize,
    engine: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 4,
        seed_start: 0,
        rcps: vec![RcpKind::TreeQuorum, RcpKind::PrimaryCopy],
        ccps: vec![CcpKind::TwoPhaseLocking],
        events: 6,
        spec_transactions: 32,
        interactive_transactions: 8,
        engine: std::env::var("RAINBOW_ENGINE").unwrap_or_else(|_| "memory".into()),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value().parse().expect("--seeds takes a number"),
            "--seed-start" => {
                args.seed_start = value().parse().expect("--seed-start takes a number")
            }
            "--events" => args.events = value().parse().expect("--events takes a number"),
            "--txns" => args.spec_transactions = value().parse().expect("--txns takes a number"),
            "--conversations" => {
                args.interactive_transactions =
                    value().parse().expect("--conversations takes a number")
            }
            "--rcps" => {
                let list = value();
                args.rcps = if list.eq_ignore_ascii_case("all") {
                    RcpKind::ALL.to_vec()
                } else {
                    list.split(',')
                        .map(|name| name.parse().expect("unknown RCP in --rcps"))
                        .collect()
                };
            }
            "--engine" => {
                args.engine = value();
                assert!(
                    args.engine == "memory" || args.engine == "disk",
                    "--engine takes memory|disk"
                );
            }
            "--ccps" => {
                let list = value();
                args.ccps = if list.eq_ignore_ascii_case("all") {
                    vec![
                        CcpKind::TwoPhaseLocking,
                        CcpKind::TimestampOrdering,
                        CcpKind::MultiversionTimestampOrdering,
                    ]
                } else {
                    list.split(',')
                        .map(|name| match name.trim().to_ascii_uppercase().as_str() {
                            "2PL" => CcpKind::TwoPhaseLocking,
                            "TSO" => CcpKind::TimestampOrdering,
                            "MVTO" => CcpKind::MultiversionTimestampOrdering,
                            other => panic!("unknown CCP {other} in --ccps"),
                        })
                        .collect()
                };
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The coordinator design every run in this invocation uses — NemesisConfig
/// resolves it from the same environment variable, so recording the env
/// value (with the same default) records what actually ran.
fn coordinator_mode() -> String {
    match std::env::var("RAINBOW_COORDINATOR") {
        Ok(raw) if raw.trim().eq_ignore_ascii_case("reactor") => "reactor".into(),
        _ => "threads".into(),
    }
}

/// The span trees of every transaction a violation implicates, rendered
/// next to the verdict so the artifact shows *where* each anomalous
/// transaction spent its time.
fn format_anomaly_traces(report: &NemesisReport) -> String {
    if report.anomaly_traces.is_empty() {
        return String::new();
    }
    let mut out = String::from("\nanomalous transaction traces:\n");
    for (txn, tree) in &report.anomaly_traces {
        out.push_str(&format!("\n--- {txn} ---\n{tree}"));
    }
    out
}

fn write_artifacts(dir: &Path, report: &NemesisReport, args: &Args) {
    std::fs::create_dir_all(dir).expect("create chaos-artifacts/");
    let tag = format!("{}-seed{}", report.stack.replace('+', "_"), report.seed);
    let seed_file = dir.join(format!("failing-{tag}.txt"));
    let mut layers = report.stack.split('+');
    let rcp = layers.next().unwrap_or("QC");
    let ccp = layers.next().unwrap_or("2PL");
    // The replay command must pin *everything* the schedule and workload
    // derive from — seed, event budget, workload volume, the quorum
    // fan-out path and the coordinator design — or the local run would
    // rebuild a different scenario than the one that failed.
    let quorum_path = std::env::var("RAINBOW_PARALLEL_QUORUMS").unwrap_or_else(|_| "1".into());
    let coordinator = coordinator_mode();
    let replay = format!(
        "{}\ncoordinator: {coordinator}\n\nreplay locally:\n  \
         RAINBOW_PARALLEL_QUORUMS={quorum_path} RAINBOW_COORDINATOR={coordinator} \
         cargo run --release --example chaos -- \
         --rcps {rcp} --ccps {ccp} --seed-start {} --seeds 1 \
         --events {} --txns {} --conversations {} --engine {}\n\nschedule:\n{}\n\nverdict:\n{}\n{}",
        report.summary(),
        report.seed,
        args.events,
        args.spec_transactions,
        args.interactive_transactions,
        args.engine,
        format_schedule(&report.schedule),
        serde_json::to_string_pretty(&report.check).expect("verdict serializes"),
        format_anomaly_traces(report),
    );
    std::fs::write(&seed_file, replay).expect("write failing-seed artifact");
    let history_file = dir.join(format!("history-{tag}.json"));
    std::fs::write(
        &history_file,
        serde_json::to_string_pretty(&report.history).expect("history serializes"),
    )
    .expect("write history artifact");
    eprintln!(
        "wrote {} and {}",
        seed_file.display(),
        history_file.display()
    );
}

fn main() {
    let args = parse_args();
    let artifacts = Path::new("chaos-artifacts");
    let mut failures = 0usize;
    let mut runs = 0usize;

    // Disk runs share one root under the system temp dir; `run_nemesis`
    // gives every (stack, seed) run its own ephemeral subdirectory inside
    // it and the cluster removes that subdirectory at shutdown.
    let storage = if args.engine == "disk" {
        StorageConfig::disk(
            std::env::temp_dir().join(format!("rainbow-chaos-{}", std::process::id())),
        )
    } else {
        StorageConfig::memory()
    };

    for rcp in &args.rcps {
        for ccp in &args.ccps {
            let config = NemesisConfig {
                spec_transactions: args.spec_transactions,
                interactive_transactions: args.interactive_transactions,
                ..NemesisConfig::default()
            }
            .with_rcp(*rcp)
            .with_ccp(*ccp)
            .with_events(args.events)
            .with_storage(storage.clone());
            for seed in args.seed_start..args.seed_start + args.seeds {
                let report = run_nemesis(&config, seed).expect("nemesis run");
                runs += 1;
                println!("{}", report.summary());
                if !report.passed() {
                    failures += 1;
                    eprintln!("FAILING SEED {seed} ({rcp}+{ccp}) — schedule:");
                    eprintln!("{}", format_schedule(&report.schedule));
                    for violation in &report.check.violations {
                        eprintln!("  violation: {violation}");
                    }
                    write_artifacts(artifacts, &report, &args);
                }
            }
        }
    }

    println!(
        "chaos matrix: {runs} runs, {failures} failure(s) ({} coordinator, {} engine)",
        coordinator_mode(),
        args.engine
    );
    if failures > 0 {
        eprintln!(
            "replay any failing seed with the command inside its \
             chaos-artifacts/failing-*.txt"
        );
        std::process::exit(1);
    }
}
