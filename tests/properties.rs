//! Property-based tests (proptest) on the core data structures and protocol
//! invariants: quorum intersection, lock-manager safety, WAL replay
//! idempotence, MVTO read consistency, statistics accounting and the commit
//! state machines.

use proptest::prelude::*;
use rainbow_cc::{CcProtocol, LockManager, LockMode, MultiversionTimestampOrdering, TxnContext};
use rainbow_commit::{Coordinator, CoordinatorAction, Decision, Vote};
use rainbow_common::config::ItemPlacement;
use rainbow_common::protocol::{AcpKind, DeadlockPolicy};
use rainbow_common::stats::LatencyStats;
use rainbow_common::{ItemId, SiteId, Timestamp, TxnId, Value, Version};
use rainbow_replication::{QuorumConsensus, QuorumResponse, ReplicationControl};
use rainbow_storage::{LogRecord, WriteAheadLog};
use std::collections::BTreeMap;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Majority placements always produce intersecting read/write quorums
    /// and self-intersecting write quorums, for any replication degree and
    /// any vote weights.
    #[test]
    fn weighted_quorum_thresholds_intersect(weights in prop::collection::vec(1u32..5, 1..8)) {
        let copies: BTreeMap<SiteId, u32> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| (SiteId(i as u32), *w))
            .collect();
        let total: u32 = copies.values().sum();
        let write = total / 2 + 1;
        let read = total + 1 - write;
        let placement = ItemPlacement::weighted(copies, read, write);
        prop_assert!(placement.validate(&ItemId::new("x")).is_ok());
        prop_assert!(read + write > total);
        prop_assert!(2 * write > total);
    }

    /// Whatever subset of sites answers, a QC write quorum and a QC read
    /// quorum assembled from live responses always share at least one site.
    #[test]
    fn assembled_read_and_write_quorums_share_a_site(
        degree in 1usize..8,
        live_mask in prop::collection::vec(any::<bool>(), 8),
    ) {
        let sites: Vec<SiteId> = (0..degree as u32).map(SiteId).collect();
        let placement = ItemPlacement::majority(sites.clone());
        let rcp = QuorumConsensus::new();
        let item = ItemId::new("x");

        let mut read = rcp.plan_read(&item, &placement, None, &[]).collector();
        let mut write = rcp.plan_write(&item, &placement, &[]).collector();
        let mut read_sites = Vec::new();
        let mut write_sites = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            let alive = live_mask.get(i).copied().unwrap_or(true);
            if alive && !read.is_assembled() {
                read.record_response(QuorumResponse { site: *site, version: Version(i as u64), value: Some(Value::Int(0)) });
                read_sites.push(*site);
            }
        }
        for (i, site) in sites.iter().enumerate().rev() {
            let alive = live_mask.get(i).copied().unwrap_or(true);
            if alive && !write.is_assembled() {
                write.record_response(QuorumResponse { site: *site, version: Version(i as u64), value: None });
                write_sites.push(*site);
            }
        }
        if read.is_assembled() && write.is_assembled() {
            prop_assert!(
                read_sites.iter().any(|s| write_sites.contains(s)),
                "read {read_sites:?} and write {write_sites:?} quorums must intersect"
            );
        }
    }

    /// The lock manager never grants incompatible locks simultaneously,
    /// whatever interleaving of acquisitions and releases occurs.
    #[test]
    fn lock_manager_never_grants_conflicting_locks(
        ops in prop::collection::vec((0u64..6, 0usize..4, any::<bool>(), any::<bool>()), 1..60)
    ) {
        let lm = LockManager::new(DeadlockPolicy::WaitDie, Duration::from_millis(1));
        let items: Vec<ItemId> = (0..4).map(|i| ItemId::new(format!("i{i}"))).collect();
        // holders[item] = set of (txn, exclusive)
        let mut holders: BTreeMap<usize, Vec<(u64, bool)>> = BTreeMap::new();
        for (txn_seq, item_idx, exclusive, release) in ops {
            let txn = TxnId::new(SiteId(0), txn_seq);
            if release {
                lm.release_all(txn);
                for held in holders.values_mut() {
                    held.retain(|(t, _)| *t != txn_seq);
                }
                continue;
            }
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            let granted = lm
                .acquire(txn, Timestamp::new(txn_seq + 1, 0), &items[item_idx], mode)
                .is_ok();
            if granted {
                let held = holders.entry(item_idx).or_default();
                held.retain(|(t, _)| *t != txn_seq);
                held.push((txn_seq, exclusive));
                // Invariant: at most one exclusive holder, and no mix of
                // exclusive with anything else.
                let exclusives = held.iter().filter(|(_, x)| *x).count();
                if exclusives > 0 {
                    prop_assert_eq!(held.len(), 1, "exclusive lock shared: {:?}", held);
                }
            }
        }
    }

    /// Replaying a write-ahead log is idempotent and never loses the last
    /// committed version of an item.
    #[test]
    fn wal_replay_is_idempotent_and_monotonic(
        commits in prop::collection::vec((0u64..20, -100i64..100), 1..40),
        crash_after in 0usize..40,
    ) {
        let log = WriteAheadLog::new();
        log.checkpoint(vec![(ItemId::new("x"), Value::Int(0), Version(0))]);
        let mut last_committed = Value::Int(0);
        let mut last_version = Version(0);
        for (i, (seq, value)) in commits.iter().enumerate() {
            let version = Version(i as u64 + 1);
            let record = LogRecord::Commit {
                txn: TxnId::new(SiteId(0), *seq),
                writes: vec![(ItemId::new("x"), Value::Int(*value), version)],
            };
            if i < crash_after {
                log.append_forced(record);
                last_committed = Value::Int(*value);
                last_version = version;
            } else {
                // Unforced tail: lost on crash.
                log.append(record);
            }
        }
        log.simulate_crash();
        let once = rainbow_storage::recover(&log);
        let twice = rainbow_storage::recover(&log);
        prop_assert_eq!(once.state.clone(), twice.state.clone());
        let state = once.state.get(&ItemId::new("x")).expect("x must exist");
        prop_assert_eq!(&state.value, &last_committed);
        prop_assert_eq!(state.version, last_version);
    }

    /// MVTO readers always observe the value written by the youngest writer
    /// older than themselves, regardless of commit order.
    #[test]
    fn mvto_reads_are_consistent_with_timestamp_order(
        mut writer_ts in prop::collection::vec(1u64..1000, 1..12),
        reader_ts in 1u64..1200,
    ) {
        writer_ts.sort_unstable();
        writer_ts.dedup();
        let mvto = MultiversionTimestampOrdering::new();
        let item = ItemId::new("x");
        let current = (Value::Int(0), Version(0));
        // Commit writers in a scrambled (reversed) order to stress version
        // chain insertion.
        for (i, ts) in writer_ts.iter().enumerate().rev() {
            let ctx = TxnContext::new(TxnId::new(SiteId(0), i as u64 + 1), Timestamp::new(*ts, 0));
            if mvto.prewrite(&ctx, &item, current.clone()).is_granted() {
                mvto.commit(&ctx, &[(item.clone(), Value::Int(*ts as i64), Version(i as u64 + 1))]);
            }
        }
        let reader = TxnContext::new(TxnId::new(SiteId(1), 999), Timestamp::new(reader_ts, 1));
        let decision = mvto.read(&reader, &item, current);
        let expected: i64 = writer_ts
            .iter()
            .filter(|ts| Timestamp::new(**ts, 0) <= reader.ts)
            .max()
            .map(|ts| *ts as i64)
            .unwrap_or(0);
        match decision {
            rainbow_cc::CcDecision::Granted { value_override: Some((value, _)) } => {
                prop_assert_eq!(value, Value::Int(expected));
            }
            other => prop_assert!(false, "unexpected decision {:?}", other),
        }
    }

    /// The 2PC coordinator commits exactly when every participant votes yes,
    /// for every vote pattern.
    #[test]
    fn two_pc_commits_iff_all_votes_are_yes(votes in prop::collection::vec(any::<bool>(), 1..8)) {
        let participants: Vec<SiteId> = (0..votes.len() as u32).map(SiteId).collect();
        let mut coordinator = Coordinator::new(
            TxnId::new(SiteId(0), 1),
            AcpKind::TwoPhaseCommit,
            participants.clone(),
        );
        let action = coordinator.start();
        prop_assert_eq!(action, CoordinatorAction::SendPrepare(participants.clone()));
        for (site, yes) in participants.iter().zip(votes.iter()) {
            coordinator.on_vote(*site, if *yes { Vote::Yes } else { Vote::No });
        }
        let all_yes = votes.iter().all(|v| *v);
        prop_assert_eq!(
            coordinator.decision(),
            Some(if all_yes { Decision::Commit } else { Decision::Abort })
        );
    }

    /// Latency summaries are order-independent and bounded by min/max.
    #[test]
    fn latency_stats_are_permutation_invariant(mut samples_ms in prop::collection::vec(0u64..5000, 1..100)) {
        let durations: Vec<Duration> = samples_ms.iter().map(|ms| Duration::from_millis(*ms)).collect();
        let forward = LatencyStats::from_samples(&durations);
        samples_ms.reverse();
        let reversed: Vec<Duration> = samples_ms.iter().map(|ms| Duration::from_millis(*ms)).collect();
        let backward = LatencyStats::from_samples(&reversed);
        prop_assert_eq!(forward.clone(), backward);
        prop_assert!(forward.min_us <= forward.p50_us);
        prop_assert!(forward.p50_us <= forward.p95_us);
        prop_assert!(forward.p95_us <= forward.p99_us);
        prop_assert!(forward.p99_us <= forward.max_us);
        prop_assert!(forward.mean_us >= forward.min_us as f64);
        prop_assert!(forward.mean_us <= forward.max_us as f64);
    }
}
