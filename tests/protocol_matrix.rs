//! The protocol matrix: every combination of RCP × CCP × ACP must process a
//! mixed workload correctly. This is the paper's central claim — protocols
//! are interchangeable "with minimum system-wide modifications" — exercised
//! end to end.

use rainbow_common::protocol::{AcpKind, CcpKind, DeadlockPolicy, ProtocolStack, RcpKind};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, Value};
use rainbow_control::{ProgressRunner, Session};
use rainbow_wlg::{ArrivalProcess, WorkloadProfile};
use std::time::Duration;

fn base_stack() -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(150))
        .with_quorum_timeout(Duration::from_millis(500))
        .with_commit_timeout(Duration::from_millis(500))
}

fn run_stack(stack: ProtocolStack) -> (usize, usize) {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session.configure_protocols(stack).unwrap();
    session.configure_uniform_database(8, 100, 3).unwrap();
    session.set_seed(17);
    session.start().unwrap();

    let report = session
        .run_generated(
            WorkloadProfile::WriteHeavy,
            40,
            ArrivalProcess::Closed { mpl: 6 },
        )
        .unwrap();

    // Whatever committed must be durable and consistent: total of all items
    // equals what an audit transaction reads, and replicas agree.
    let audit = session
        .submit(TxnSpec::new(
            "audit",
            (0..8).map(|i| Operation::read(format!("x{i}"))).collect(),
        ))
        .unwrap();
    assert!(audit.committed(), "audit failed: {:?}", audit.outcome);
    let pm = ProgressRunner::new(&session);
    assert!(pm.replica_divergence().unwrap().is_empty());

    (report.committed(), report.aborted())
}

#[test]
fn every_rcp_ccp_acp_combination_processes_a_workload() {
    for rcp in [RcpKind::QuorumConsensus, RcpKind::Rowa] {
        for ccp in [
            CcpKind::TwoPhaseLocking,
            CcpKind::TimestampOrdering,
            CcpKind::MultiversionTimestampOrdering,
        ] {
            for acp in [AcpKind::TwoPhaseCommit, AcpKind::ThreePhaseCommit] {
                let stack = base_stack().with_rcp(rcp).with_ccp(ccp).with_acp(acp);
                let (committed, aborted) = run_stack(stack);
                assert!(
                    committed > 0,
                    "{rcp:?}+{ccp:?}+{acp:?}: nothing committed ({aborted} aborted)"
                );
            }
        }
    }
}

#[test]
fn every_deadlock_policy_makes_progress_under_contention() {
    for policy in [
        DeadlockPolicy::WaitForGraph,
        DeadlockPolicy::WaitDie,
        DeadlockPolicy::WoundWait,
        DeadlockPolicy::TimeoutOnly,
    ] {
        // Under full-suite load on a single-CPU machine, one heavily
        // contended run can starve by timeout alone; genuine starvation must
        // reproduce on a second, independent run to fail the test.
        let mut committed = 0;
        for _attempt in 0..3 {
            let mut session = Session::new();
            session.configure_sites(3).unwrap();
            // More forgiving timeouts than the rest of the matrix: the
            // property under test is *progress*, and on a single-CPU CI
            // machine short timeouts can wall-clock-starve every
            // transaction at MPL 8 regardless of deadlock policy.
            session
                .configure_protocols(
                    base_stack()
                        .with_deadlock_policy(policy)
                        .with_lock_wait_timeout(Duration::from_millis(400))
                        .with_quorum_timeout(Duration::from_millis(1500))
                        .with_commit_timeout(Duration::from_millis(1500)),
                )
                .unwrap();
            session.configure_uniform_database(4, 100, 3).unwrap();
            session.start().unwrap();
            let report = session
                .run_generated(
                    WorkloadProfile::HotSpotContention,
                    40,
                    ArrivalProcess::Closed { mpl: 8 },
                )
                .unwrap();
            // Every transaction reached a decision (no infinite blocking).
            assert_eq!(report.results.len(), 40, "policy {policy}");
            committed = report.committed();
            if committed > 0 {
                break;
            }
        }
        assert!(committed > 0, "deadlock policy {policy} starved completely");
    }
}

#[test]
fn rowa_reads_are_cheaper_than_qc_reads_in_messages() {
    let run = |rcp: RcpKind| -> f64 {
        let mut session = Session::new();
        session.configure_sites(5).unwrap();
        session.configure_protocols(base_stack().with_rcp(rcp)).unwrap();
        session.configure_uniform_database(10, 100, 5).unwrap();
        session.set_seed(3);
        session.start().unwrap();
        let report = session
            .run_generated(
                WorkloadProfile::ReadOnlyScan,
                30,
                ArrivalProcess::Closed { mpl: 4 },
            )
            .unwrap();
        assert!(report.committed() > 0);
        report.messages_per_txn()
    };
    let rowa = run(RcpKind::Rowa);
    let qc = run(RcpKind::QuorumConsensus);
    assert!(
        rowa < qc,
        "ROWA read-only workloads must use fewer messages per txn (ROWA {rowa:.1} vs QC {qc:.1})"
    );
}

#[test]
fn mvto_lets_old_readers_commit_where_tso_aborts_them() {
    // Direct protocol-level comparison at one site, embedded in the full
    // system: under TSO a read arriving "late" (behind a committed write
    // with a larger timestamp) aborts at least sometimes under heavy
    // write contention, while MVTO read-only transactions never abort.
    let run = |ccp: CcpKind| -> (usize, usize) {
        let mut session = Session::new();
        session.configure_sites(2).unwrap();
        session.configure_protocols(base_stack().with_ccp(ccp)).unwrap();
        session.configure_uniform_database(2, 100, 2).unwrap();
        session.set_seed(5);
        session.start().unwrap();
        // Writers and readers race on the same two items.
        let mut committed_reads = 0;
        let mut aborted_reads = 0;
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..30 {
                    let _ = session.submit(TxnSpec::new(
                        format!("w{i}"),
                        vec![Operation::write("x0", i as i64)],
                    ));
                }
            });
            for i in 0..30 {
                let r = session
                    .submit(TxnSpec::new(
                        format!("r{i}"),
                        vec![Operation::read("x0"), Operation::read("x1")],
                    ))
                    .unwrap();
                if r.committed() {
                    committed_reads += 1;
                } else {
                    aborted_reads += 1;
                }
            }
            writer.join().unwrap();
        });
        (committed_reads, aborted_reads)
    };
    let (mvto_committed, mvto_aborted) = run(CcpKind::MultiversionTimestampOrdering);
    assert_eq!(
        mvto_aborted, 0,
        "MVTO read-only transactions must never abort ({mvto_committed} committed)"
    );
    // TSO is allowed to abort readers; we only check it still makes progress.
    let (tso_committed, _tso_aborted) = run(CcpKind::TimestampOrdering);
    assert!(tso_committed > 0);
}

#[test]
fn blind_writes_and_read_modify_writes_coexist() {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session.configure_protocols(base_stack()).unwrap();
    session.configure_uniform_database(3, 0, 3).unwrap();
    session.start().unwrap();

    let results = session
        .submit_manual(vec![
            TxnSpec::new("blind", vec![Operation::write("x0", 10i64)]),
            TxnSpec::new("rmw", vec![Operation::increment("x0", 5)]),
            TxnSpec::new(
                "mixed",
                vec![
                    Operation::read("x0"),
                    Operation::write("x1", 1i64),
                    Operation::increment("x2", -3),
                ],
            ),
        ])
        .unwrap();
    assert!(results.iter().all(|r| r.committed()));
    let check = session
        .submit(TxnSpec::new(
            "check",
            vec![
                Operation::read("x0"),
                Operation::read("x1"),
                Operation::read("x2"),
            ],
        ))
        .unwrap();
    assert_eq!(check.reads.get(&ItemId::new("x0")), Some(&Value::Int(15)));
    assert_eq!(check.reads.get(&ItemId::new("x1")), Some(&Value::Int(1)));
    assert_eq!(check.reads.get(&ItemId::new("x2")), Some(&Value::Int(-3)));
}
