//! The protocol matrix: every combination of RCP × CCP × ACP must process a
//! mixed workload correctly. This is the paper's central claim — protocols
//! are interchangeable "with minimum system-wide modifications" — exercised
//! end to end.

use rainbow_common::protocol::{AcpKind, CcpKind, DeadlockPolicy, ProtocolStack, RcpKind};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, SiteId, Value};
use rainbow_control::{ProgressRunner, Session};
use rainbow_wlg::{ArrivalProcess, WorkloadProfile};
use std::time::Duration;

fn base_stack() -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(150))
        .with_quorum_timeout(Duration::from_millis(500))
        .with_commit_timeout(Duration::from_millis(500))
        .with_parallel_quorums_from_env()
        .with_coordinator_from_env()
}

fn run_stack(stack: ProtocolStack) -> (usize, usize) {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session.configure_protocols(stack).unwrap();
    session.configure_uniform_database(8, 100, 3).unwrap();
    session.set_seed(17);
    session.start().unwrap();

    let report = session
        .run_generated(
            WorkloadProfile::WriteHeavy,
            40,
            ArrivalProcess::Closed { mpl: 6 },
        )
        .unwrap();

    // Whatever committed must be durable and consistent: total of all items
    // equals what an audit transaction reads, and replicas agree.
    let audit = session
        .submit(TxnSpec::new(
            "audit",
            (0..8).map(|i| Operation::read(format!("x{i}"))).collect(),
        ))
        .unwrap();
    assert!(audit.committed(), "audit failed: {:?}", audit.outcome);
    let pm = ProgressRunner::new(&session);
    assert!(pm.replica_divergence().unwrap().is_empty());

    (report.committed(), report.aborted())
}

#[test]
fn every_rcp_ccp_acp_combination_processes_a_workload() {
    for rcp in RcpKind::ALL {
        for ccp in [
            CcpKind::TwoPhaseLocking,
            CcpKind::TimestampOrdering,
            CcpKind::MultiversionTimestampOrdering,
        ] {
            for acp in [AcpKind::TwoPhaseCommit, AcpKind::ThreePhaseCommit] {
                let stack = base_stack().with_rcp(rcp).with_ccp(ccp).with_acp(acp);
                let (committed, aborted) = run_stack(stack);
                assert!(
                    committed > 0,
                    "{rcp:?}+{ccp:?}+{acp:?}: nothing committed ({aborted} aborted)"
                );
            }
        }
    }
}

#[test]
fn every_deadlock_policy_makes_progress_under_contention() {
    for policy in [
        DeadlockPolicy::WaitForGraph,
        DeadlockPolicy::WaitDie,
        DeadlockPolicy::WoundWait,
        DeadlockPolicy::TimeoutOnly,
    ] {
        // Under full-suite load on a single-CPU machine, one heavily
        // contended run can starve by timeout alone; genuine starvation must
        // reproduce on a second, independent run to fail the test.
        let mut committed = 0;
        for _attempt in 0..3 {
            let mut session = Session::new();
            session.configure_sites(3).unwrap();
            // More forgiving timeouts than the rest of the matrix: the
            // property under test is *progress*, and on a single-CPU CI
            // machine short timeouts can wall-clock-starve every
            // transaction at MPL 8 regardless of deadlock policy.
            session
                .configure_protocols(
                    base_stack()
                        .with_deadlock_policy(policy)
                        .with_lock_wait_timeout(Duration::from_millis(400))
                        .with_quorum_timeout(Duration::from_millis(1500))
                        .with_commit_timeout(Duration::from_millis(1500)),
                )
                .unwrap();
            session.configure_uniform_database(4, 100, 3).unwrap();
            session.start().unwrap();
            let report = session
                .run_generated(
                    WorkloadProfile::HotSpotContention,
                    40,
                    ArrivalProcess::Closed { mpl: 8 },
                )
                .unwrap();
            // Every transaction reached a decision (no infinite blocking).
            assert_eq!(report.results.len(), 40, "policy {policy}");
            committed = report.committed();
            if committed > 0 {
                break;
            }
        }
        assert!(committed > 0, "deadlock policy {policy} starved completely");
    }
}

#[test]
fn rowa_reads_are_cheaper_than_qc_reads_in_messages() {
    let run = |rcp: RcpKind| -> f64 {
        let mut session = Session::new();
        session.configure_sites(5).unwrap();
        session
            .configure_protocols(base_stack().with_rcp(rcp))
            .unwrap();
        session.configure_uniform_database(10, 100, 5).unwrap();
        session.set_seed(3);
        session.start().unwrap();
        let report = session
            .run_generated(
                WorkloadProfile::ReadOnlyScan,
                30,
                ArrivalProcess::Closed { mpl: 4 },
            )
            .unwrap();
        assert!(report.committed() > 0);
        report.messages_per_txn()
    };
    let rowa = run(RcpKind::Rowa);
    let qc = run(RcpKind::QuorumConsensus);
    assert!(
        rowa < qc,
        "ROWA read-only workloads must use fewer messages per txn (ROWA {rowa:.1} vs QC {qc:.1})"
    );
}

#[test]
fn mvto_lets_old_readers_commit_where_tso_aborts_them() {
    // Direct protocol-level comparison at one site, embedded in the full
    // system: under TSO a read arriving "late" (behind a committed write
    // with a larger timestamp) aborts at least sometimes under heavy
    // write contention, while MVTO read-only transactions never abort.
    let run = |ccp: CcpKind| -> (usize, usize) {
        let mut session = Session::new();
        session.configure_sites(2).unwrap();
        session
            .configure_protocols(base_stack().with_ccp(ccp))
            .unwrap();
        session.configure_uniform_database(2, 100, 2).unwrap();
        session.set_seed(5);
        session.start().unwrap();
        // Writers and readers race on the same two items.
        let mut committed_reads = 0;
        let mut aborted_reads = 0;
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..30 {
                    let _ = session.submit(TxnSpec::new(
                        format!("w{i}"),
                        vec![Operation::write("x0", i as i64)],
                    ));
                }
            });
            for i in 0..30 {
                let r = session
                    .submit(TxnSpec::new(
                        format!("r{i}"),
                        vec![Operation::read("x0"), Operation::read("x1")],
                    ))
                    .unwrap();
                if r.committed() {
                    committed_reads += 1;
                } else {
                    aborted_reads += 1;
                }
            }
            writer.join().unwrap();
        });
        (committed_reads, aborted_reads)
    };
    let (mvto_committed, mvto_aborted) = run(CcpKind::MultiversionTimestampOrdering);
    assert_eq!(
        mvto_aborted, 0,
        "MVTO read-only transactions must never abort ({mvto_committed} committed)"
    );
    // TSO is allowed to abort readers; we only check it still makes progress.
    let (tso_committed, _tso_aborted) = run(CcpKind::TimestampOrdering);
    assert!(tso_committed > 0);
}

#[test]
fn blind_writes_and_read_modify_writes_coexist() {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session.configure_protocols(base_stack()).unwrap();
    session.configure_uniform_database(3, 0, 3).unwrap();
    session.start().unwrap();

    let results = session
        .submit_manual(vec![
            TxnSpec::new("blind", vec![Operation::write("x0", 10i64)]),
            TxnSpec::new("rmw", vec![Operation::increment("x0", 5)]),
            TxnSpec::new(
                "mixed",
                vec![
                    Operation::read("x0"),
                    Operation::write("x1", 1i64),
                    Operation::increment("x2", -3),
                ],
            ),
        ])
        .unwrap();
    assert!(results.iter().all(|r| r.committed()));
    let check = session
        .submit(TxnSpec::new(
            "check",
            vec![
                Operation::read("x0"),
                Operation::read("x1"),
                Operation::read("x2"),
            ],
        ))
        .unwrap();
    assert_eq!(check.reads.get(&ItemId::new("x0")), Some(&Value::Int(15)));
    assert_eq!(check.reads.get(&ItemId::new("x1")), Some(&Value::Int(1)));
    assert_eq!(check.reads.get(&ItemId::new("x2")), Some(&Value::Int(-3)));
}

// ---------------------------------------------------------------------------
// Fault-injected quorums: every RCP must be *safe* under failures — a read
// either returns the latest committed value or the transaction aborts;
// a stale read is never acceptable, whatever the protocol's availability.
// ---------------------------------------------------------------------------

/// Drives alternating writes and reads of `x0` from home site 0 and checks
/// the safety oracle: every committed read equals the last committed write.
/// Returns the number of committed writes so callers can also assert the
/// protocol's *availability* under the injected fault.
fn write_read_oracle(session: &Session, rcp: RcpKind, mut expected: i64, rounds: i64) -> i64 {
    let mut committed_writes = 0;
    for round in 0..rounds {
        let value = 1_000 + round;
        let write = session
            .submit(
                TxnSpec::new(format!("w{round}"), vec![Operation::write("x0", value)])
                    .at_site(SiteId(0)),
            )
            .unwrap();
        assert!(
            !write.outcome.is_orphaned(),
            "{rcp}: write through a live home site must reach a decision"
        );
        if write.committed() {
            expected = value;
            committed_writes += 1;
        }
        let read = session
            .submit(
                TxnSpec::new(format!("r{round}"), vec![Operation::read("x0")]).at_site(SiteId(0)),
            )
            .unwrap();
        if read.committed() {
            assert_eq!(
                read.reads.get(&ItemId::new("x0")),
                Some(&Value::Int(expected)),
                "{rcp}: stale read after round {round} (committed write was {expected})"
            );
        }
    }
    committed_writes
}

fn fault_session(rcp: RcpKind) -> Session {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session
        .configure_protocols(base_stack().with_rcp(rcp))
        .unwrap();
    session.configure_uniform_database(4, 100, 3).unwrap();
    session.set_client_timeout(Duration::from_secs(3));
    session.start().unwrap();
    session
}

#[test]
fn every_rcp_never_serves_stale_reads_with_one_site_down() {
    for rcp in RcpKind::ALL {
        let session = fault_session(rcp);
        // Site 2 is a backup copy holder everywhere (and a tree leaf / not
        // the primary), so read availability survives for every protocol.
        session.crash_site(SiteId(2)).unwrap();
        let committed_writes = write_read_oracle(&session, rcp, 100, 3);

        // Availability is protocol-specific, and that asymmetry is the
        // experiment: write-all (ROWA) and root+children-majority (TQ, with
        // 3 copies the whole tree) block, the fault-adaptive protocols and
        // QC keep committing.
        match rcp {
            RcpKind::Rowa | RcpKind::TreeQuorum => assert_eq!(
                committed_writes, 0,
                "{rcp} writes must block with a copy holder down"
            ),
            RcpKind::QuorumConsensus | RcpKind::AvailableCopies | RcpKind::PrimaryCopy => {
                assert_eq!(
                    committed_writes, 3,
                    "{rcp} writes must survive a single backup crash"
                )
            }
        }

        // Reads stay available under every protocol while the fault holds.
        let read = session
            .submit(TxnSpec::new("avail", vec![Operation::read("x0")]).at_site(SiteId(0)))
            .unwrap();
        assert!(
            read.committed(),
            "{rcp}: read with one site down: {:?}",
            read.outcome
        );
    }
}

#[test]
fn every_rcp_never_serves_stale_reads_in_the_majority_partition() {
    for rcp in RcpKind::ALL {
        let session = fault_session(rcp);
        // Everything committed before the fault is fully replicated.
        let seeded = session
            .submit(TxnSpec::new("seed", vec![Operation::write("x0", 5i64)]).at_site(SiteId(0)))
            .unwrap();
        assert!(seeded.committed(), "{rcp} seed write: {:?}", seeded.outcome);

        // Isolate site 2: it is alive but unreachable — crucially *not* in
        // the fault controller's crash view, so the adaptive protocols must
        // not shrink their write sets around it.
        session.partition(&[vec![SiteId(2)]]).unwrap();
        let committed_writes = write_read_oracle(&session, rcp, 5, 3);
        match rcp {
            // Only quorum consensus can tell a safe majority apart from an
            // unsafe one without suspecting the partitioned site.
            RcpKind::QuorumConsensus => assert_eq!(
                committed_writes, 3,
                "QC writes must survive a minority partition"
            ),
            RcpKind::Rowa
            | RcpKind::AvailableCopies
            | RcpKind::TreeQuorum
            | RcpKind::PrimaryCopy => assert_eq!(
                committed_writes, 0,
                "{rcp} writes must abort rather than split-brain: the \
                 partitioned holder is alive and required"
            ),
        }

        // Heal: every protocol resumes committing and the healed cluster
        // agrees on the last committed value.
        session.heal_partition().unwrap();
        let write = session
            .submit(TxnSpec::new("healed", vec![Operation::write("x0", 9i64)]).at_site(SiteId(0)))
            .unwrap();
        assert!(write.committed(), "{rcp} after heal: {:?}", write.outcome);
        let read = session
            .submit(TxnSpec::new("verify", vec![Operation::read("x0")]).at_site(SiteId(1)))
            .unwrap();
        assert!(
            read.committed(),
            "{rcp} read after heal: {:?}",
            read.outcome
        );
        assert_eq!(
            read.reads.get(&ItemId::new("x0")),
            Some(&Value::Int(9)),
            "{rcp}: healed cluster must agree on the committed value"
        );
        let pm = ProgressRunner::new(&session);
        assert!(
            pm.replica_divergence().unwrap().is_empty(),
            "{rcp}: no two copies may disagree about the same version"
        );
    }
}

#[test]
fn primary_copy_fails_over_to_a_backup_and_back_reads_stay_fresh() {
    let session = fault_session(RcpKind::PrimaryCopy);
    // Commit through the primary (site 0, the lowest-numbered holder):
    // the synchronous backups receive the write too.
    let write = session
        .submit(TxnSpec::new("w", vec![Operation::write("x0", 7i64)]).at_site(SiteId(1)))
        .unwrap();
    assert!(write.committed(), "{:?}", write.outcome);

    // Kill the primary: the lease fails over to the next live holder and
    // reads keep returning the committed value.
    session.crash_site(SiteId(0)).unwrap();
    let read = session
        .submit(TxnSpec::new("r", vec![Operation::read("x0")]).at_site(SiteId(1)))
        .unwrap();
    assert!(read.committed(), "failover read: {:?}", read.outcome);
    assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(7)));

    // Writes during the failover commit on the surviving copies...
    let write = session
        .submit(TxnSpec::new("w2", vec![Operation::write("x0", 8i64)]).at_site(SiteId(1)))
        .unwrap();
    assert!(write.committed(), "failover write: {:?}", write.outcome);

    // ...and the failed-over reads observe them immediately.
    let read = session
        .submit(TxnSpec::new("r2", vec![Operation::read("x0")]).at_site(SiteId(2)))
        .unwrap();
    assert!(read.committed(), "{:?}", read.outcome);
    assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(8)));
}
