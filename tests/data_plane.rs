//! Property and differential tests for the data-plane hot path: interned
//! item ids, the sharded lock table, and the parallel quorum fan-out.

use proptest::prelude::*;
use rainbow_cc::{LockManager, LockMode, DEFAULT_LOCK_SHARDS};
use rainbow_common::protocol::{DeadlockPolicy, ProtocolStack, RcpKind};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, SiteId, Timestamp, TxnId, Value};
use rainbow_control::{Session, WorkloadRunner};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn txn(seq: u64) -> TxnId {
    TxnId::new(SiteId(0), seq)
}

fn ts(counter: u64) -> Timestamp {
    Timestamp::new(counter, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interned ids round-trip through strings and JSON, and equality /
    /// ordering / hashing agree with the underlying names.
    #[test]
    fn interned_item_ids_round_trip_and_order(names in prop::collection::vec((0u32..50, 0u32..4), 1..30)) {
        let ids: Vec<ItemId> = names
            .iter()
            .map(|(n, pad)| ItemId::new(format!("prop.{n}.{}", "x".repeat(*pad as usize))))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            // String round-trip.
            prop_assert_eq!(ItemId::new(id.name()), id.clone());
            // Serde round-trip through JSON.
            let json = serde_json::to_string(id).unwrap();
            let back: ItemId = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, id);
            // Equality agrees with names; ordering agrees with names.
            for other in &ids[i..] {
                prop_assert_eq!(id == other, id.name() == other.name());
                prop_assert_eq!(id.cmp(other), id.name().cmp(other.name()));
                prop_assert_eq!(id.token() == other.token(), id.name() == other.name());
            }
        }
        // Sorting ids sorts their names.
        let mut sorted = ids.clone();
        sorted.sort();
        let mut names_sorted: Vec<String> = ids.iter().map(|i| i.name().to_string()).collect();
        names_sorted.sort();
        let sorted_names: Vec<String> = sorted.iter().map(|i| i.name().to_string()).collect();
        prop_assert_eq!(sorted_names, names_sorted);
    }

    /// Shard invariant: whatever interleaving of acquisitions and releases
    /// occurs, incompatible locks are never held simultaneously — and the
    /// behavior is identical whether the table has 1 shard (the old global
    /// mutex layout) or many.
    #[test]
    fn sharded_lock_table_never_grants_conflicts(
        ops in prop::collection::vec((0u64..6, 0usize..8, any::<bool>(), any::<bool>()), 1..80),
        shards in 1usize..33,
    ) {
        let lm = LockManager::with_shards(
            DeadlockPolicy::WaitDie,
            Duration::from_millis(1),
            shards,
        );
        let items: Vec<ItemId> = (0..8).map(|i| ItemId::new(format!("shard.i{i}"))).collect();
        let mut holders: BTreeMap<usize, Vec<(u64, bool)>> = BTreeMap::new();
        for (seq, item_idx, exclusive, release) in ops {
            let t = txn(seq);
            if release {
                lm.release_all(t);
                for held in holders.values_mut() {
                    held.retain(|(h, _)| *h != seq);
                }
                continue;
            }
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            if lm.acquire(t, ts(seq + 1), &items[item_idx], mode).is_ok() {
                let held = holders.entry(item_idx).or_default();
                held.retain(|(h, _)| *h != seq);
                held.push((seq, exclusive));
                let exclusives = held.iter().filter(|(_, x)| *x).count();
                if exclusives > 0 {
                    prop_assert_eq!(held.len(), 1, "exclusive lock shared: {:?}", held);
                }
            }
        }
    }

    /// No lost waiters: a transaction blocked on a busy item is always woken
    /// and granted once the holder releases, for every shard count.
    #[test]
    fn sharded_lock_table_wakes_waiters(shards in 1usize..17, item_n in 0u32..12) {
        let lm = Arc::new(LockManager::with_shards(
            DeadlockPolicy::TimeoutOnly,
            Duration::from_millis(2_000),
            shards,
        ));
        let item = ItemId::new(format!("wake.{item_n}"));
        lm.acquire(txn(1), ts(1), &item, LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let it2 = item.clone();
        let waiter = thread::spawn(move || lm2.acquire(txn(2), ts(2), &it2, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(5));
        lm.release_all(txn(1));
        prop_assert_eq!(waiter.join().unwrap(), Ok(()));
        prop_assert!(lm.held_by(txn(2)).contains(&item));
        lm.release_all(txn(2));
        prop_assert_eq!(lm.active_transactions(), 0);
        prop_assert_eq!(lm.item_entries(), 0, "idle entries must be pruned");
    }
}

/// Cross-shard deadlock detection: the two items are chosen so they land in
/// *different* shards, and the wait-for-graph cycle must still be found.
#[test]
fn deadlock_is_detected_across_shards() {
    let lm = Arc::new(LockManager::with_shards(
        DeadlockPolicy::WaitForGraph,
        Duration::from_millis(800),
        DEFAULT_LOCK_SHARDS,
    ));
    // Find two items that hash to different shards.
    let a = ItemId::new("xshard.a");
    let mut b = ItemId::new("xshard.b");
    for i in 0..64 {
        b = ItemId::new(format!("xshard.b{i}"));
        if (b.token() as usize) % DEFAULT_LOCK_SHARDS != (a.token() as usize) % DEFAULT_LOCK_SHARDS
        {
            break;
        }
    }
    assert_ne!(
        (a.token() as usize) % DEFAULT_LOCK_SHARDS,
        (b.token() as usize) % DEFAULT_LOCK_SHARDS,
        "test requires items in different shards"
    );

    lm.acquire(txn(1), ts(1), &a, LockMode::Exclusive).unwrap();
    lm.acquire(txn(2), ts(2), &b, LockMode::Exclusive).unwrap();

    let lm1 = Arc::clone(&lm);
    let b1 = b.clone();
    let h1 = thread::spawn(move || lm1.acquire(txn(1), ts(1), &b1, LockMode::Exclusive));
    thread::sleep(Duration::from_millis(40));
    // Closing the cycle from the other shard: T2 → a (held by T1).
    let result = lm.acquire(txn(2), ts(2), &a, LockMode::Exclusive);
    assert_eq!(result, Err(rainbow_cc::LockError::Deadlock));
    assert!(lm.stats().deadlock_aborts() >= 1);

    lm.release_all(txn(2));
    assert_eq!(h1.join().unwrap(), Ok(()));
    lm.release_all(txn(1));
}

fn stack(parallel: bool) -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(300))
        .with_quorum_timeout(Duration::from_millis(900))
        .with_commit_timeout(Duration::from_millis(900))
        .with_parallel_quorums(parallel)
        .with_coordinator_from_env()
}

type WorkloadObservation = (Vec<BTreeMap<ItemId, Value>>, Vec<(ItemId, Value)>);

fn run_workload(parallel: bool) -> WorkloadObservation {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session.configure_protocols(stack(parallel)).unwrap();
    session.configure_uniform_database(6, 100, 3).unwrap();
    session.start().unwrap();
    let wlg = WorkloadRunner::new(&session);

    // A deterministic multi-operation workload submitted serially (no
    // concurrency), so both fan-out strategies must produce identical reads
    // and identical final states.
    let mut reads = Vec::new();
    for round in 0..4i64 {
        let write = wlg
            .submit(TxnSpec::new(
                format!("w{round}"),
                vec![
                    Operation::write("x0", 10 * (round + 1)),
                    Operation::write("x1", 20 * (round + 1)),
                    Operation::increment("x2", 5),
                ],
            ))
            .unwrap();
        assert!(write.committed(), "serial write txn must commit");

        let read = wlg
            .submit(TxnSpec::new(
                format!("r{round}"),
                vec![
                    Operation::read("x0"),
                    Operation::read("x1"),
                    Operation::read("x2"),
                    Operation::read("x3"),
                ],
            ))
            .unwrap();
        assert!(read.committed(), "serial read txn must commit");
        reads.push(read.reads.clone());
    }

    // Final committed state, from a read-everything audit transaction.
    let audit = wlg
        .submit(TxnSpec::new(
            "audit",
            (0..6).map(|i| Operation::read(format!("x{i}"))).collect(),
        ))
        .unwrap();
    assert!(audit.committed());
    let state: Vec<(ItemId, Value)> = audit
        .reads
        .iter()
        .map(|(item, value)| (item.clone(), value.clone()))
        .collect();
    (reads, state)
}

/// Differential test: the parallel fan-out returns exactly the values and
/// final state the sequential RCP loop produces.
#[test]
fn parallel_fanout_matches_sequential_quorums() {
    let (sequential_reads, sequential_state) = run_workload(false);
    let (parallel_reads, parallel_state) = run_workload(true);
    assert_eq!(
        sequential_reads, parallel_reads,
        "per-txn read values differ"
    );
    assert_eq!(sequential_state, parallel_state, "final states differ");
}

/// Mixed access kinds on the *same* item in one transaction: a plain read's
/// quorum and a read-for-update's quorum run concurrently, and their replies
/// must not be cross-attributed — under ROWA the read round targets a single
/// site while the read-for-update targets every holder, which is exactly the
/// shape where mis-routing starves or contaminates a quorum.
#[test]
fn parallel_fanout_separates_mixed_access_kinds_on_one_item() {
    for rcp in [RcpKind::Rowa, RcpKind::QuorumConsensus] {
        let mut session = Session::new();
        session.configure_sites(3).unwrap();
        session
            .configure_protocols(stack(true).with_rcp(rcp))
            .unwrap();
        session.configure_uniform_database(4, 7, 3).unwrap();
        session.start().unwrap();
        let wlg = WorkloadRunner::new(&session);

        let result = wlg
            .submit(TxnSpec::new(
                "mixed",
                vec![
                    Operation::read("x0"),
                    Operation::increment("x0", 5),
                    Operation::read("x1"),
                ],
            ))
            .unwrap();
        assert!(
            result.committed(),
            "mixed-kind txn must commit under {rcp:?}: {result:?}"
        );
        assert_eq!(result.reads.get(&ItemId::new("x0")), Some(&Value::Int(7)));

        let audit = wlg
            .submit(TxnSpec::new("a", vec![Operation::read("x0")]))
            .unwrap();
        assert_eq!(
            audit.reads.get(&ItemId::new("x0")),
            Some(&Value::Int(12)),
            "increment must be installed under {rcp:?}"
        );
    }
}

/// The fan-out must also handle duplicate items inside one transaction
/// (reply demultiplexing with colliding keys).
#[test]
fn parallel_fanout_handles_duplicate_items_in_one_txn() {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session.configure_protocols(stack(true)).unwrap();
    session.configure_uniform_database(4, 7, 3).unwrap();
    session.start().unwrap();
    let wlg = WorkloadRunner::new(&session);

    let result = wlg
        .submit(TxnSpec::new(
            "dup",
            vec![
                Operation::read("x0"),
                Operation::read("x0"),
                Operation::write("x1", 99i64),
                Operation::read("x0"),
            ],
        ))
        .unwrap();
    assert!(
        result.committed(),
        "duplicate-item txn must commit: {result:?}"
    );
    assert_eq!(result.reads.get(&ItemId::new("x0")), Some(&Value::Int(7)));

    let audit = wlg
        .submit(TxnSpec::new("a", vec![Operation::read("x1")]))
        .unwrap();
    assert_eq!(audit.reads.get(&ItemId::new("x1")), Some(&Value::Int(99)));
}
