//! The interactive transaction API, exercised end to end:
//!
//! * a **differential** property: any `TxnSpec` replayed by hand through a
//!   `Client`/`Txn` conversation yields exactly the outcome, read values and
//!   final database state the one-shot adapter path (`Cluster::submit`)
//!   produces — looped across all five replication protocols and both
//!   quorum fan-out modes, since the adapter *is* a conversation and the
//!   two must never diverge;
//! * **drop safety**: an unfinished `Txn` aborts on drop (and a client that
//!   silently vanishes is idled out by the coordinator), releasing every
//!   CCP resource at every site;
//! * the **retry combinator** under faults: conversations homed at a
//!   crashed site orphan, retry elsewhere, and commit.

use rainbow_common::protocol::{ProtocolStack, RcpKind};
use rainbow_common::txn::{TxnError, TxnSpec};
use rainbow_common::{ItemId, Operation, Value};
use rainbow_core::{Cluster, ClusterConfig};
use rainbow_wlg::{WorkloadGenerator, WorkloadParams};
use std::collections::BTreeMap;
use std::time::Duration;

fn stack(rcp: RcpKind, parallel: bool) -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_rcp(rcp)
        .with_lock_wait_timeout(Duration::from_millis(200))
        .with_quorum_timeout(Duration::from_millis(600))
        .with_commit_timeout(Duration::from_millis(600))
        .with_parallel_quorums(parallel)
        .with_coordinator_from_env()
}

fn cluster(rcp: RcpKind, parallel: bool) -> Cluster {
    let config = ClusterConfig::quick(3, 8, 3)
        .unwrap()
        .with_stack(stack(rcp, parallel))
        .with_client_timeout(Duration::from_secs(5));
    Cluster::start(config).unwrap()
}

/// A deterministic mixed workload (reads, writes, increments) over the
/// quick-cluster item universe. The same seed produces the same specs for
/// both sides of the differential.
fn mixed_specs() -> Vec<TxnSpec> {
    let items: Vec<ItemId> = (0..8).map(|i| ItemId::new(format!("x{i}"))).collect();
    let params = WorkloadParams::default()
        .with_items(items)
        .with_transactions(10)
        .with_ops_range(1, 5)
        .with_read_fraction(0.5)
        .with_seed(91);
    let mut specs = WorkloadGenerator::new(params).generate();
    // Plus hand-picked shapes the generator rarely emits: empty, read-only,
    // write-then-read of the same item, duplicate reads.
    specs.push(TxnSpec::new("empty", vec![]));
    specs.push(TxnSpec::new(
        "write-then-read",
        vec![
            Operation::write("x0", 4242i64),
            Operation::read("x0"),
            Operation::read("x0"),
        ],
    ));
    specs.push(TxnSpec::new(
        "mixed-same-item",
        vec![
            Operation::read("x1"),
            Operation::increment("x1", 3),
            Operation::write("x2", 7i64),
        ],
    ));
    specs
}

/// Replays one spec by hand through an interactive conversation, mirroring
/// what the adapter does internally — but through the *public* handle API.
fn replay_by_hand(cluster: &Cluster, spec: &TxnSpec) -> (bool, BTreeMap<ItemId, Value>) {
    let mut client = cluster.client();
    let begin = match spec.home {
        Some(site) => client.begin_at(spec.label.clone(), site),
        None => client.begin(spec.label.clone()),
    };
    let mut txn = begin.expect("healthy cluster must accept begin");
    let mut observed = BTreeMap::new();
    for op in &spec.operations {
        let step: Result<(), TxnError> = match op {
            Operation::Read { item } => txn.read(item.clone()).map(|value| {
                observed.insert(item.clone(), value);
            }),
            Operation::Write { item, value } => txn.write(item.clone(), value.clone()),
            Operation::Increment { item, delta } => {
                txn.increment(item.clone(), *delta).map(|value| {
                    observed.insert(item.clone(), value);
                })
            }
        };
        if step.is_err() {
            return (false, observed);
        }
    }
    match txn.commit() {
        Ok(receipt) => (true, receipt.reads),
        Err(_) => (false, observed),
    }
}

fn audit_state(cluster: &Cluster) -> BTreeMap<ItemId, Value> {
    let audit = cluster.submit(TxnSpec::new(
        "audit",
        (0..8).map(|i| Operation::read(format!("x{i}"))).collect(),
    ));
    assert!(audit.committed(), "audit must commit: {:?}", audit.outcome);
    audit.reads
}

/// The acceptance-criteria differential: spec-adapter vs hand-driven
/// conversation, across the full RCP matrix and both fan-out modes.
#[test]
fn spec_replay_matches_adapter_across_rcps_and_fanout_modes() {
    for rcp in RcpKind::ALL {
        for parallel in [false, true] {
            let adapter_side = cluster(rcp, parallel);
            let handle_side = cluster(rcp, parallel);
            for spec in mixed_specs() {
                let adapter = adapter_side.submit(spec.clone());
                let (hand_committed, hand_reads) = replay_by_hand(&handle_side, &spec);
                assert_eq!(
                    adapter.committed(),
                    hand_committed,
                    "{rcp:?} parallel={parallel} '{}': outcome diverged (adapter: {:?})",
                    spec.label,
                    adapter.outcome
                );
                if adapter.committed() {
                    assert_eq!(
                        adapter.reads, hand_reads,
                        "{rcp:?} parallel={parallel} '{}': reads diverged",
                        spec.label
                    );
                }
            }
            assert_eq!(
                audit_state(&adapter_side),
                audit_state(&handle_side),
                "{rcp:?} parallel={parallel}: final states diverged"
            );
        }
    }
}

fn drain_cc_entries(cluster: &Cluster) -> bool {
    for _ in 0..60 {
        if cluster
            .active_cc_transactions()
            .values()
            .all(|count| *count == 0)
        {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

#[test]
fn dropped_txn_aborts_and_releases_locks() {
    let cluster = cluster(RcpKind::QuorumConsensus, true);
    let mut client = cluster.client();
    {
        let mut txn = client.begin("doomed").unwrap();
        // Shared locks on x0's quorum, exclusive locks on x1's.
        txn.read("x0").unwrap();
        txn.increment("x1", 5).unwrap();
        assert!(
            cluster
                .active_cc_transactions()
                .values()
                .any(|count| *count > 0),
            "the open conversation must hold CCP resources"
        );
        // Dropped here: neither commit nor abort was called.
    }
    assert!(
        drain_cc_entries(&cluster),
        "drop-abort must release every CCP entry: {:?} (lingering: {:?})",
        cluster.active_cc_transactions(),
        cluster.lingering_participants()
    );
    // The buffered increment must not have been installed.
    let read = cluster.submit(TxnSpec::new("check", vec![Operation::read("x1")]));
    assert_eq!(read.reads.get(&ItemId::new("x1")), Some(&Value::Int(100)));
    // The conversation was accounted as an abort, not leaked.
    let stats = cluster.stats();
    assert_eq!(stats.aborted, 1);
    assert_eq!(stats.submitted, 2);
}

#[test]
fn vanished_client_is_idled_out_by_the_coordinator() {
    // Tight protocol timeouts so the coordinator's idle horizon
    // ((lock + quorum + commit) * 3) stays test-sized.
    let config = ClusterConfig::quick(3, 4, 3)
        .unwrap()
        .with_stack(
            ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(50))
                .with_quorum_timeout(Duration::from_millis(100))
                .with_commit_timeout(Duration::from_millis(100)),
        )
        .with_client_timeout(Duration::from_secs(2));
    let cluster = Cluster::start(config).unwrap();
    let mut client = cluster.client();
    let mut txn = client.begin("vanishing").unwrap();
    txn.increment("x0", 1).unwrap();
    // The client vanishes without even a drop-abort (process death): the
    // coordinator must abort the conversation at its idle horizon.
    std::mem::forget(txn);
    assert!(
        drain_cc_entries(&cluster),
        "idle-horizon abort must release CCP entries: {:?}",
        cluster.active_cc_transactions()
    );
    let read = cluster.submit(TxnSpec::new("check", vec![Operation::read("x0")]));
    assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(100)));
}

#[test]
fn retry_combinator_reroutes_around_a_crashed_home_site() {
    let config = ClusterConfig::quick(3, 6, 3)
        .unwrap()
        .with_client_timeout(Duration::from_millis(700));
    let cluster = Cluster::start(config).unwrap();
    cluster.crash_site(rainbow_common::SiteId(2)).unwrap();

    let mut client = cluster.client();
    let mut landed_retries = 0;
    for i in 0..6 {
        // Round-robin home selection lands every third begin on the crashed
        // site; those conversations orphan and must be retried elsewhere.
        let (observed, receipt) = client
            .run(format!("survivor-{i}"), |txn| txn.read("x0"))
            .expect("retry must eventually commit every conversation");
        assert_eq!(observed.as_int(), Some(100));
        landed_retries += receipt.restarts;
    }
    assert!(
        landed_retries > 0,
        "with a crashed site in rotation, some conversation must have retried"
    );
}

#[test]
fn interactive_conversation_reads_its_own_commits_across_txns() {
    let cluster = cluster(RcpKind::Rowa, true);
    let mut client = cluster.client();

    // A conditional transfer driven by observed values.
    let mut txn = client.begin("transfer").unwrap();
    let balance = txn.read("x0").unwrap().as_int().unwrap();
    assert_eq!(balance, 100);
    txn.increment("x0", -40).unwrap();
    txn.increment("x1", 40).unwrap();
    let receipt = txn.commit().unwrap();
    assert!(receipt.reads.contains_key(&ItemId::new("x0")));

    // The next conversation observes the committed effects; the batched
    // multi-get returns values in request order and agrees with single
    // reads.
    let mut txn = client.begin("audit").unwrap();
    assert_eq!(txn.read("x0").unwrap(), Value::Int(60));
    assert_eq!(txn.read("x1").unwrap(), Value::Int(140));
    let batch = txn.read_many(["x1", "x0", "x2"]).unwrap();
    assert_eq!(
        batch,
        vec![
            (ItemId::new("x1"), Value::Int(140)),
            (ItemId::new("x0"), Value::Int(60)),
            (ItemId::new("x2"), Value::Int(100)),
        ]
    );
    txn.commit().unwrap();

    // Explicit abort leaves no trace.
    let mut txn = client.begin("undone").unwrap();
    txn.increment("x0", -1000).unwrap();
    txn.abort();
    let mut txn = client.begin("after-abort").unwrap();
    assert_eq!(txn.read("x0").unwrap(), Value::Int(60));
    txn.commit().unwrap();
}
