//! Failure-injection integration tests (experiment E-FAIL): crashes,
//! partitions, recoveries, orphan transactions and replica convergence.

use rainbow_common::protocol::{ProtocolStack, RcpKind};
use rainbow_common::txn::{AbortLayer, TxnSpec};
use rainbow_common::{ItemId, Operation, SiteId, Value};
use rainbow_control::{ProgressRunner, Session};
use rainbow_wlg::{ArrivalProcess, WorkloadProfile};
use std::time::Duration;

fn stack() -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(150))
        .with_quorum_timeout(Duration::from_millis(400))
        .with_commit_timeout(Duration::from_millis(400))
        .with_parallel_quorums_from_env()
        .with_coordinator_from_env()
}

fn session(sites: usize, items: usize, degree: usize, rcp: RcpKind) -> Session {
    let mut session = Session::new();
    session.configure_sites(sites).unwrap();
    session.configure_protocols(stack().with_rcp(rcp)).unwrap();
    session
        .configure_uniform_database(items, 100, degree)
        .unwrap();
    session.set_client_timeout(Duration::from_secs(3));
    session.start().unwrap();
    session
}

#[test]
fn qc_tolerates_a_minority_crash_but_rowa_writes_block() {
    // Quorum consensus keeps committing writes with 1 of 3 copies down.
    let qc = session(3, 6, 3, RcpKind::QuorumConsensus);
    qc.crash_site(SiteId(2)).unwrap();
    let result = qc
        .submit(TxnSpec::new("w", vec![Operation::write("x0", 1i64)]))
        .unwrap();
    assert!(result.committed(), "QC outcome: {:?}", result.outcome);

    // ROWA cannot write with any copy holder down.
    let rowa = session(3, 6, 3, RcpKind::Rowa);
    rowa.crash_site(SiteId(2)).unwrap();
    let result = rowa
        .submit(TxnSpec::new("w", vec![Operation::write("x0", 1i64)]))
        .unwrap();
    assert!(
        !result.committed(),
        "ROWA write must not commit with a copy holder down: {:?}",
        result.outcome
    );
    // ...but ROWA reads still work (read one copy).
    let read = rowa
        .submit(TxnSpec::new("r", vec![Operation::read("x0")]))
        .unwrap();
    assert!(read.committed(), "ROWA read outcome: {:?}", read.outcome);

    // The abort was attributed to the replication layer.
    let stats = rowa.statistics().unwrap();
    assert!(stats.aborts.layer(AbortLayer::Rcp) >= 1);
}

#[test]
fn crashing_a_majority_stops_qc_until_recovery() {
    let session = session(5, 5, 5, RcpKind::QuorumConsensus);
    session.crash_site(SiteId(3)).unwrap();
    session.crash_site(SiteId(4)).unwrap();
    // Majority of 5 is 3; with 2 down writes still commit.
    let ok = session
        .submit(TxnSpec::new("w", vec![Operation::write("x0", 1i64)]))
        .unwrap();
    assert!(ok.committed(), "outcome: {:?}", ok.outcome);

    session.crash_site(SiteId(2)).unwrap();
    // Now only 2 of 5 copies are alive: below the write quorum.
    let blocked = session
        .submit(TxnSpec::new("w", vec![Operation::write("x0", 2i64)]))
        .unwrap();
    assert!(!blocked.committed());

    // Recovery restores availability and the earlier committed value.
    session.recover_site(SiteId(2)).unwrap();
    session.recover_site(SiteId(3)).unwrap();
    session.recover_site(SiteId(4)).unwrap();
    let read = session
        .submit(TxnSpec::new("r", vec![Operation::read("x0")]))
        .unwrap();
    assert!(read.committed());
    assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(1)));
}

#[test]
fn transactions_submitted_to_a_crashed_home_site_become_orphans() {
    let session = session(3, 6, 3, RcpKind::QuorumConsensus);
    session.crash_site(SiteId(1)).unwrap();
    let result = session
        .submit(TxnSpec::new("orphan", vec![Operation::read("x0")]).at_site(SiteId(1)))
        .unwrap();
    assert!(result.outcome.is_orphaned());
    let stats = session.statistics().unwrap();
    assert_eq!(stats.orphans, 1);
}

#[test]
fn a_network_partition_blocks_cross_group_quorums_and_heals() {
    let session = session(4, 8, 4, RcpKind::QuorumConsensus);
    // Split 2/2: no group has a majority of the 4 copies (write quorum = 3).
    session
        .partition(&[vec![SiteId(0), SiteId(1)], vec![SiteId(2), SiteId(3)]])
        .unwrap();
    let blocked = session
        .submit(TxnSpec::new("w", vec![Operation::write("x0", 9i64)]).at_site(SiteId(0)))
        .unwrap();
    assert!(
        !blocked.committed(),
        "a 2/2 partition must block write quorums of 3: {:?}",
        blocked.outcome
    );

    session.heal_partition().unwrap();
    let after = session
        .submit(TxnSpec::new("w2", vec![Operation::write("x0", 10i64)]).at_site(SiteId(0)))
        .unwrap();
    assert!(after.committed(), "outcome after heal: {:?}", after.outcome);
}

#[test]
fn crash_recover_cycles_during_a_workload_leave_replicas_consistent() {
    let session = session(4, 10, 3, RcpKind::QuorumConsensus);
    // Run a write-heavy workload while repeatedly bouncing one site.
    let workload = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            session.run_generated(
                WorkloadProfile::WriteHeavy,
                60,
                ArrivalProcess::Closed { mpl: 6 },
            )
        });
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(150));
            session.crash_site(SiteId(3)).unwrap();
            std::thread::sleep(Duration::from_millis(150));
            session.recover_site(SiteId(3)).unwrap();
        }
        handle.join().unwrap()
    })
    .unwrap();

    // Some work must have gone through despite the failures.
    assert!(workload.committed() > 0);

    // No two copies of any item disagree about the value at a given version.
    let pm = ProgressRunner::new(&session);
    let divergence = pm.replica_divergence().unwrap();
    assert!(
        divergence.is_empty(),
        "divergence after crashes: {divergence:?}"
    );

    // The accounting still adds up.
    let stats = session.statistics().unwrap();
    assert_eq!(
        stats.committed + stats.aborted + stats.orphans,
        stats.submitted
    );
}

#[test]
fn recovered_site_catches_up_on_subsequent_writes() {
    let session = session(3, 4, 3, RcpKind::QuorumConsensus);
    session.crash_site(SiteId(2)).unwrap();
    // Write while site 2 is down: quorum {0,1} gets version 1.
    let w1 = session
        .submit(TxnSpec::new("w1", vec![Operation::write("x0", 111i64)]))
        .unwrap();
    assert!(w1.committed());
    session.recover_site(SiteId(2)).unwrap();
    // A new write reaches a quorum that must include at least one up-to-date
    // copy; the new version propagates (possibly to site 2 as well).
    let w2 = session
        .submit(TxnSpec::new("w2", vec![Operation::write("x0", 222i64)]))
        .unwrap();
    assert!(w2.committed());
    // Readers always see the latest committed value regardless of which
    // copies are stale.
    let read = session
        .submit(TxnSpec::new("r", vec![Operation::read("x0")]))
        .unwrap();
    assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(222)));
}
