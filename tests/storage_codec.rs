//! Log-codec properties and on-disk format stability.
//!
//! Two families of guarantees live here:
//!
//! * **Properties** (proptest): any record round-trips through the frame
//!   codec; any single flipped byte and any truncation of a frame is
//!   *detected* — a damaged frame is never silently decoded.
//! * **Format stability** (fixture): `tests/fixtures/segment_v1.seg` is a
//!   checked-in format-version-1 segment file. Recovery must parse it to
//!   exactly the expected records forever; a codec change that breaks this
//!   test is a format break and needs a format-version bump, not a fixture
//!   update. Regenerate deliberately with
//!   `RAINBOW_REGEN_FIXTURES=1 cargo test --test storage_codec`.

use proptest::prelude::*;
use rainbow_common::{ItemId, SiteId, TxnId, Value, Version};
use rainbow_storage::codec::{crc32, decode_frame, encode_frame, FRAME_HEADER_LEN};
use rainbow_storage::disk::{SEGMENT_FORMAT_VERSION, SEGMENT_HEADER_LEN, SEGMENT_MAGIC};
use rainbow_storage::{replay, LogRecord};
use std::path::PathBuf;

/// Builds a `Value` from fuzz integers, covering every variant.
fn value_from(tag: u8, bits: i64) -> Value {
    match tag % 5 {
        0 => Value::Null,
        1 => Value::Int(bits),
        2 => Value::Float(bits as f64 / 3.0),
        3 => Value::Text(format!("t{bits}")),
        4 => Value::Bytes(bits.to_le_bytes().to_vec()),
        _ => unreachable!(),
    }
}

/// Builds a `LogRecord` from fuzz integers, covering every variant.
fn record_from(tag: u8, home: u32, seq: u64, writes: &[(u8, i64, u64)]) -> LogRecord {
    let txn = TxnId::new(SiteId(home), seq);
    let writes: Vec<(ItemId, Value, Version)> = writes
        .iter()
        .enumerate()
        .map(|(i, (vtag, bits, version))| {
            (
                ItemId::new(format!("item-{i}")),
                value_from(*vtag, *bits),
                Version(*version),
            )
        })
        .collect();
    match tag % 5 {
        0 => LogRecord::Begin { txn },
        1 => LogRecord::Prepare { txn, writes },
        2 => LogRecord::Commit { txn, writes },
        3 => LogRecord::Abort { txn },
        4 => LogRecord::Checkpoint { state: writes },
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → decode is the identity, and the decoded length consumes the
    /// whole frame.
    #[test]
    fn frame_round_trips(
        tag in 0u8..5,
        home in 0u32..64,
        seq in any::<u64>(),
        writes in prop::collection::vec((any::<u8>(), any::<i64>(), any::<u64>()), 0..6),
    ) {
        let record = record_from(tag, home, seq, &writes);
        let frame = encode_frame(&record);
        let (decoded, consumed) = decode_frame(&frame, 0).expect("fresh frame decodes");
        prop_assert_eq!(&decoded, &record);
        prop_assert_eq!(consumed, frame.len());
    }

    /// Every single-byte corruption anywhere in a frame is detected: the
    /// decoder errors, it never silently returns a (possibly different)
    /// record.
    #[test]
    fn any_flipped_byte_is_detected(
        tag in 0u8..5,
        home in 0u32..64,
        seq in any::<u64>(),
        writes in prop::collection::vec((any::<u8>(), any::<i64>(), any::<u64>()), 0..4),
        flip in any::<u8>(),
        pos_seed in any::<u64>(),
    ) {
        let record = record_from(tag, home, seq, &writes);
        let frame = encode_frame(&record);
        let pos = (pos_seed % frame.len() as u64) as usize;
        let flip = if flip == 0 { 0xA5 } else { flip };
        let mut damaged = frame.clone();
        damaged[pos] ^= flip;
        prop_assert!(
            decode_frame(&damaged, 0).is_err(),
            "flipping byte {} (of {}) went undetected", pos, frame.len()
        );
    }

    /// Every strict prefix of a frame reads as torn (incomplete), the state
    /// power loss leaves behind — recovery truncates it, never misparses it.
    #[test]
    fn any_truncation_reads_as_torn(
        tag in 0u8..5,
        home in 0u32..64,
        seq in any::<u64>(),
        writes in prop::collection::vec((any::<u8>(), any::<i64>(), any::<u64>()), 0..4),
        cut_seed in any::<u64>(),
    ) {
        let record = record_from(tag, home, seq, &writes);
        let frame = encode_frame(&record);
        let cut = (cut_seed % frame.len() as u64) as usize;
        match decode_frame(&frame[..cut], 0) {
            Err(err) => prop_assert!(err.is_torn(), "cut at {}: {} is not torn", cut, err),
            Ok(_) => prop_assert!(false, "decoded from a {}-byte prefix", cut),
        }
    }
}

// ---------------------------------------------------------------------------
// Format-version-1 fixture.
// ---------------------------------------------------------------------------

/// The records the checked-in fixture contains, in order. Covers every
/// record kind and every `Value` variant.
fn fixture_records() -> Vec<LogRecord> {
    let t1 = TxnId::new(SiteId(3), 7);
    let t2 = TxnId::new(SiteId(0), 41);
    vec![
        LogRecord::Checkpoint {
            state: vec![
                (ItemId::new("alpha"), Value::Int(100), Version(0)),
                (ItemId::new("beta"), Value::Text("hello".into()), Version(2)),
                (ItemId::new("gamma"), Value::Null, Version(1)),
            ],
        },
        LogRecord::Begin { txn: t1 },
        LogRecord::Prepare {
            txn: t1,
            writes: vec![
                (ItemId::new("alpha"), Value::Float(2.5), Version(1)),
                (
                    ItemId::new("delta"),
                    Value::Bytes(vec![0, 255, 7]),
                    Version(9),
                ),
            ],
        },
        LogRecord::Commit {
            txn: t1,
            writes: vec![
                (ItemId::new("alpha"), Value::Float(2.5), Version(1)),
                (
                    ItemId::new("delta"),
                    Value::Bytes(vec![0, 255, 7]),
                    Version(9),
                ),
            ],
        },
        LogRecord::Begin { txn: t2 },
        LogRecord::Prepare {
            txn: t2,
            writes: vec![(ItemId::new("beta"), Value::Int(-1), Version(3))],
        },
        LogRecord::Abort { txn: t2 },
    ]
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("segment_v1.seg")
}

fn fixture_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(SEGMENT_MAGIC);
    bytes.extend_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
    for record in fixture_records() {
        bytes.extend_from_slice(&encode_frame(&record));
    }
    bytes
}

#[test]
fn checked_in_segment_fixture_parses_to_the_expected_records() {
    let path = fixture_path();
    if std::env::var("RAINBOW_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fixture_bytes()).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate deliberately with RAINBOW_REGEN_FIXTURES=1",
            path.display()
        )
    });

    // Header: magic + format version.
    assert_eq!(&bytes[..4], SEGMENT_MAGIC, "magic");
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        SEGMENT_FORMAT_VERSION,
        "format version"
    );

    // Body: the exact expected records, ending exactly at EOF.
    let mut offset = SEGMENT_HEADER_LEN;
    let mut decoded = Vec::new();
    while offset < bytes.len() {
        let (record, next) =
            decode_frame(&bytes, offset).unwrap_or_else(|e| panic!("frame at {offset}: {e}"));
        decoded.push(record);
        offset = next;
    }
    assert_eq!(offset, bytes.len(), "no trailing garbage");
    assert_eq!(decoded, fixture_records(), "format drift — see module docs");

    // And the byte image itself is reproducible from today's encoder: if
    // this fails but the decode above passed, the encoder changed while
    // staying decode-compatible — still a format change to think about.
    assert_eq!(bytes, fixture_bytes(), "encoder drift");
}

#[test]
fn fixture_replay_recovers_state_and_in_doubt() {
    let outcome = replay(&fixture_records());
    // Committed state: checkpoint, then t1's commit wins over it.
    assert_eq!(
        outcome.state[&ItemId::new("alpha")].value,
        Value::Float(2.5)
    );
    assert_eq!(outcome.state[&ItemId::new("alpha")].version, Version(1));
    assert_eq!(
        outcome.state[&ItemId::new("beta")].value,
        Value::Text("hello".into()),
        "t2 aborted: its prepare must not be applied"
    );
    assert_eq!(
        outcome.state[&ItemId::new("delta")].value,
        Value::Bytes(vec![0, 255, 7])
    );
    assert!(outcome.in_doubt.is_empty(), "t1 decided, t2 decided");
}

#[test]
fn fixture_survives_no_single_byte_corruption_in_any_frame() {
    let bytes = fixture_bytes();
    // Flip every single byte of the frame area in turn: the scan must fail
    // at or before the damaged frame — never decode all records cleanly.
    for pos in SEGMENT_HEADER_LEN..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x01;
        let mut offset = SEGMENT_HEADER_LEN;
        let mut clean = 0usize;
        let mut failed = false;
        while offset < damaged.len() {
            match decode_frame(&damaged, offset) {
                Ok((record, next)) => {
                    // A frame that decodes must be byte-identical to the
                    // pristine one at the same offset (the flip landed in a
                    // later frame).
                    assert_eq!(record, fixture_records()[clean], "silent misparse at {pos}");
                    clean += 1;
                    offset = next;
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        assert!(
            failed,
            "flipping byte {pos} left every frame decoding cleanly"
        );
    }
}

#[test]
fn crc32_matches_the_reference_check_value() {
    // The IEEE CRC-32 check value: any reimplementation that disagrees here
    // cannot read segments written by this one.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
    let _ = FRAME_HEADER_LEN; // format constant is part of the public API
}
