//! Lifecycle guarantees of the sharded reactor coordinator
//! (`CoordinatorMode::Reactor`), beyond the spec-vs-handle differential:
//!
//! * **affinity under load**: a thousand concurrent conversations — all
//!   pinned to a handful of reactor shards by `txn.seq` — each complete
//!   with exactly one terminal result, and the committed increments are
//!   exactly reflected in the final database state;
//! * **drop safety**: an unfinished `Txn` dropped mid-conversation aborts
//!   through the reactor and releases every CCP resource at every site;
//! * **vanished clients**: a client that disappears without even a
//!   drop-abort is idled out by the owning reactor's tick-time janitor at
//!   the same horizon the thread-per-conversation path uses;
//! * **clean shutdown**: tearing the cluster down with conversations still
//!   in flight joins every reactor thread without hanging.

use rainbow_common::protocol::{CoordinatorMode, ProtocolStack};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, Value};
use rainbow_core::{Cluster, ClusterConfig};
use std::time::Duration;

fn reactor_stack() -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(200))
        .with_quorum_timeout(Duration::from_millis(600))
        .with_commit_timeout(Duration::from_millis(600))
        .with_coordinator(CoordinatorMode::Reactor)
}

fn reactor_cluster(sites: usize, items: usize) -> Cluster {
    let config = ClusterConfig::quick(sites, items, sites)
        .unwrap()
        .with_stack(reactor_stack())
        .with_client_timeout(Duration::from_secs(10));
    Cluster::start(config).unwrap()
}

fn drain_cc_entries(cluster: &Cluster) -> bool {
    for _ in 0..60 {
        if cluster
            .active_cc_transactions()
            .values()
            .all(|count| *count == 0)
        {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// A thousand concurrent conversations, spread over the item universe so
/// most commit: every one must come back with exactly one terminal
/// outcome, and the final state must reflect exactly the committed
/// increments — the observable form of "each transaction is owned by
/// exactly one reactor shard".
#[test]
fn a_thousand_concurrent_conversations_complete_on_the_reactor() {
    const CLIENTS: usize = 1000;
    // One item per client: the burst measures conversation lifecycle and
    // shard ownership, not 2PL contention (the chaos suite covers that).
    const ITEMS: usize = CLIENTS;
    let cluster = reactor_cluster(3, ITEMS);

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let cluster = &cluster;
                scope.spawn(move || {
                    cluster.submit(TxnSpec::new(
                        format!("load-{i}"),
                        vec![Operation::increment(format!("x{}", i % ITEMS), 1)],
                    ))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(results.len(), CLIENTS, "every conversation must terminate");
    let commits = results.iter().filter(|r| r.committed()).count() as i64;
    assert!(
        commits >= (CLIENTS as i64) * 9 / 10,
        "conflict-free increments must nearly all commit, got {commits}/{CLIENTS}"
    );
    assert!(
        drain_cc_entries(&cluster),
        "the burst must leave no CCP entries behind: {:?}",
        cluster.active_cc_transactions()
    );

    // The audit read may briefly collide with straggler releases; retry.
    let audit_spec = TxnSpec::new(
        "audit",
        (0..ITEMS)
            .map(|i| Operation::read(format!("x{i}")))
            .collect(),
    );
    let mut audit = cluster.submit(audit_spec.clone());
    for _ in 0..5 {
        if audit.committed() {
            break;
        }
        std::thread::sleep(Duration::from_millis(300));
        audit = cluster.submit(audit_spec.clone());
    }
    assert!(
        audit.committed(),
        "audit kept aborting: {:?}",
        audit.outcome
    );
    let total: i64 = audit
        .reads
        .values()
        .map(|v| v.as_int().expect("integer items"))
        .sum();
    assert_eq!(
        total,
        (ITEMS as i64) * 100 + commits,
        "final state must reflect exactly the committed increments"
    );
}

#[test]
fn dropped_txn_on_the_reactor_path_releases_every_lock() {
    let cluster = reactor_cluster(3, 8);
    let mut client = cluster.client();
    {
        let mut txn = client.begin("doomed").unwrap();
        txn.read("x0").unwrap();
        txn.increment("x1", 5).unwrap();
        assert!(
            cluster
                .active_cc_transactions()
                .values()
                .any(|count| *count > 0),
            "the open conversation must hold CCP resources"
        );
        // Dropped here: neither commit nor abort was called.
    }
    assert!(
        drain_cc_entries(&cluster),
        "drop-abort must release every CCP entry: {:?} (lingering: {:?})",
        cluster.active_cc_transactions(),
        cluster.lingering_participants()
    );
    let read = cluster.submit(TxnSpec::new("check", vec![Operation::read("x1")]));
    assert_eq!(read.reads.get(&ItemId::new("x1")), Some(&Value::Int(100)));
}

#[test]
fn vanished_client_is_idled_out_by_its_reactor() {
    // Tight timeouts keep the reactor's idle horizon
    // ((lock + quorum + commit) * 3) test-sized.
    let config = ClusterConfig::quick(3, 4, 3)
        .unwrap()
        .with_stack(
            ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(50))
                .with_quorum_timeout(Duration::from_millis(100))
                .with_commit_timeout(Duration::from_millis(100))
                .with_coordinator(CoordinatorMode::Reactor),
        )
        .with_client_timeout(Duration::from_secs(2));
    let cluster = Cluster::start(config).unwrap();
    let mut client = cluster.client();
    let mut txn = client.begin("vanishing").unwrap();
    txn.increment("x0", 1).unwrap();
    // The client vanishes without even a drop-abort (process death): the
    // owning reactor's tick janitor must abort the machine at its idle
    // horizon.
    std::mem::forget(txn);
    assert!(
        drain_cc_entries(&cluster),
        "idle-horizon abort must release CCP entries: {:?}",
        cluster.active_cc_transactions()
    );
    let read = cluster.submit(TxnSpec::new("check", vec![Operation::read("x0")]));
    assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(100)));
}

/// Shutdown with conversations still open must fail them site-down and
/// join every reactor thread — bounded, never hanging on an in-flight
/// machine.
#[test]
fn shutdown_with_in_flight_conversations_joins_every_reactor() {
    let mut cluster = reactor_cluster(3, 8);
    {
        let mut client = cluster.client();
        for i in 0..4 {
            let mut txn = client.begin(format!("in-flight-{i}")).unwrap();
            txn.increment(format!("x{i}"), 1).unwrap();
            // Forgotten, not dropped: the conversations are still open (and
            // hold locks) when shutdown begins.
            std::mem::forget(txn);
        }
    }
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let teardown = std::thread::spawn(move || {
        cluster.shutdown();
        let _ = done_tx.send(());
    });
    assert!(
        done_rx.recv_timeout(Duration::from_secs(30)).is_ok(),
        "shutdown must join all reactor threads despite in-flight conversations"
    );
    teardown.join().unwrap();
}
