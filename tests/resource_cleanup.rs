//! Resource-cleanup regression tests: after a workload finishes, no
//! transaction may keep holding concurrency-control resources at any site
//! (leaked locks were an actual bug class during development — a copy-access
//! grant racing with the transaction's decision).

use rainbow_common::protocol::{CcpKind, ProtocolStack};
use rainbow_core::{Cluster, ClusterConfig};
use rainbow_wlg::{WorkloadGenerator, WorkloadProfile};
use std::time::Duration;

fn run_and_check(ccp: CcpKind, transactions: usize, mpl: usize) {
    let stack = ProtocolStack::rainbow_default()
        .with_ccp(ccp)
        .with_lock_wait_timeout(Duration::from_millis(150))
        .with_quorum_timeout(Duration::from_millis(500))
        .with_commit_timeout(Duration::from_millis(500))
        .with_parallel_quorums_from_env()
        .with_coordinator_from_env();
    let config = ClusterConfig::quick(3, 8, 3).unwrap().with_stack(stack);
    let cluster = Cluster::start(config).unwrap();
    let params = WorkloadProfile::WriteHeavy.params(
        cluster.config().database.item_ids(),
        cluster.site_ids(),
        transactions,
        17,
    );
    let specs = WorkloadGenerator::new(params).generate();
    let results = cluster.run_workload(specs, mpl);
    assert_eq!(results.len(), transactions);
    assert!(results.iter().any(|r| r.committed()));

    // Give in-flight decision messages a moment to land, then insist that no
    // CCP resources remain held anywhere. Coordinator workers of timed-out
    // transactions may still be distributing aborts when `run_workload`
    // returns (slowly, on a loaded single-CPU CI machine), and rare
    // decision-vs-access races are resolved by the janitor (by design, past
    // its idle horizon), so the invariant checked here is *eventual
    // quiescence*: the counts must drain to zero within a budget that
    // covers one janitor pass. A genuine leak shows up as a count no amount
    // of waiting drains.
    let mut last = cluster.active_cc_transactions();
    for _ in 0..80 {
        if last.values().all(|count| *count == 0) {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
        last = cluster.active_cc_transactions();
    }
    assert!(
        last.values().all(|count| *count == 0),
        "leaked concurrency-control resources after the workload ({ccp}): {last:?}, \
         lingering participants: {:?}",
        cluster.lingering_participants()
    );
}

#[test]
fn no_leaked_locks_after_a_contended_2pl_workload() {
    run_and_check(CcpKind::TwoPhaseLocking, 40, 8);
}

#[test]
fn no_leaked_state_after_a_tso_workload() {
    run_and_check(CcpKind::TimestampOrdering, 40, 8);
}

#[test]
fn no_leaked_state_after_an_mvto_workload() {
    run_and_check(CcpKind::MultiversionTimestampOrdering, 40, 8);
}
