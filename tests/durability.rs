//! Durable storage integration: kill-and-restart with only the disk.
//!
//! These tests run whole clusters on the on-disk log-structured engine and
//! exercise the guarantees ISSUE 7 promises: a shut-down data directory
//! reopens with every committed write; a power loss (clean, torn-tail or
//! corrupted-tail) loses nothing that was committed; damage *before* the
//! log tail surfaces as a typed [`RainbowError::CorruptLog`] instead of a
//! panic; and the power-loss nemesis stays serializable across the full
//! RCP × CCP matrix.

use rainbow_check::check_history;
use rainbow_common::protocol::{CcpKind, ProtocolStack, RcpKind};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, RainbowError, SiteId, Value};
use rainbow_core::{Cluster, ClusterConfig, EngineKind, PowerLossFault, StorageConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A fresh per-test data directory under the system temp dir.
fn data_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rainbow-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_stack() -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(150))
        .with_quorum_timeout(Duration::from_millis(300))
        .with_commit_timeout(Duration::from_millis(300))
        .with_parallel_quorums_from_env()
        .with_coordinator_from_env()
}

fn disk_cluster(dir: &Path) -> Cluster {
    let config = ClusterConfig::quick(3, 6, 3)
        .unwrap()
        .with_stack(quick_stack())
        .with_storage(StorageConfig::disk(dir));
    Cluster::start(config).unwrap()
}

/// Commits `x{i} = base + i` for every item and asserts each commit.
fn commit_round(cluster: &Cluster, base: i64) {
    for i in 0..6 {
        let result = cluster.submit(TxnSpec::new(
            format!("write-x{i}"),
            vec![Operation::write(format!("x{i}"), base + i)],
        ));
        assert!(
            result.committed(),
            "x{i} := {}: {:?}",
            base + i,
            result.outcome
        );
    }
}

/// Asserts a committed read of every item observes `x{i} = base + i`.
///
/// Reads go through the replication protocol (not raw snapshots): a
/// committed write only has to reach a write quorum, and it is the quorum
/// intersection — not any single copy — that must never forget it.
fn assert_round_visible(cluster: &Cluster, base: i64) {
    for i in 0..6i64 {
        let item = ItemId::new(format!("x{i}"));
        let result = cluster.submit(TxnSpec::new(
            format!("read-x{i}"),
            vec![Operation::read(format!("x{i}"))],
        ));
        assert!(result.committed(), "read of {item}: {:?}", result.outcome);
        assert_eq!(
            result.reads.get(&item),
            Some(&Value::Int(base + i)),
            "a committed write to {item} was forgotten"
        );
    }
}

#[test]
fn reopened_data_dir_holds_every_committed_write() {
    let dir = data_dir("reopen");
    {
        let mut cluster = disk_cluster(&dir);
        assert_eq!(
            cluster.site_ids().len(),
            3,
            "sanity: all sites came up on disk"
        );
        commit_round(&cluster, 1000);
        // Explicit shutdown flushes and fsyncs every site's engine.
        cluster.shutdown();
    }
    {
        // Same directory, fresh process-equivalent: only the disk survives.
        let cluster = disk_cluster(&dir);
        assert_round_visible(&cluster, 1000);
        // The reopened cluster is live, not a read-only museum.
        commit_round(&cluster, 2000);
        assert_round_visible(&cluster, 2000);
        // Drop-based teardown must flush too (Drop delegates to shutdown).
    }
    {
        let cluster = disk_cluster(&dir);
        assert_round_visible(&cluster, 2000);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn power_loss_with_any_tail_fault_keeps_committed_writes() {
    let dir = data_dir("power-loss");
    let cluster = disk_cluster(&dir);
    let mut base = 100;
    for fault in PowerLossFault::ALL {
        commit_round(&cluster, base);
        cluster
            .power_loss_site(SiteId(1), fault)
            .unwrap_or_else(|err| panic!("recovery from {} failed: {err}", fault.name()));
        assert_round_visible(&cluster, base);
        // The revived site serves new transactions.
        base += 100;
    }
    commit_round(&cluster, base);
    assert_round_visible(&cluster, base);
    assert!(cluster
        .power_loss_site(SiteId(9), PowerLossFault::Clean)
        .is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_before_the_tail_is_a_typed_error_not_a_panic() {
    let dir = data_dir("corrupt");
    {
        let mut cluster = disk_cluster(&dir);
        commit_round(&cluster, 7000);
        cluster.shutdown();
    }
    // Flip one byte inside the *first* frame of site 0's oldest segment.
    // Later frames stay valid, so recovery must refuse the log as corrupt
    // rather than silently truncating committed history away.
    let site_dir = dir.join("site-0");
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&site_dir)
        .unwrap()
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().is_some_and(|e| e == "seg")).then_some(path)
        })
        .collect();
    segments.sort();
    let victim = segments.first().expect("site 0 wrote at least one segment");
    let mut bytes = std::fs::read(victim).unwrap();
    // 8 bytes segment header + 8 bytes frame header + 2 into the payload.
    bytes[18] ^= 0xFF;
    std::fs::write(victim, &bytes).unwrap();

    let config = ClusterConfig::quick(3, 6, 3)
        .unwrap()
        .with_stack(quick_stack())
        .with_storage(StorageConfig::disk(dir.clone()));
    match Cluster::start(config).map(|_| ()) {
        Err(RainbowError::CorruptLog { reason, .. }) => {
            assert!(!reason.is_empty(), "the error names what went wrong");
        }
        other => panic!("expected CorruptLog, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance matrix: a power loss with a torn log tail on every
/// replication protocol × every concurrency protocol, judged by read-back
/// (zero forgotten committed writes) and the serializability checker.
#[test]
fn torn_tail_power_loss_is_safe_across_the_protocol_matrix() {
    for rcp in RcpKind::ALL {
        for ccp in [
            CcpKind::TwoPhaseLocking,
            CcpKind::TimestampOrdering,
            CcpKind::MultiversionTimestampOrdering,
        ] {
            let dir = data_dir(&format!("matrix-{rcp}-{ccp:?}"));
            let config = ClusterConfig::quick(3, 6, 3)
                .unwrap()
                .with_stack(quick_stack().with_rcp(rcp).with_ccp(ccp))
                .with_storage(StorageConfig::disk(dir.clone()))
                .with_history_recording(true);
            let cluster = Cluster::start(config).unwrap();
            assert_eq!(cluster.config().storage.engine, EngineKind::Disk);

            commit_round(&cluster, 10);
            cluster
                .power_loss_site(SiteId(2), PowerLossFault::TornWrite)
                .unwrap_or_else(|err| panic!("{rcp}+{ccp:?}: {err}"));
            assert_round_visible(&cluster, 10);
            commit_round(&cluster, 20);
            assert_round_visible(&cluster, 20);

            assert!(cluster.await_history_quiescence(Duration::from_secs(5)));
            let history = cluster.history().expect("recording on");
            let report = check_history(&history);
            assert!(
                report.is_serializable(),
                "{rcp}+{ccp:?} after torn-tail power loss: {:?}",
                report.violations
            );
            drop(cluster);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
