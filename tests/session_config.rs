//! Configuration-surface integration tests (experiment FIG3/4/A-1): the
//! session configuration panels, save/reuse of configuration data, and
//! configuration validation errors.

use rainbow_common::config::{DatabaseSchema, DistributionSchema, ItemPlacement};
use rainbow_common::protocol::{AcpKind, CcpKind, DeadlockPolicy, ProtocolStack, RcpKind};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, SiteId, Value};
use rainbow_control::{Session, SessionConfig};
use rainbow_net::{LatencyModel, LinkConfig, NetworkConfig};
use std::time::Duration;

#[test]
fn a_full_configuration_survives_the_json_round_trip() {
    let mut config = SessionConfig::default();
    config.distribution = DistributionSchema::one_site_per_host(5);
    config.database = DatabaseSchema::uniform(20, 100, &config.distribution.site_ids(), 3).unwrap();
    config.stack = ProtocolStack::rainbow_default()
        .with_rcp(RcpKind::Rowa)
        .with_ccp(CcpKind::MultiversionTimestampOrdering)
        .with_acp(AcpKind::ThreePhaseCommit)
        .with_deadlock_policy(DeadlockPolicy::WoundWait)
        .with_lock_wait_timeout(Duration::from_millis(123));
    config.network = NetworkConfig::lan(Duration::from_micros(100), Duration::from_millis(2))
        .with_seed(99)
        .override_link(
            rainbow_net::NodeId::site(0),
            rainbow_net::NodeId::site(1),
            LinkConfig::with_latency(LatencyModel::constant(Duration::from_millis(20)))
                .with_loss(0.01),
        );
    config.client_timeout_ms = 4321;
    config.seed = 7;

    let json = config.to_json().unwrap();
    let back = SessionConfig::from_json(&json).unwrap();
    assert_eq!(config, back);
    back.validate().unwrap();
}

#[test]
fn saved_configuration_reproduces_the_same_experiment() {
    // Configure, save, run — then reload in a "new session" and run again:
    // the generated workload and the committed results must match, which is
    // what "configuration data can be saved for reuse in another session"
    // is for.
    let dir = std::env::temp_dir().join("rainbow-it-config");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("experiment.json");

    let run = |session: &Session| -> (usize, Vec<(ItemId, Value)>) {
        let report = session
            .run_generated(
                rainbow_wlg::WorkloadProfile::DebitCredit,
                30,
                rainbow_wlg::ArrivalProcess::Closed { mpl: 1 },
            )
            .unwrap();
        let audit = session
            .submit(TxnSpec::new(
                "audit",
                (0..6).map(|i| Operation::read(format!("x{i}"))).collect(),
            ))
            .unwrap();
        (
            report.committed(),
            audit.reads.into_iter().collect::<Vec<_>>(),
        )
    };

    let mut first = Session::new();
    first.configure_sites(3).unwrap();
    first
        .configure_protocols(
            ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(200))
                .with_quorum_timeout(Duration::from_millis(500))
                .with_commit_timeout(Duration::from_millis(500)),
        )
        .unwrap();
    first.configure_uniform_database(6, 500, 3).unwrap();
    first.set_seed(1234);
    first.save_config(&path).unwrap();
    first.start().unwrap();
    let (committed_a, audit_a) = run(&first);
    drop(first);

    let mut second = Session::load_config(&path).unwrap();
    second.start().unwrap();
    let (committed_b, audit_b) = run(&second);

    // MPL 1 makes the run deterministic: same seed, same workload, same
    // serial order, same results.
    assert_eq!(committed_a, committed_b);
    assert_eq!(audit_a, audit_b);
    std::fs::remove_file(path).ok();
}

#[test]
#[allow(clippy::field_reassign_with_default)]
fn configuration_validation_rejects_every_kind_of_mistake() {
    // Unknown copy-holder site.
    let mut config = SessionConfig::default();
    config.database = DatabaseSchema::uniform(2, 0, &[SiteId(0), SiteId(9)], 2).unwrap();
    assert!(config.validate().is_err());

    // Non-intersecting quorums.
    let mut config = SessionConfig::default();
    config.database.declare(
        "x",
        0i64,
        ItemPlacement::weighted((0..4).map(|i| (SiteId(i), 1)).collect(), 1, 2),
    );
    assert!(config.validate().is_err());

    // No sites at all.
    let mut config = SessionConfig::default();
    config.distribution = DistributionSchema::new();
    assert!(config.validate().is_err());

    // Item without a placement.
    let mut config = SessionConfig::default();
    config
        .database
        .items
        .push(rainbow_common::config::ItemSpec::new("orphan-item", 0i64));
    assert!(config.validate().is_err());
}

#[test]
fn session_rejects_starting_an_invalid_configuration() {
    let mut session = Session::new();
    session.configure_sites(2).unwrap();
    // Declare an item held by a site that does not exist.
    session.declare_item("x", 0i64, &[SiteId(7)]).unwrap();
    assert!(session.start().is_err());
    assert!(!session.is_running());
}

#[test]
fn weighted_placements_and_explicit_items_work_through_the_session() {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session
        .configure_protocols(
            ProtocolStack::rainbow_default()
                .with_quorum_timeout(Duration::from_millis(500))
                .with_commit_timeout(Duration::from_millis(500)),
        )
        .unwrap();
    // A weighted item where site 0 alone forms a quorum, plus a normal one.
    session
        .declare_item_with_placement(
            "hot",
            1_000i64,
            ItemPlacement::weighted(
                vec![(SiteId(0), 3), (SiteId(1), 1), (SiteId(2), 1)]
                    .into_iter()
                    .collect(),
                3,
                3,
            ),
        )
        .unwrap();
    session
        .declare_item("cold", 5i64, &[SiteId(1), SiteId(2)])
        .unwrap();
    session.start().unwrap();

    let result = session
        .submit(TxnSpec::new(
            "mixed",
            vec![Operation::increment("hot", -1), Operation::read("cold")],
        ))
        .unwrap();
    assert!(result.committed(), "outcome: {:?}", result.outcome);
    assert_eq!(result.reads.get(&ItemId::new("cold")), Some(&Value::Int(5)));
    // The weighted item is stored at all three declared holders.
    assert!(session
        .database_view(SiteId(0))
        .unwrap()
        .iter()
        .any(|(item, _, _)| item == &ItemId::new("hot")));
}
