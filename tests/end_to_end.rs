//! Cross-crate integration tests: full Rainbow sessions exercised through
//! the public `rainbow-control` API, checking correctness properties that
//! span every layer (RCP + CCP + ACP + storage + network).

use rainbow_common::protocol::ProtocolStack;
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, Value};
use rainbow_control::{ProgressRunner, Session, WorkloadRunner};
use rainbow_wlg::{ArrivalProcess, ManualWorkloadBuilder, WorkloadProfile};
use std::time::Duration;

fn quick_stack() -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(200))
        .with_quorum_timeout(Duration::from_millis(600))
        .with_commit_timeout(Duration::from_millis(600))
        .with_parallel_quorums_from_env()
        .with_coordinator_from_env()
}

fn started_session(sites: usize, items: usize, degree: usize) -> Session {
    let mut session = Session::new();
    session.configure_sites(sites).unwrap();
    session.configure_protocols(quick_stack()).unwrap();
    session
        .configure_uniform_database(items, 1000, degree)
        .unwrap();
    session.start().unwrap();
    session
}

#[test]
fn bank_transfer_conserves_total_balance() {
    let session = started_session(3, 8, 3);
    let wlg = WorkloadRunner::new(&session);

    // 30 random transfers between the 8 accounts.
    let mut transfers = ManualWorkloadBuilder::new();
    for i in 0..30 {
        let from = format!("x{}", i % 8);
        let to = format!("x{}", (i + 3) % 8);
        if from == to {
            continue;
        }
        transfers = transfers
            .begin(format!("transfer-{i}"))
            .increment(from.as_str(), -25)
            .increment(to.as_str(), 25);
    }
    let results = wlg.submit_all(transfers.build()).unwrap();
    assert!(results.iter().any(|r| r.committed()));

    // Total money in the system is unchanged regardless of which transfers
    // committed or aborted (atomicity).
    let audit = wlg
        .submit(TxnSpec::new(
            "audit",
            (0..8).map(|i| Operation::read(format!("x{i}"))).collect(),
        ))
        .unwrap();
    assert!(audit.committed());
    let total: i64 = audit.reads.values().map(|v| v.as_int().unwrap()).sum();
    assert_eq!(total, 8 * 1000, "transfers must conserve the total balance");
}

#[test]
fn committed_writes_are_durable_across_site_crash_and_recovery() {
    let session = started_session(3, 6, 3);
    let write = session
        .submit(TxnSpec::new("w", vec![Operation::write("x0", 4242i64)]))
        .unwrap();
    assert!(write.committed());

    // Crash and recover every site: the committed value must survive via the
    // write-ahead logs.
    for site in session.site_ids() {
        session.crash_site(site).unwrap();
        session.recover_site(site).unwrap();
    }
    let read = session
        .submit(TxnSpec::new("r", vec![Operation::read("x0")]))
        .unwrap();
    assert!(read.committed());
    assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(4242)));
}

#[test]
fn concurrent_increments_on_one_item_are_serializable() {
    let session = started_session(3, 4, 3);
    // 40 concurrent +1 increments on the same item: the final value must be
    // exactly 1000 + (number of commits).
    let specs: Vec<TxnSpec> = (0..40)
        .map(|i| TxnSpec::new(format!("inc-{i}"), vec![Operation::increment("x1", 1)]))
        .collect();
    // Concurrent submission: one client thread per transaction.
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .into_iter()
            .map(|spec| {
                let session = &session;
                scope.spawn(move || session.submit(spec).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let commits = results.iter().filter(|r| r.committed()).count() as i64;
    assert!(commits > 0, "at least some increments must commit");

    // The check read may briefly conflict with straggler lock releases right
    // after the burst; retry a few times before judging the final value.
    let mut read = session
        .submit(TxnSpec::new("check", vec![Operation::read("x1")]))
        .unwrap();
    for _ in 0..5 {
        if read.committed() {
            break;
        }
        std::thread::sleep(Duration::from_millis(300));
        read = session
            .submit(TxnSpec::new("check", vec![Operation::read("x1")]))
            .unwrap();
    }
    assert!(
        read.committed(),
        "check read kept aborting: {:?}",
        read.outcome
    );
    assert_eq!(
        read.reads.get(&ItemId::new("x1")),
        Some(&Value::Int(1000 + commits)),
        "final value must reflect exactly the committed increments"
    );
}

#[test]
fn replicas_do_not_diverge_under_a_mixed_workload() {
    let session = started_session(4, 12, 3);
    let wlg = WorkloadRunner::new(&session);
    let report = wlg
        .run_profile(
            WorkloadProfile::WriteHeavy,
            80,
            ArrivalProcess::Closed { mpl: 8 },
        )
        .unwrap();
    assert!(report.committed() > 0);

    let pm = ProgressRunner::new(&session);
    let divergence = pm.replica_divergence().unwrap();
    assert!(divergence.is_empty(), "replica divergence: {divergence:?}");
}

#[test]
fn statistics_panel_accounts_for_every_submitted_transaction() {
    let session = started_session(3, 8, 2);
    let report = session
        .run_generated(
            WorkloadProfile::HotSpotContention,
            60,
            ArrivalProcess::Closed { mpl: 12 },
        )
        .unwrap();
    assert_eq!(report.results.len(), 60);
    let stats = session.statistics().unwrap();
    assert_eq!(stats.submitted, 60);
    assert_eq!(stats.committed + stats.aborted + stats.orphans, 60);
    assert!(stats.messages.sent > 0);
    assert!(stats.response_time.count > 0);
    // The rendered panel mentions the headline numbers.
    let panel = session.render_statistics("integration").unwrap();
    assert!(panel.contains(&format!(
        "submitted transactions      : {}",
        stats.submitted
    )));
}

#[test]
fn read_only_transactions_see_a_consistent_snapshot_of_committed_data() {
    let session = started_session(3, 2, 3);
    // Writer keeps the two items equal (x0 = x1) in every transaction.
    let writers: Vec<TxnSpec> = (1..=15)
        .map(|i| {
            TxnSpec::new(
                format!("w{i}"),
                vec![
                    Operation::write("x0", i as i64),
                    Operation::write("x1", i as i64),
                ],
            )
        })
        .collect();
    let readers: Vec<TxnSpec> = (0..15)
        .map(|i| {
            TxnSpec::new(
                format!("r{i}"),
                vec![Operation::read("x0"), Operation::read("x1")],
            )
        })
        .collect();
    let mut mixed = Vec::new();
    for (w, r) in writers.into_iter().zip(readers) {
        mixed.push(w);
        mixed.push(r);
    }
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = mixed
            .into_iter()
            .map(|spec| {
                let session = &session;
                scope.spawn(move || session.submit(spec).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for result in results
        .iter()
        .filter(|r| r.committed() && !r.reads.is_empty())
    {
        let x0 = result
            .reads
            .get(&ItemId::new("x0"))
            .and_then(|v| v.as_int());
        let x1 = result
            .reads
            .get(&ItemId::new("x1"))
            .and_then(|v| v.as_int());
        if let (Some(a), Some(b)) = (x0, x1) {
            assert_eq!(
                a, b,
                "committed reader observed a non-atomic state: x0={a}, x1={b}"
            );
        }
    }
}
