//! Topology tests (experiment FIG1/FIG2): the three-tier structure and the
//! physical mapping of sites and the name server onto simulated hosts.

use rainbow_common::config::{DatabaseSchema, DistributionSchema, ItemPlacement, SiteSpec};
use rainbow_common::protocol::ProtocolStack;
use rainbow_common::txn::TxnSpec;
use rainbow_common::{HostId, ItemId, Operation, SiteId, Value};
use rainbow_core::{Cluster, ClusterConfig};
use rainbow_net::{LatencyModel, LinkConfig, NetworkConfig, NodeId};
use std::time::Duration;

fn stack() -> ProtocolStack {
    ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(200))
        .with_quorum_timeout(Duration::from_millis(600))
        .with_commit_timeout(Duration::from_millis(600))
        .with_parallel_quorums_from_env()
        .with_coordinator_from_env()
}

#[test]
fn figure2_topology_multiple_sites_per_host() {
    // Figure 2 of the paper shows several Rainbow sites and the name server
    // sharing hosts in the Rainbow host domain. Two hosts, four sites.
    let mut distribution = DistributionSchema::new();
    distribution.add(SiteSpec::new(SiteId(0), HostId(0)));
    distribution.add(SiteSpec::new(SiteId(1), HostId(0)));
    distribution.add(SiteSpec::new(SiteId(2), HostId(1)));
    distribution.add(SiteSpec::new(SiteId(3), HostId(1)));
    let database = DatabaseSchema::uniform(8, 10, &distribution.site_ids(), 3).unwrap();

    let config = ClusterConfig {
        distribution: distribution.clone(),
        database,
        stack: stack(),
        network: NetworkConfig::perfect(),
        client_timeout: Duration::from_secs(5),
        record_history: false,
        tracing: rainbow_trace::TraceConfig::disabled(),
        storage: rainbow_core::StorageConfig::from_env(),
    };
    let cluster = Cluster::start(config).unwrap();
    assert_eq!(cluster.site_ids().len(), 4);
    assert_eq!(distribution.host_ids().len(), 2);

    let result = cluster.submit(TxnSpec::new(
        "topology-check",
        vec![Operation::write("x0", 7i64), Operation::read("x1")],
    ));
    assert!(result.committed(), "outcome: {:?}", result.outcome);
}

#[test]
fn name_server_serves_the_schema_to_every_site() {
    // Every site fetches its schema through the name server at startup: the
    // NS_GET_SCHEMA / NS_SCHEMA traffic must appear on the network counters,
    // once per site at minimum.
    let config = ClusterConfig::quick(4, 8, 3).unwrap();
    let cluster = Cluster::start(config).unwrap();
    let counters = cluster.network_counters();
    assert!(counters.kind("NS_GET_SCHEMA") >= 4);
    assert!(counters.kind("NS_SCHEMA") >= 4);
    // The name server is its own node on the network, distinct from sites.
    assert!(counters.link(NodeId::site(0), NodeId::NameServer) >= 1);
}

#[test]
fn per_link_latency_overrides_shape_response_times() {
    // Site 2 is "far away": every message to it takes 30 ms. Transactions
    // whose quorums involve it are visibly slower than purely local ones.
    let far = NodeId::site(2);
    let mut network = NetworkConfig::perfect().with_seed(3);
    for near in [
        NodeId::site(0),
        NodeId::site(1),
        NodeId::NameServer,
        NodeId::Client(0),
    ] {
        network = network
            .override_link(
                near,
                far,
                LinkConfig::with_latency(LatencyModel::constant(Duration::from_millis(30))),
            )
            .override_link(
                far,
                near,
                LinkConfig::with_latency(LatencyModel::constant(Duration::from_millis(30))),
            );
    }
    let distribution = DistributionSchema::one_site_per_host(3);
    let mut database = DatabaseSchema::new();
    // "local" lives on sites 0 and 1 only; "remote" lives on sites 0 and 2,
    // so its write quorum (both copies) must cross the slow link.
    database.declare(
        "local",
        0i64,
        ItemPlacement::majority(vec![SiteId(0), SiteId(1)]),
    );
    database.declare(
        "remote",
        0i64,
        ItemPlacement::majority(vec![SiteId(0), SiteId(2)]),
    );
    let config = ClusterConfig {
        distribution,
        database,
        stack: stack(),
        network,
        client_timeout: Duration::from_secs(5),
        record_history: false,
        tracing: rainbow_trace::TraceConfig::disabled(),
        storage: rainbow_core::StorageConfig::from_env(),
    };
    let cluster = Cluster::start(config).unwrap();

    let local = cluster
        .submit(TxnSpec::new("local", vec![Operation::write("local", 1i64)]).at_site(SiteId(0)));
    let remote = cluster
        .submit(TxnSpec::new("remote", vec![Operation::write("remote", 1i64)]).at_site(SiteId(0)));
    assert!(local.committed(), "local outcome: {:?}", local.outcome);
    assert!(remote.committed(), "remote outcome: {:?}", remote.outcome);
    assert!(
        remote.response_time > local.response_time + Duration::from_millis(20),
        "remote ({:?}) should be much slower than local ({:?})",
        remote.response_time,
        local.response_time
    );
}

#[test]
fn partial_replication_places_copies_only_at_declared_holders() {
    let distribution = DistributionSchema::one_site_per_host(3);
    let mut database = DatabaseSchema::new();
    database.declare("a", 1i64, ItemPlacement::majority(vec![SiteId(0)]));
    database.declare(
        "b",
        2i64,
        ItemPlacement::majority(vec![SiteId(1), SiteId(2)]),
    );
    let config = ClusterConfig {
        distribution,
        database,
        stack: stack(),
        network: NetworkConfig::perfect(),
        client_timeout: Duration::from_secs(5),
        record_history: false,
        tracing: rainbow_trace::TraceConfig::disabled(),
        storage: rainbow_core::StorageConfig::from_env(),
    };
    let cluster = Cluster::start(config).unwrap();

    let s0 = cluster.database_snapshot(SiteId(0)).unwrap();
    let s1 = cluster.database_snapshot(SiteId(1)).unwrap();
    let s2 = cluster.database_snapshot(SiteId(2)).unwrap();
    assert_eq!(s0.len(), 1);
    assert_eq!(s1.len(), 1);
    assert_eq!(s2.len(), 1);
    assert_eq!(s0[0].0, ItemId::new("a"));
    assert_eq!(s1[0].0, ItemId::new("b"));
    assert_eq!(s2[0].0, ItemId::new("b"));

    // Transactions spanning both items still work (distributed execution).
    let result = cluster.submit(TxnSpec::new(
        "span",
        vec![Operation::read("a"), Operation::increment("b", 5)],
    ));
    assert!(result.committed(), "outcome: {:?}", result.outcome);
    assert_eq!(result.reads.get(&ItemId::new("a")), Some(&Value::Int(1)));
}

#[test]
fn message_traffic_is_attributed_per_kind_and_per_link() {
    let config = ClusterConfig::quick(3, 6, 3).unwrap();
    let cluster = Cluster::start(config).unwrap();
    let before = cluster.network_counters().snapshot();
    let result = cluster.submit(TxnSpec::new(
        "traffic",
        vec![Operation::write("x0", 1i64), Operation::write("x1", 2i64)],
    ));
    assert!(result.committed());
    let delta = cluster.network_counters().delta_since(&before);
    // A distributed write must have produced pre-writes, prepares, votes,
    // decisions and acks on the wire.
    assert!(delta.kind("RCP_PREWRITE") > 0, "delta: {delta:?}");
    assert!(delta.kind("ACP_PREPARE") > 0);
    assert!(delta.kind("ACP_VOTE") > 0);
    assert!(delta.kind("ACP_DECISION") > 0);
    assert!(delta.kind("ACP_ACK") > 0);
    assert!(result.messages > 0);
}
