//! Chaos laboratory integration: seeded nemesis runs judged by the
//! serializability checker, across the full protocol matrix.
//!
//! The PR-sized matrix lives here (a few seeds per protocol); the wide
//! seed matrices run through `examples/chaos.rs` in the `chaos-smoke` CI
//! job (8 seeds × {TQ, PC}) and the nightly `chaos-matrix` workflow
//! (64 seeds × all five RCPs).

use rainbow_check::{check_history, fixtures};
use rainbow_common::protocol::{CcpKind, ProtocolStack, RcpKind};
use rainbow_common::txn::TxnSpec;
use rainbow_common::Operation;
use rainbow_control::{generate_schedule, run_nemesis, NemesisConfig};
use rainbow_core::{Cluster, ClusterConfig};
use std::time::Duration;

/// A nemesis shape small enough for PR-test latency but still exercising
/// every event kind with real concurrency.
fn quick_nemesis() -> NemesisConfig {
    NemesisConfig {
        spec_transactions: 24,
        interactive_transactions: 6,
        events: 5,
        ..NemesisConfig::default()
    }
}

#[test]
fn nemesis_replays_a_seed_bit_for_bit() {
    let config = quick_nemesis().with_rcp(RcpKind::QuorumConsensus);
    let first = run_nemesis(&config, 11).expect("nemesis run");
    let second = run_nemesis(&config, 11).expect("nemesis replay");
    // The replayable inputs are identical: the schedule (and the seeded
    // workload behind it) is a pure function of the seed.
    assert_eq!(first.schedule, second.schedule);
    assert_eq!(first.schedule, generate_schedule(&config, 11));
    assert!(first.passed(), "{}", first.summary());
    assert!(second.passed(), "{}", second.summary());
    // Both runs processed the whole seeded workload.
    assert!(first.committed > 0);
    assert!(
        first.committed + first.aborted + first.orphaned >= config.spec_transactions,
        "{}",
        first.summary()
    );
}

#[test]
fn every_rcp_is_serializable_under_chaos() {
    for rcp in RcpKind::ALL {
        for seed in [1u64, 2] {
            let report = run_nemesis(&quick_nemesis().with_rcp(rcp), seed).expect("nemesis run");
            assert!(
                report.passed(),
                "{rcp} seed {seed} failed:\n{}\nschedule:\n{}",
                report.summary(),
                rainbow_control::format_schedule(&report.schedule)
            );
        }
    }
}

#[test]
fn every_ccp_is_serializable_under_chaos() {
    for ccp in [
        CcpKind::TwoPhaseLocking,
        CcpKind::TimestampOrdering,
        CcpKind::MultiversionTimestampOrdering,
    ] {
        let report = run_nemesis(&quick_nemesis().with_ccp(ccp), 5).expect("nemesis run");
        assert!(
            report.passed(),
            "{ccp:?} failed:\n{}\nschedule:\n{}",
            report.summary(),
            rainbow_control::format_schedule(&report.schedule)
        );
    }
}

#[test]
fn checker_rejects_every_anomaly_fixture_and_accepts_serial_history() {
    for (name, history) in fixtures::rejected() {
        let report = check_history(&history);
        assert!(!report.is_serializable(), "{name} must be rejected");
    }
    assert!(check_history(&fixtures::committed_serial()).is_serializable());
}

#[test]
fn spec_replay_and_interactive_conversations_emit_identical_history_shapes() {
    let stack = ProtocolStack::rainbow_default()
        .with_lock_wait_timeout(Duration::from_millis(200))
        .with_quorum_timeout(Duration::from_millis(500))
        .with_commit_timeout(Duration::from_millis(500))
        .with_parallel_quorums_from_env()
        .with_coordinator_from_env();
    let base = ClusterConfig::quick(3, 4, 3).unwrap();
    let cluster = Cluster::start(ClusterConfig {
        stack,
        record_history: true,
        ..base
    })
    .unwrap();

    // The same logical transaction, one-shot...
    let spec = TxnSpec::new(
        "spec",
        vec![
            Operation::read("x0"),
            Operation::write("x1", 5i64),
            Operation::increment("x2", 3),
        ],
    );
    assert!(cluster.submit(spec).committed());

    // ...and conversationally.
    let mut client = cluster.client();
    let mut txn = client.begin("conversation").unwrap();
    txn.read("x0").unwrap();
    txn.write("x1", 5i64).unwrap();
    txn.increment("x2", 3).unwrap();
    txn.commit().unwrap();
    drop(client);

    assert!(cluster.await_history_quiescence(Duration::from_secs(5)));
    let history = cluster.history().expect("recording on");
    assert_eq!(history.len(), 2);
    let (spec_rec, conv_rec) = (&history.records[0], &history.records[1]);
    assert!(spec_rec.committed() && conv_rec.committed());
    // Identical footprint shape: same read items in the same order, same
    // write items in the same order. (Values/versions differ where the
    // second transaction sees the first one's effects — that is the data,
    // not the shape.)
    let read_items =
        |r: &rainbow_common::TxnRecord| r.reads.iter().map(|o| o.item.clone()).collect::<Vec<_>>();
    let write_items =
        |r: &rainbow_common::TxnRecord| r.writes.iter().map(|w| w.item.clone()).collect::<Vec<_>>();
    assert_eq!(read_items(spec_rec), read_items(conv_rec));
    assert_eq!(write_items(spec_rec), write_items(conv_rec));

    // And the combined history is, of course, serializable.
    let report = check_history(&history);
    assert!(report.is_serializable(), "{:?}", report.violations);
}
