//! Tracing must observe, never perturb: a traced run and an untraced run of
//! the same seeded workload decide the same transactions the same way and
//! read the same values, for every replication protocol. Also covers the
//! exported artifacts: the Chrome trace validates, and phase histograms are
//! populated exactly when tracing is on.

use rainbow_common::protocol::{ProtocolStack, RcpKind};
use rainbow_common::TxnId;
use rainbow_control::Session;
use rainbow_net::NetworkConfig;
use rainbow_trace::{chrome_trace_json, validate_chrome_trace, TraceConfig};
use rainbow_wlg::{ArrivalProcess, WorkloadProfile};
use std::collections::BTreeMap;
use std::time::Duration;

/// What a client can observe of one transaction: its label, its decision
/// and the values its reads returned. Timing fields are deliberately
/// excluded — wall-clock response times differ run to run.
type Observation = (String, String, BTreeMap<String, String>);

fn run_workload(rcp: RcpKind, tracing: TraceConfig) -> Vec<Observation> {
    let mut session = Session::new();
    session.configure_network(NetworkConfig::perfect()).unwrap();
    session.configure_sites(3).unwrap();
    session
        .configure_protocols(
            ProtocolStack::rainbow_default()
                .with_rcp(rcp)
                .with_lock_wait_timeout(Duration::from_millis(150))
                .with_parallel_quorums_from_env()
                .with_coordinator_from_env(),
        )
        .unwrap();
    session.configure_uniform_database(8, 100, 3).unwrap();
    session.set_seed(23);
    session.set_tracing(tracing);
    session.start().unwrap();

    // MPL 1 keeps the schedule deterministic so the two runs are
    // bit-for-bit comparable; the differential assertion is about the
    // instrumentation, not about races.
    let report = session
        .run_generated(
            WorkloadProfile::WriteHeavy,
            30,
            ArrivalProcess::Closed { mpl: 1 },
        )
        .unwrap();

    report
        .results
        .iter()
        .map(|r| {
            (
                r.label.clone(),
                format!("{:?}", r.outcome),
                r.reads
                    .iter()
                    .map(|(item, value)| (item.to_string(), format!("{value:?}")))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn traced_and_untraced_runs_decide_identically_for_every_rcp() {
    for rcp in RcpKind::ALL {
        let untraced = run_workload(rcp, TraceConfig::disabled());
        let traced = run_workload(rcp, TraceConfig::sample_all());
        let histograms = run_workload(rcp, TraceConfig::histograms_only());
        assert_eq!(
            untraced, traced,
            "{rcp:?}: full tracing changed transaction outcomes"
        );
        assert_eq!(
            untraced, histograms,
            "{rcp:?}: phase histograms changed transaction outcomes"
        );
    }
}

#[test]
fn traced_run_exports_a_valid_chrome_trace() {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session.configure_uniform_database(8, 100, 3).unwrap();
    session.set_tracing(TraceConfig::sample_all());
    session.start().unwrap();
    session
        .run_generated(
            WorkloadProfile::ReadHeavy,
            20,
            ArrivalProcess::Closed { mpl: 4 },
        )
        .unwrap();

    let tracer = session.tracer().unwrap().expect("tracing enabled");
    let events = tracer.events();
    assert!(!events.is_empty(), "traced run produced no spans");

    let json = chrome_trace_json(&events);
    let check = validate_chrome_trace(&json).expect("exported trace must be valid");
    assert_eq!(check.begins, check.ends, "unbalanced begin/end events");
    assert!(check.processes > 0, "no transactions in the trace");

    // Every traced transaction's event set must contain its root span.
    let traced: Vec<TxnId> = tracer.traced_txns();
    assert!(!traced.is_empty());
    for txn in traced {
        assert!(
            tracer.txn_events(txn).iter().any(|e| e.label == "txn"),
            "{txn}: no root span"
        );
    }
}

#[test]
fn untraced_session_has_no_tracer_and_empty_phase_stats() {
    let mut session = Session::new();
    session.configure_sites(3).unwrap();
    session.configure_uniform_database(8, 100, 3).unwrap();
    session.start().unwrap();
    session
        .run_generated(
            WorkloadProfile::ReadHeavy,
            5,
            ArrivalProcess::Closed { mpl: 2 },
        )
        .unwrap();
    assert!(session.tracer().unwrap().is_none());
}
