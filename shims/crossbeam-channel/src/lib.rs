//! Minimal `crossbeam-channel` shim: a multi-producer multi-consumer FIFO
//! channel built on `Mutex` + `Condvar`, with cloneable senders *and*
//! receivers, optional capacity bounds, and crossbeam's disconnect
//! semantics (a side disconnects when its last handle is dropped).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Waits of receivers (queue empty) and of bounded senders (queue full).
    readable: Condvar,
    writable: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe the
            // disconnect.
            let _guard = self.inner.lock();
            self.inner.readable.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.inner.lock();
            self.inner.writable.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .inner
                        .writable
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.readable.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or every sender is
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.writable.notify_one();
                return Ok(value);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .readable
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives a message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.writable.notify_one();
                return Ok(value);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (s, _timeout_result) = self
                .inner
                .readable
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
    }

    /// Receives a message if one is already queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.inner.writable.notify_one();
            return Ok(value);
        }
        if self.inner.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnects_when_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 9);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = thread::spawn(move || tx.send(2).map(|_| ()));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        sender.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn many_producers_many_consumers() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(rx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
