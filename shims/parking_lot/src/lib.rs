//! Minimal `parking_lot` shim backed by `std::sync`.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the real `parking_lot` API that Rainbow uses: `Mutex` / `RwLock`
//! with guard-returning (non-poisoning) lock methods and a `Condvar` whose
//! `wait_until` takes `&mut MutexGuard` and an absolute deadline. Poisoned
//! std locks are transparently recovered (parking_lot has no poisoning).

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_until` can temporarily take the std guard
    // out (std's condvar consumes and returns guards by value).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] (parking_lot-style API).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `deadline` passes, whichever comes first.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_until(&mut guard, Instant::now() + Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut guard = m2.lock();
            while !*guard {
                let r = cv2.wait_until(&mut guard, Instant::now() + Duration::from_secs(5));
                if r.timed_out() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }
}
