//! Derive macros for the in-tree mini-serde.
//!
//! `syn`/`quote` are unavailable in this build environment, so the input
//! item is parsed directly from the `proc_macro::TokenStream`. Supported
//! shapes are exactly what Rainbow derives on: non-generic structs (named,
//! tuple and unit) and non-generic enums with unit / tuple / struct
//! variants. `#[serde(...)]` attributes are not supported (none are used).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum Item {
    /// `struct S { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(A, B);` — one-field tuples serialize transparently.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (mini-serde flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(message) => error(&message),
    }
}

/// Derives `serde::Deserialize` (mini-serde flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(message) => error(&message),
    }
}

fn error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "mini-serde derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(group.stream())?,
                })
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(group.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(group.stream())?,
                })
            }
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility modifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // [...]
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                // `pub(crate)` / `pub(super)` etc.
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant body at top-level commas, ignoring commas nested
/// in groups or between angle brackets (`BTreeMap<K, V>`).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth: i32 = 0;
    let mut prev_char = ' ';
    for token in stream {
        match &token {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => angle_depth += 1,
                    // `->` must not close an angle bracket.
                    '>' if prev_char != '-' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        pieces.push(std::mem::take(&mut current));
                        prev_char = ' ';
                        continue;
                    }
                    _ => {}
                }
                prev_char = c;
            }
            _ => prev_char = ' ',
        }
        current.push(token);
    }
    if !current.is_empty() {
        pieces.push(current);
    }
    pieces
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for piece in split_top_level(stream) {
        let mut pos = 0;
        skip_attrs_and_vis(&piece, &mut pos);
        match piece.get(pos) {
            Some(TokenTree::Ident(ident)) => fields.push(ident.to_string()),
            None => continue, // trailing comma
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for piece in split_top_level(stream) {
        let mut pos = 0;
        skip_attrs_and_vis(&piece, &mut pos);
        let name = match piece.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let kind = match piece.get(pos) {
            None => VariantKind::Unit,
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(group.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "mini-serde derive does not support explicit discriminants (variant `{name}`)"
                ))
            }
            other => return Err(format!("unsupported variant body: {other:?}")),
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_content(&self.{f})),"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Seq(vec![{elems}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => {
                            format!("{name}::{v} => ::serde::Content::Str({v:?}.to_string()),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{v}(f0) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let elems: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b}),"))
                                .collect();
                            format!(
                                "{name}::{v}({}) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                                 ::serde::Content::Seq(vec![{elems}]))]),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_content({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {binders} }} => ::serde::Content::Map(vec![\
                                 ({v:?}.to_string(), ::serde::Content::Map(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(map, {f:?})?,"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                        -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let map = content.as_map().ok_or_else(|| ::serde::DeError::custom(\
                             format!(\"expected map for struct {name}, found {{}}\", content.kind())))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) \
                    -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_content(content)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?,"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                        -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let seq = content.as_seq().filter(|s| s.len() == {arity})\
                             .ok_or_else(|| ::serde::DeError::custom(\
                                 \"expected sequence of {arity} for tuple struct {name}\"))?;\n\
                         Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(_content: &::serde::Content) \
                    -> ::std::result::Result<Self, ::serde::DeError> {{ Ok({name}) }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{0:?} => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => format!("{v:?} => Ok({name}::{v}),"),
                        VariantKind::Tuple(1) => format!(
                            "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_content(payload)?)),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let inits: String = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&seq[{i}])?,")
                                })
                                .collect();
                            format!(
                                "{v:?} => {{\n\
                                     let seq = payload.as_seq().filter(|s| s.len() == {arity})\
                                         .ok_or_else(|| ::serde::DeError::custom(\
                                             \"expected sequence of {arity} for variant {v}\"))?;\n\
                                     Ok({name}::{v}({inits}))\n\
                                 }}"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::get_field(map, {f:?})?,"))
                                .collect();
                            format!(
                                "{v:?} => {{\n\
                                     let map = payload.as_map().ok_or_else(|| \
                                         ::serde::DeError::custom(\
                                             \"expected map for variant {v}\"))?;\n\
                                     Ok({name}::{v} {{ {inits} }})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                        -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError::custom(format!(\
                                     \"unknown variant `{{other}}` of enum {name}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::DeError::custom(format!(\
                                         \"unknown variant `{{other}}` of enum {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::custom(format!(\
                                 \"expected enum {name} tag, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
