//! JSON serialization for the in-tree mini-serde shim.
//!
//! Renders [`serde::Content`] trees as JSON text and parses JSON text back
//! into them, exposing the `to_string` / `to_string_pretty` / `from_str`
//! entry points Rainbow uses. Non-finite floats serialize as `null`, as in
//! the real `serde_json`.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A JSON error (serialization never fails; parsing and mapping can).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Keep floats recognizable as floats on re-parse.
                let text = v.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    0x10000
                                        + ((u32::from(first) - 0xD800) << 10)
                                        + (u32::from(second) - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                u32::from(first)
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let value = u16::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        // Whole floats stay floats on re-parse.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nwith \"quotes\" and \\slashes\\ and unicode \u{1F980}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""🦀""#).unwrap(), "\u{1F980}");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1i64, -2, 3];
        assert_eq!(from_str::<Vec<i64>>(&to_string(&v).unwrap()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1u64, 2]);
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<String, Vec<u64>>>(&json).unwrap(), m);
    }

    #[test]
    fn pretty_output_is_indented_and_reparseable() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u64, String)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null_and_parse_back_as_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("maybe").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 , 3 ] \n").unwrap(),
            vec![1, 2, 3]
        );
    }
}
