//! Minimal serde-compatible serialization framework.
//!
//! The real `serde` is unavailable in this build environment, so this crate
//! supplies the same *spelling* — `Serialize` / `Deserialize` traits and
//! derive macros — over a much simpler data model: every value serializes
//! into a self-describing [`Content`] tree, and `serde_json` (the sibling
//! shim) renders that tree as JSON. Conventions follow serde where they are
//! observable: structs become maps, newtype structs are transparent, enums
//! are externally tagged, and `Duration` becomes `{secs, nanos}`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate value every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON null / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer outside `i64` range.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A string-keyed map (JSON object). Field order is preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, when this content is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, when this content is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, when this content is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short label of the content kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can be serialized into [`Content`].
pub trait Serialize {
    /// Serializes `self` into the intermediate content tree.
    fn to_content(&self) -> Content;
}

/// A type that can be deserialized from [`Content`].
pub trait Deserialize: Sized {
    /// Rebuilds a value from the intermediate content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Alias matching serde's `DeserializeOwned` bound.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let value: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    other => return Err(DeError::custom(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(value).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Content::I64(v as i64) } else { Content::U64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let value: u64 = match content {
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::custom("negative integer for unsigned field"))?,
                    Content::U64(v) => *v,
                    other => return Err(DeError::custom(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(value).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!(
                "expected float, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let s = String::from_content(content)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, found {}", content.kind())))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(content).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let seq = content.as_seq().ok_or_else(|| {
                    DeError::custom(format!("expected tuple sequence, found {}", content.kind()))
                })?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected} elements, found {}", seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// Maps serialize as sequences of `[key, value]` pairs. Unlike JSON objects
// this supports non-string keys (Rainbow keys maps by ItemId, SiteId, TxnId)
// and round-trips through the same shims that wrote them.
macro_rules! impl_map {
    ($map:ident, $($bound:tt)+) => {
        impl<K: Serialize + $($bound)+, V: Serialize> Serialize for $map<K, V> {
            fn to_content(&self) -> Content {
                Content::Seq(
                    self.iter()
                        .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $map<K, V> {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let seq = content.as_seq().ok_or_else(|| {
                    DeError::custom(format!("expected map sequence, found {}", content.kind()))
                })?;
                seq.iter()
                    .map(|pair| {
                        let kv = pair.as_seq().filter(|s| s.len() == 2).ok_or_else(|| {
                            DeError::custom("expected [key, value] pair")
                        })?;
                        Ok((K::from_content(&kv[0])?, V::from_content(&kv[1])?))
                    })
                    .collect()
            }
        }
    };
}

impl_map!(BTreeMap, Ord);
impl_map!(HashMap, Eq + Hash);

macro_rules! impl_set {
    ($set:ident, $($bound:tt)+) => {
        impl<T: Serialize + $($bound)+> Serialize for $set<T> {
            fn to_content(&self) -> Content {
                Content::Seq(self.iter().map(Serialize::to_content).collect())
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $set<T> {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                content
                    .as_seq()
                    .ok_or_else(|| {
                        DeError::custom(format!("expected sequence, found {}", content.kind()))
                    })?
                    .iter()
                    .map(T::from_content)
                    .collect()
            }
        }
    };
}

impl_set!(BTreeSet, Ord);
impl_set!(HashSet, Eq + Hash);

impl Serialize for Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Content::I64(i64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content.as_map().ok_or_else(|| {
            DeError::custom(format!("expected duration map, found {}", content.kind()))
        })?;
        let secs: u64 = get_field(map, "secs")?;
        let nanos: u32 = get_field(map, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

/// Looks up and deserializes a struct field by name (derive-macro helper).
pub fn get_field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(key, _)| key == name) {
        Some((_, value)) => {
            T::from_content(value).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
        }
        None => Err(DeError::custom(format!("missing field `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u32>::None.to_content(), Content::Null);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::I64(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        m.insert("b".to_string(), 2i64);
        assert_eq!(
            BTreeMap::<String, i64>::from_content(&m.to_content()).unwrap(),
            m
        );
        let t = (1u8, "x".to_string(), -4i64);
        assert_eq!(
            <(u8, String, i64)>::from_content(&t.to_content()).unwrap(),
            t
        );
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(3, 250_000_000);
        assert_eq!(Duration::from_content(&d.to_content()).unwrap(), d);
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let map = vec![("present".to_string(), Content::I64(1))];
        let err = get_field::<u64>(&map, "absent").unwrap_err();
        assert!(err.to_string().contains("absent"));
    }
}
