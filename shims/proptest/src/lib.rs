//! Minimal `proptest` shim.
//!
//! Supports the subset Rainbow's property tests use: the `proptest!` macro
//! with `#![proptest_config(...)]` and `pattern in strategy` arguments,
//! integer-range strategies, `any::<bool>()`, tuple strategies,
//! `prop::collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//! Inputs are generated from a deterministic per-test RNG (seeded from the
//! test name) so failures are reproducible; there is no shrinking — the
//! assertion message carries the failing inputs instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Everything the `proptest!` macro and test bodies need.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG used to generate test inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds the generator from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy yielding always the same value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker for types generatable by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// A size specification: a fixed length or a range of lengths.
        pub trait SizeRange {
            /// Picks a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + (rng.next_u64() as usize) % (self.end - self.start)
            }
        }

        /// Strategy generating `Vec`s of values from an element strategy.
        pub struct VecStrategy<S, L> {
            element: S,
            length: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.length.pick(rng);
                (0..len).map(|_| self.element.gen_value(rng)).collect()
            }
        }

        /// Vectors of `element` values with lengths from `length`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, length: L) -> VecStrategy<S, L> {
            VecStrategy { element, length }
        }
    }
}

/// Property assertion (panics with the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { body }`
/// (written with its own `#[test]` attribute, as in real proptest) becomes a
/// function running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let case_seed = rng.next_u64();
                let mut case_rng = $crate::TestRng::from_seed(case_seed);
                $(let $arg = $crate::Strategy::gen_value(&($strategy), &mut case_rng);)*
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {case} failed (seed {case_seed:#x}) in {}",
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u64..9).gen_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..5).gen_value(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = crate::TestRng::deterministic("vec");
        let fixed = prop::collection::vec(any::<bool>(), 8usize).gen_value(&mut rng);
        assert_eq!(fixed.len(), 8);
        for _ in 0..100 {
            let ranged = prop::collection::vec(0u32..5, 1..8).gen_value(&mut rng);
            assert!((1..8).contains(&ranged.len()));
            assert!(ranged.iter().all(|v| *v < 5));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, tuples and collections all bind.
        #[test]
        #[allow(unused_mut)]
        fn macro_binds_patterns(
            mut xs in prop::collection::vec((0u64..10, any::<bool>()), 1..6),
            y in 1u32..4,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..4).contains(&y));
            xs.sort();
            for (v, _flag) in xs {
                prop_assert!(v < 10);
            }
        }
    }
}
