//! Minimal `rand` 0.8 shim.
//!
//! Provides `Rng::gen` / `gen_range` / `gen_bool`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng` (an xoshiro256** generator seeded through SplitMix64).
//! Only deterministic, seeded use is supported — exactly how Rainbow uses
//! randomness ("experiments must be repeatable").

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range a value can be sampled from by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, automatically available on every RNG.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256** seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_rngs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1700..2300).contains(&hits), "hits {hits}");
    }
}
