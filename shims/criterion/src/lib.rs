//! Minimal `criterion` shim.
//!
//! Implements `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark warms up, then takes
//! `sample_size` timed samples within (approximately) `measurement_time`,
//! and reports the median, fastest and slowest per-iteration time.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// shim sizes batches from the measured routine cost instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A single benchmark's measurement driver.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Median / min / max nanoseconds per iteration, filled by `iter*`.
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iterations: u64,
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl<'a> Bencher<'a> {
    /// Benchmarks `routine` by calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, measuring the cost
        // of one call so the sample loop can batch appropriately.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut calls = 0u64;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / calls.max(1) as f64;

        // Aim each sample at measurement_time / sample_size.
        let per_sample_ns =
            self.config.measurement_time.as_nanos() as f64 / self.config.sample_size as f64;
        let batch = ((per_sample_ns / per_call.max(1.0)).ceil() as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        let mut iterations = 0u64;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples_ns.push(elapsed / batch as f64);
            iterations += batch;
        }
        self.record(samples_ns, iterations);
    }

    /// Benchmarks `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        let mut iterations = 0u64;
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            let output = routine(input);
            let elapsed = start.elapsed().as_nanos() as f64;
            black_box(output);
            samples_ns.push(elapsed);
            iterations += 1;
        }
        self.record(samples_ns, iterations);
    }

    fn record(&mut self, mut samples_ns: Vec<f64>, iterations: u64) {
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median_ns = samples_ns[samples_ns.len() / 2];
        self.result = Some(Sample {
            median_ns,
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("at least one sample"),
            iterations,
        });
    }
}

/// The benchmark harness configuration and runner.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.config.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(sample) => {
                println!(
                    "{name:<55} median {:>12} (min {}, max {}, {} iters)",
                    format_ns(sample.median_ns),
                    format_ns(sample.min_ns),
                    format_ns(sample.max_ns),
                    sample.iterations,
                );
            }
            None => println!("{name:<55} (no measurement recorded)"),
        }
        self
    }

    /// Criterion's explicit summary hook (a no-op here: results print as
    /// each benchmark finishes).
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut criterion = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut counter = 0u64;
        criterion.bench_function("shim/self-test", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            })
        });
        assert!(counter > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut criterion = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        criterion.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
    }
}
