//! # rainbow-core
//!
//! The Rainbow core: "the name server and a number of Rainbow sites"
//! (Section 2 of the paper), plus the transaction manager that wires the
//! three protocol layers together and the progress monitor that produces the
//! statistics panel of Figure 5.
//!
//! * [`messages`] — the protocol message set exchanged between sites, the
//!   name server and clients over the `rainbow-net` simulator;
//! * [`name_server`] — the (single, per-instance) name server storing the
//!   distribution, fragmentation and replication schema and answering
//!   lookups from sites;
//! * [`site`] — the Rainbow site runtime: a dispatcher thread, one worker
//!   thread per in-flight transaction (exactly as in the paper: "the site
//!   dedicates one thread to process it"), copy-access handling through the
//!   configured CCP, and 2PC/3PC participant handling;
//! * [`coordinator`] — the home-site transaction manager: drives the RCP
//!   (quorum building per operation), then the ACP, and classifies aborts by
//!   the layer that caused them;
//! * [`cluster`] — builds a complete Rainbow instance (network + name
//!   server + sites) from configuration and offers the client API used by
//!   the workload generator, the Session layer, the examples and the
//!   benches;
//! * [`client`] — the interactive transaction API: `Cluster::client()`
//!   hands out [`client::Client`] handles whose `begin → read/write →
//!   commit` conversations drive the coordinator one operation at a time,
//!   with typed layer-attributed errors, abort-on-drop safety and a retry
//!   combinator. One-shot `TxnSpec` submission is an adapter over this;
//! * [`metrics`] — per-site metrics and the global progress monitor.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod coordinator;
pub mod messages;
pub mod metrics;
pub mod name_server;
pub mod site;

pub use client::{Client, RetryPolicy, Txn};
pub use cluster::{Cluster, ClusterConfig};
pub use messages::{Msg, NextOp, OpReply};
pub use metrics::{ProgressMonitor, SiteMetrics};
pub use name_server::NameServer;
pub use rainbow_storage::{EngineKind, PowerLossFault, StorageConfig};
pub use site::SiteHandle;
