//! Per-site metrics and the global progress monitor.
//!
//! The progress monitor is the PM role of the paper's middle tier (the
//! "PMlet"): it aggregates per-site counters, transaction results and
//! network-simulator counters into the [`StatsSnapshot`] that drives the
//! transaction-processing output panel (Figure 5) and every experiment in
//! EXPERIMENTS.md.

use parking_lot::Mutex;
use rainbow_common::stats::{AbortBreakdown, LoadBalance, StatsSnapshot};
use rainbow_common::txn::{TxnOutcome, TxnResult};
use rainbow_common::SiteId;
use rainbow_net::NetworkCounters;
use rainbow_trace::{LogHistogram, Tracer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lightweight per-site counters, shared between a site runtime and the
/// progress monitor.
#[derive(Debug, Default)]
pub struct SiteMetrics {
    /// Transactions for which this site was the home site.
    pub home_transactions: AtomicU64,
    /// Copy-access and commit-protocol requests served for other sites.
    pub served_requests: AtomicU64,
    /// Copy accesses rejected by the local CCP.
    pub ccp_rejections: AtomicU64,
    /// Participant-side prepares voted YES.
    pub votes_yes: AtomicU64,
    /// Participant-side prepares voted NO.
    pub votes_no: AtomicU64,
    /// Stale transactions the janitor cleaned up (coordinator never came
    /// back with a decision).
    pub janitor_cleanups: AtomicU64,
}

impl SiteMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        SiteMetrics::default()
    }

    /// Increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The global progress monitor: collects transaction results and renders
/// statistics snapshots.
pub struct ProgressMonitor {
    started: Instant,
    submitted: AtomicU64,
    restarted: AtomicU64,
    orphans: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    /// Response-time distribution. A constant-memory log-bucketed histogram
    /// rather than a sample vector: long chaos runs used to grow an
    /// unbounded `Vec<Duration>` here.
    response_times: Mutex<LogHistogram>,
    aborts: Mutex<AbortBreakdown>,
    per_site: Mutex<BTreeMap<SiteId, Arc<SiteMetrics>>>,
    network: Arc<NetworkCounters>,
    tracer: Option<Arc<Tracer>>,
}

impl ProgressMonitor {
    /// Creates a monitor reading message counters from `network`.
    pub fn new(network: Arc<NetworkCounters>) -> Self {
        Self::with_tracer(network, None)
    }

    /// Creates a monitor that additionally reads per-phase latency
    /// histograms from `tracer` when rendering snapshots.
    pub fn with_tracer(network: Arc<NetworkCounters>, tracer: Option<Arc<Tracer>>) -> Self {
        ProgressMonitor {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            restarted: AtomicU64::new(0),
            orphans: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            response_times: Mutex::new(LogHistogram::new()),
            aborts: Mutex::new(AbortBreakdown::default()),
            per_site: Mutex::new(BTreeMap::new()),
            network,
            tracer,
        }
    }

    /// Registers the metrics handle of a site.
    pub fn register_site(&self, site: SiteId, metrics: Arc<SiteMetrics>) {
        self.per_site.lock().insert(site, metrics);
    }

    /// Records that a transaction was submitted.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed transaction result.
    pub fn record_result(&self, result: &TxnResult) {
        match &result.outcome {
            TxnOutcome::Committed => {
                self.committed.fetch_add(1, Ordering::Relaxed);
            }
            TxnOutcome::Aborted(cause) => {
                self.aborted.fetch_add(1, Ordering::Relaxed);
                self.aborts.lock().record(cause.layer(), cause.to_string());
            }
            TxnOutcome::Orphaned => {
                self.orphans.fetch_add(1, Ordering::Relaxed);
            }
        }
        if result.restarts > 0 {
            self.restarted.fetch_add(1, Ordering::Relaxed);
        }
        if !result.outcome.is_orphaned() {
            self.response_times
                .lock()
                .record_duration(result.response_time);
        }
    }

    /// Time elapsed since the monitor was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Renders the current statistics snapshot (the Figure 5 panel).
    pub fn snapshot(&self) -> StatsSnapshot {
        let response_time = self.response_times.lock().to_latency_stats();
        let phases = self
            .tracer
            .as_ref()
            .map(|t| t.phase_stats())
            .unwrap_or_default();
        let mut load = LoadBalance::default();
        for (site, metrics) in self.per_site.lock().iter() {
            load.home_transactions
                .insert(site.0, metrics.home_transactions.load(Ordering::Relaxed));
            load.served_requests
                .insert(site.0, metrics.served_requests.load(Ordering::Relaxed));
        }
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            orphans: self.orphans.load(Ordering::Relaxed),
            restarted: self.restarted.load(Ordering::Relaxed),
            aborts: self.aborts.lock().clone(),
            messages: self.network.snapshot(),
            response_time,
            phases,
            elapsed_secs: self.started.elapsed().as_secs_f64(),
            load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::txn::AbortCause;
    use rainbow_common::TxnId;
    use std::collections::BTreeMap as Map;

    fn result(outcome: TxnOutcome, ms: u64) -> TxnResult {
        TxnResult {
            id: TxnId::new(SiteId(0), 1),
            label: "t".into(),
            outcome,
            reads: Map::new(),
            response_time: Duration::from_millis(ms),
            restarts: 0,
            messages: 3,
        }
    }

    #[test]
    fn monitor_counts_outcomes() {
        let monitor = ProgressMonitor::new(Arc::new(NetworkCounters::new()));
        monitor.record_submitted();
        monitor.record_submitted();
        monitor.record_submitted();
        monitor.record_result(&result(TxnOutcome::Committed, 5));
        monitor.record_result(&result(TxnOutcome::Aborted(AbortCause::UserAbort), 7));
        monitor.record_result(&result(TxnOutcome::Orphaned, 0));

        let snap = monitor.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.committed, 1);
        assert_eq!(snap.aborted, 1);
        assert_eq!(snap.orphans, 1);
        assert_eq!(
            snap.response_time.count, 2,
            "orphans do not contribute latency"
        );
        assert!(snap.commit_rate() > 0.49 && snap.commit_rate() < 0.51);
        assert!(snap.elapsed_secs >= 0.0);
    }

    #[test]
    fn abort_breakdown_follows_cause_layers() {
        let monitor = ProgressMonitor::new(Arc::new(NetworkCounters::new()));
        monitor.record_result(&result(
            TxnOutcome::Aborted(AbortCause::CcpDeadlock {
                item: rainbow_common::ItemId::new("x"),
            }),
            1,
        ));
        monitor.record_result(&result(
            TxnOutcome::Aborted(AbortCause::AcpTimeout {
                phase: "prepare".into(),
            }),
            1,
        ));
        let snap = monitor.snapshot();
        assert_eq!(snap.aborts.layer(rainbow_common::txn::AbortLayer::Ccp), 1);
        assert_eq!(snap.aborts.layer(rainbow_common::txn::AbortLayer::Acp), 1);
    }

    #[test]
    fn restarted_transactions_are_counted() {
        let monitor = ProgressMonitor::new(Arc::new(NetworkCounters::new()));
        let mut r = result(TxnOutcome::Committed, 2);
        r.restarts = 2;
        monitor.record_result(&r);
        assert_eq!(monitor.snapshot().restarted, 1);
    }

    #[test]
    fn per_site_metrics_feed_load_balance() {
        let monitor = ProgressMonitor::new(Arc::new(NetworkCounters::new()));
        let m0 = Arc::new(SiteMetrics::new());
        let m1 = Arc::new(SiteMetrics::new());
        m0.home_transactions.store(10, Ordering::Relaxed);
        m0.served_requests.store(100, Ordering::Relaxed);
        m1.served_requests.store(20, Ordering::Relaxed);
        monitor.register_site(SiteId(0), m0);
        monitor.register_site(SiteId(1), m1);
        let snap = monitor.snapshot();
        assert_eq!(snap.load.home_transactions.get(&0), Some(&10));
        assert_eq!(snap.load.served_requests.get(&1), Some(&20));
        assert!(snap.load.imbalance() > 0.0);
    }

    #[test]
    fn network_counters_are_included() {
        let counters = Arc::new(NetworkCounters::new());
        counters.record_sent(
            rainbow_net::NodeId::site(0),
            rainbow_net::NodeId::site(1),
            "X",
            10,
        );
        let monitor = ProgressMonitor::new(Arc::clone(&counters));
        assert_eq!(monitor.snapshot().messages.sent, 1);
    }

    #[test]
    fn snapshot_includes_tracer_phase_breakdown() {
        let tracer = Arc::new(rainbow_trace::Tracer::new(
            rainbow_trace::TraceConfig::histograms_only(),
        ));
        let monitor = ProgressMonitor::with_tracer(
            Arc::new(NetworkCounters::new()),
            Some(Arc::clone(&tracer)),
        );
        tracer.record_phase(rainbow_trace::Phase::LockWait, Duration::from_micros(120));
        monitor.record_result(&result(TxnOutcome::Committed, 5));
        let snap = monitor.snapshot();
        assert_eq!(snap.phases["lock-wait"].count, 1);
        assert_eq!(snap.response_time.count, 1);
        // Without a tracer the phase map stays empty.
        let plain = ProgressMonitor::new(Arc::new(NetworkCounters::new()));
        assert!(plain.snapshot().phases.is_empty());
    }

    #[test]
    fn site_metrics_bump_helper() {
        let m = SiteMetrics::new();
        SiteMetrics::bump(&m.served_requests);
        SiteMetrics::bump(&m.served_requests);
        assert_eq!(m.served_requests.load(Ordering::Relaxed), 2);
    }
}
