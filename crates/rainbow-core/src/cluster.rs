//! Building and driving a complete Rainbow instance.
//!
//! A [`Cluster`] is the programmatic equivalent of a configured Rainbow
//! session: a simulated network, the name server, and a set of Rainbow
//! sites, plus a client endpoint through which transactions are submitted
//! and results collected (the role the GUI + WLGlet/PMlet play in the
//! paper). The workload generator, the Session API, the examples and every
//! bench drive the system through this type.

use crate::messages::Msg;
use crate::metrics::{ProgressMonitor, SiteMetrics};
use crate::name_server::NameServer;
use crate::site::SiteHandle;
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rainbow_common::config::{DatabaseSchema, DistributionSchema};
use rainbow_common::protocol::ProtocolStack;
use rainbow_common::stats::StatsSnapshot;
use rainbow_common::txn::{TxnOutcome, TxnResult, TxnSpec};
use rainbow_common::{ItemId, RainbowError, RainbowResult, SiteId, TxnId, Value, Version};
use rainbow_net::{FaultController, NetworkConfig, NetworkCounters, NodeId, SimNetwork};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Full configuration of a Rainbow instance.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Sites and the hosts they live on.
    pub distribution: DistributionSchema,
    /// Items, initial values and the replication scheme.
    pub database: DatabaseSchema,
    /// The protocol stack (RCP + CCP + ACP and their timeouts).
    pub stack: ProtocolStack,
    /// The simulated network.
    pub network: NetworkConfig,
    /// How long a client waits for a transaction result before declaring the
    /// transaction orphaned.
    pub client_timeout: Duration,
}

impl ClusterConfig {
    /// A convenient classroom-scale configuration: `n_sites` sites (one per
    /// host), `n_items` integer items initialised to 100 and replicated on
    /// `replication_degree` sites with majority quorums, default protocol
    /// stack, perfect network.
    pub fn quick(n_sites: usize, n_items: usize, replication_degree: usize) -> RainbowResult<Self> {
        let distribution = DistributionSchema::one_site_per_host(n_sites);
        let database =
            DatabaseSchema::uniform(n_items, 100, &distribution.site_ids(), replication_degree)?;
        Ok(ClusterConfig {
            distribution,
            database,
            stack: ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(200))
                .with_quorum_timeout(Duration::from_millis(500))
                .with_commit_timeout(Duration::from_millis(500)),
            network: NetworkConfig::perfect(),
            client_timeout: Duration::from_secs(10),
        })
    }

    /// Builder-style protocol-stack override.
    pub fn with_stack(mut self, stack: ProtocolStack) -> Self {
        self.stack = stack;
        self
    }

    /// Builder-style network override.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Builder-style client timeout.
    pub fn with_client_timeout(mut self, timeout: Duration) -> Self {
        self.client_timeout = timeout;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> RainbowResult<()> {
        self.distribution.validate()?;
        self.database.validate()?;
        if self.distribution.is_empty() {
            return Err(RainbowError::InvalidConfig("no sites configured".into()));
        }
        // Every copy holder must be a configured site.
        let sites = self.distribution.site_ids();
        for holder in self.database.replication.copy_holders() {
            if !sites.contains(&holder) {
                return Err(RainbowError::InvalidConfig(format!(
                    "replication scheme references unknown site {holder}"
                )));
            }
        }
        Ok(())
    }
}

/// A running Rainbow instance.
pub struct Cluster {
    config: ClusterConfig,
    network: SimNetwork<Msg>,
    #[allow(dead_code)]
    name_server: NameServer,
    sites: BTreeMap<SiteId, SiteHandle>,
    monitor: Arc<ProgressMonitor>,
    client_node: NodeId,
    pending: Arc<Mutex<HashMap<u64, Sender<TxnResult>>>>,
    next_request: AtomicU64,
    round_robin: AtomicU64,
    router_shutdown: Arc<AtomicBool>,
    router: Option<JoinHandle<()>>,
}

impl Cluster {
    /// Builds and starts a Rainbow instance from a configuration.
    pub fn start(config: ClusterConfig) -> RainbowResult<Self> {
        config.validate()?;
        let network = SimNetwork::<Msg>::new(config.network.clone());
        let monitor = Arc::new(ProgressMonitor::new(network.counters()));

        // Name server first: sites fetch their schema from it at startup.
        let ns_mailbox = network.register(NodeId::NameServer);
        let name_server = NameServer::spawn(
            network.handle(),
            ns_mailbox,
            config.database.clone(),
            config.distribution.clone(),
        );

        let mut sites = BTreeMap::new();
        for spec in &config.distribution.sites {
            let mailbox = network.register(NodeId::Site(spec.id));
            let metrics = Arc::new(SiteMetrics::new());
            monitor.register_site(spec.id, Arc::clone(&metrics));
            let site = SiteHandle::spawn(
                spec.id,
                config.stack.clone(),
                network.handle(),
                mailbox,
                metrics,
            )?;
            sites.insert(spec.id, site);
        }

        // The client endpoint and its result router.
        let client_node = NodeId::Client(0);
        let client_mailbox = network.register(client_node);
        let pending: Arc<Mutex<HashMap<u64, Sender<TxnResult>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let router_shutdown = Arc::new(AtomicBool::new(false));
        let router = {
            let pending = Arc::clone(&pending);
            let monitor = Arc::clone(&monitor);
            let shutdown = Arc::clone(&router_shutdown);
            std::thread::Builder::new()
                .name("rainbow-client-router".into())
                .spawn(move || client_router(client_mailbox, pending, monitor, shutdown))
                .expect("failed to spawn client router")
        };

        Ok(Cluster {
            config,
            network,
            name_server,
            sites,
            monitor,
            client_node,
            pending,
            next_request: AtomicU64::new(1),
            round_robin: AtomicU64::new(0),
            router_shutdown,
            router: Some(router),
        })
    }

    /// The configuration the cluster was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The ids of the configured sites.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.keys().copied().collect()
    }

    /// The fault controller (crash/recover/partition injection).
    pub fn faults(&self) -> Arc<FaultController> {
        self.network.faults()
    }

    /// The raw network traffic counters.
    pub fn network_counters(&self) -> Arc<NetworkCounters> {
        self.network.counters()
    }

    /// The progress monitor.
    pub fn monitor(&self) -> Arc<ProgressMonitor> {
        Arc::clone(&self.monitor)
    }

    /// The current statistics snapshot (the Figure 5 panel).
    pub fn stats(&self) -> StatsSnapshot {
        self.monitor.snapshot()
    }

    /// Total number of stale participant entries the janitors of all sites
    /// have cleaned up. A non-zero value after a healthy (no-fault) workload
    /// means some coordinator abandoned resources that only the janitor
    /// recovered — a leak indicator for tests.
    pub fn janitor_cleanups(&self) -> u64 {
        self.sites
            .values()
            .map(|site| {
                site.metrics()
                    .janitor_cleanups
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }

    /// Number of transactions currently holding concurrency-control
    /// resources at each site. Useful in tests and experiment teardown to
    /// verify that no transaction leaked locks after a workload finished.
    pub fn active_cc_transactions(&self) -> std::collections::BTreeMap<SiteId, usize> {
        self.sites
            .iter()
            .map(|(id, handle)| (*id, handle.active_transactions()))
            .collect()
    }

    /// Diagnostic view of participant-side transactions still registered at
    /// each site (see [`SiteHandle::lingering_participants`]).
    pub fn lingering_participants(
        &self,
    ) -> std::collections::BTreeMap<SiteId, Vec<(rainbow_common::TxnId, String, f64)>> {
        self.sites
            .iter()
            .map(|(id, handle)| (*id, handle.lingering_participants()))
            .collect()
    }

    /// The committed database state stored at one site.
    pub fn database_snapshot(&self, site: SiteId) -> RainbowResult<Vec<(ItemId, Value, Version)>> {
        self.sites
            .get(&site)
            .map(|s| s.database_snapshot())
            .ok_or(RainbowError::UnknownSite(site))
    }

    /// Crashes a site: its messages are dropped by the network until it is
    /// recovered.
    pub fn crash_site(&self, site: SiteId) -> RainbowResult<()> {
        if !self.sites.contains_key(&site) {
            return Err(RainbowError::UnknownSite(site));
        }
        self.network.faults().crash(NodeId::Site(site));
        Ok(())
    }

    /// Recovers a crashed site: volatile state is discarded, the committed
    /// state is rebuilt from its log, in-doubt transactions are resolved
    /// with their coordinators, and the site rejoins the network.
    pub fn recover_site(&self, site: SiteId) -> RainbowResult<()> {
        let handle = self
            .sites
            .get(&site)
            .ok_or(RainbowError::UnknownSite(site))?;
        handle.recover_from_crash();
        self.network.faults().recover(NodeId::Site(site));
        Ok(())
    }

    /// Partitions the network into the given site groups (sites not listed
    /// end up in an implicit extra group).
    pub fn partition(&self, groups: &[Vec<SiteId>]) {
        let node_groups: Vec<Vec<NodeId>> = groups
            .iter()
            .map(|group| group.iter().map(|s| NodeId::Site(*s)).collect())
            .collect();
        self.network.faults().partition(&node_groups);
    }

    /// Heals all partitions.
    pub fn heal_partition(&self) {
        self.network.faults().heal_partition();
    }

    /// Submits a transaction and returns a receiver for its result. The
    /// home site is the one named in the spec, or chosen round-robin.
    pub fn submit_async(&self, spec: TxnSpec) -> Receiver<TxnResult> {
        let request = self.next_request.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(request, tx);
        self.monitor.record_submitted();

        let home = spec.home.unwrap_or_else(|| {
            let ids = self.site_ids();
            let index = self.round_robin.fetch_add(1, Ordering::Relaxed) as usize % ids.len();
            ids[index]
        });
        let send_result = self.network.handle().send(
            self.client_node,
            NodeId::Site(home),
            Msg::SubmitTxn { request, spec },
        );
        if send_result.is_err() {
            // Network already shut down: nobody will ever answer; the caller
            // sees an orphan through the timeout path.
            self.pending.lock().remove(&request);
        }
        rx
    }

    /// Submits a transaction and waits for its result. A transaction whose
    /// home site never answers (crash, partition) is reported as orphaned
    /// after the configured client timeout — the paper's "orphan
    /// transactions" statistic.
    pub fn submit(&self, spec: TxnSpec) -> TxnResult {
        let label = spec.label.clone();
        let rx = self.submit_async(spec);
        match rx.recv_timeout(self.config.client_timeout) {
            Ok(result) => result,
            Err(_) => {
                let result = TxnResult {
                    id: TxnId::new(SiteId(u32::MAX), 0),
                    label,
                    outcome: TxnOutcome::Orphaned,
                    reads: BTreeMap::new(),
                    response_time: self.config.client_timeout,
                    restarts: 0,
                    messages: 0,
                };
                self.monitor.record_result(&result);
                result
            }
        }
    }

    /// Runs a batch of transactions with at most `mpl` (multiprogramming
    /// level) outstanding at any time and returns all results.
    pub fn run_workload(&self, specs: Vec<TxnSpec>, mpl: usize) -> Vec<TxnResult> {
        let mpl = mpl.max(1);
        let queue = Arc::new(Mutex::new(specs.into_iter().collect::<Vec<_>>()));
        let results = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for _ in 0..mpl {
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                scope.spawn(move || loop {
                    let next = queue.lock().pop();
                    match next {
                        Some(spec) => {
                            let result = self.submit(spec);
                            results.lock().push(result);
                        }
                        None => break,
                    }
                });
            }
        });
        let mut collected = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        collected.sort_by_key(|r| r.id);
        collected
    }

    /// Stops every component. Transactions still in flight are abandoned.
    pub fn shutdown(&mut self) {
        self.router_shutdown.store(true, Ordering::Relaxed);
        if let Some(router) = self.router.take() {
            let _ = router.join();
        }
        for site in self.sites.values_mut() {
            site.shutdown();
        }
        self.name_server.shutdown();
        self.network.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn client_router(
    mailbox: Receiver<rainbow_net::Envelope<Msg>>,
    pending: Arc<Mutex<HashMap<u64, Sender<TxnResult>>>>,
    monitor: Arc<ProgressMonitor>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match mailbox.recv_timeout(Duration::from_millis(25)) {
            Ok(envelope) => {
                if let Msg::TxnDone { request, result } = envelope.payload {
                    // Only record and forward when somebody is still waiting;
                    // results arriving after the client gave up (orphan
                    // timeout) were already accounted for.
                    if let Some(tx) = pending.lock().remove(&request) {
                        monitor.record_result(&result);
                        let _ = tx.send(result);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::protocol::{AcpKind, CcpKind, RcpKind};
    use rainbow_common::Operation;

    fn quick_cluster(n_sites: usize) -> Cluster {
        Cluster::start(ClusterConfig::quick(n_sites, 8, n_sites.min(3)).unwrap()).unwrap()
    }

    #[test]
    fn read_only_transaction_commits_and_reads_initial_values() {
        let cluster = quick_cluster(3);
        let result = cluster.submit(TxnSpec::new(
            "read-only",
            vec![Operation::read("x0"), Operation::read("x1")],
        ));
        assert!(result.committed(), "outcome was {:?}", result.outcome);
        assert_eq!(result.reads.get(&ItemId::new("x0")), Some(&Value::Int(100)));
        assert_eq!(result.reads.get(&ItemId::new("x1")), Some(&Value::Int(100)));
        let stats = cluster.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.committed, 1);
    }

    #[test]
    fn update_transaction_is_visible_to_later_readers() {
        let cluster = quick_cluster(3);
        let write = cluster.submit(TxnSpec::new("writer", vec![Operation::write("x0", 555i64)]));
        assert!(write.committed(), "outcome was {:?}", write.outcome);
        let read = cluster.submit(TxnSpec::new("reader", vec![Operation::read("x0")]));
        assert!(read.committed());
        assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(555)));
    }

    #[test]
    fn increments_accumulate_across_transactions() {
        let cluster = quick_cluster(2);
        for _ in 0..5 {
            let result = cluster.submit(TxnSpec::new("inc", vec![Operation::increment("x2", 10)]));
            assert!(result.committed(), "outcome was {:?}", result.outcome);
        }
        let read = cluster.submit(TxnSpec::new("check", vec![Operation::read("x2")]));
        assert_eq!(read.reads.get(&ItemId::new("x2")), Some(&Value::Int(150)));
    }

    #[test]
    fn unknown_item_aborts_with_rcp_cause() {
        let cluster = quick_cluster(2);
        let result = cluster.submit(TxnSpec::new("bad", vec![Operation::read("does-not-exist")]));
        assert!(result.outcome.is_aborted());
        let stats = cluster.stats();
        assert_eq!(stats.aborted, 1);
    }

    #[test]
    fn pinned_home_site_is_respected() {
        let cluster = quick_cluster(3);
        let result =
            cluster.submit(TxnSpec::new("pinned", vec![Operation::read("x0")]).at_site(SiteId(2)));
        assert!(result.committed());
        assert_eq!(result.id.home, SiteId(2));
    }

    #[test]
    fn workload_batch_runs_to_completion() {
        let cluster = quick_cluster(3);
        let specs: Vec<TxnSpec> = (0..20)
            .map(|i| {
                TxnSpec::new(
                    format!("t{i}"),
                    vec![
                        Operation::read(format!("x{}", i % 8)),
                        Operation::increment(format!("x{}", (i + 1) % 8), 1),
                    ],
                )
            })
            .collect();
        let results = cluster.run_workload(specs, 4);
        assert_eq!(results.len(), 20);
        let stats = cluster.stats();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.committed + stats.aborted + stats.orphans, 20);
        assert!(stats.committed > 0);
        assert!(stats.messages.sent > 0);
    }

    #[test]
    fn rowa_and_alternative_ccp_stacks_work_end_to_end() {
        for (rcp, ccp, acp) in [
            (
                RcpKind::Rowa,
                CcpKind::TwoPhaseLocking,
                AcpKind::TwoPhaseCommit,
            ),
            (
                RcpKind::QuorumConsensus,
                CcpKind::TimestampOrdering,
                AcpKind::TwoPhaseCommit,
            ),
            (
                RcpKind::QuorumConsensus,
                CcpKind::MultiversionTimestampOrdering,
                AcpKind::ThreePhaseCommit,
            ),
        ] {
            let config = ClusterConfig::quick(3, 6, 3).unwrap().with_stack(
                ProtocolStack::rainbow_default()
                    .with_rcp(rcp)
                    .with_ccp(ccp)
                    .with_acp(acp)
                    .with_lock_wait_timeout(Duration::from_millis(200))
                    .with_quorum_timeout(Duration::from_millis(500))
                    .with_commit_timeout(Duration::from_millis(500)),
            );
            let cluster = Cluster::start(config).unwrap();
            let write = cluster.submit(TxnSpec::new("w", vec![Operation::write("x0", 9i64)]));
            assert!(
                write.committed(),
                "stack {rcp:?}+{ccp:?}+{acp:?} failed: {:?}",
                write.outcome
            );
            let read = cluster.submit(TxnSpec::new("r", vec![Operation::read("x0")]));
            assert_eq!(
                read.reads.get(&ItemId::new("x0")),
                Some(&Value::Int(9)),
                "stack {rcp:?}+{ccp:?}+{acp:?}"
            );
        }
    }

    #[test]
    fn crashing_a_majority_blocks_writes_under_qc() {
        let cluster = quick_cluster(3);
        cluster.crash_site(SiteId(1)).unwrap();
        cluster.crash_site(SiteId(2)).unwrap();
        let result = cluster.submit(TxnSpec::new("blocked", vec![Operation::write("x0", 1i64)]));
        assert!(
            !result.committed(),
            "write must not commit without a quorum: {:?}",
            result.outcome
        );
        // Recover and retry: the system heals.
        cluster.recover_site(SiteId(1)).unwrap();
        cluster.recover_site(SiteId(2)).unwrap();
        let retry = cluster.submit(TxnSpec::new("retry", vec![Operation::write("x0", 2i64)]));
        assert!(retry.committed(), "outcome was {:?}", retry.outcome);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = ClusterConfig::quick(2, 2, 2).unwrap();
        config.database.replication.place(
            "x0",
            rainbow_common::config::ItemPlacement::majority(vec![SiteId(9)]),
        );
        assert!(Cluster::start(config).is_err());
    }

    #[test]
    fn stats_snapshot_exposes_load_balance_per_site() {
        let cluster = quick_cluster(2);
        for i in 0..6 {
            cluster.submit(TxnSpec::new(format!("t{i}"), vec![Operation::read("x0")]));
        }
        let stats = cluster.stats();
        let total_home: u64 = stats.load.home_transactions.values().sum();
        assert_eq!(total_home, 6);
    }
}
