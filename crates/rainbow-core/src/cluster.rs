//! Building and driving a complete Rainbow instance.
//!
//! A [`Cluster`] is the programmatic equivalent of a configured Rainbow
//! session: a simulated network, the name server, and a set of Rainbow
//! sites, plus a client endpoint through which transactions are submitted
//! and results collected (the role the GUI + WLGlet/PMlet play in the
//! paper). The workload generator, the Session API, the examples and every
//! bench drive the system through this type.

use crate::client::{Client, ClientCore, ClientPool};
use crate::messages::Msg;
use crate::metrics::{ProgressMonitor, SiteMetrics};
use crate::name_server::NameServer;
use crate::site::SiteHandle;
use crossbeam_channel::{bounded, Receiver};
use parking_lot::Mutex;
use rainbow_common::config::{DatabaseSchema, DistributionSchema};
use rainbow_common::protocol::ProtocolStack;
use rainbow_common::stats::StatsSnapshot;
use rainbow_common::txn::{TxnResult, TxnSpec};
use rainbow_common::{ItemId, RainbowError, RainbowResult, SiteId, Value, Version};
use rainbow_net::{FaultController, NetworkConfig, NetworkCounters, NodeId, SimNetwork};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Full configuration of a Rainbow instance.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Sites and the hosts they live on.
    pub distribution: DistributionSchema,
    /// Items, initial values and the replication scheme.
    pub database: DatabaseSchema,
    /// The protocol stack (RCP + CCP + ACP and their timeouts).
    pub stack: ProtocolStack,
    /// The simulated network.
    pub network: NetworkConfig,
    /// How long a client waits for a transaction result before declaring the
    /// transaction orphaned.
    pub client_timeout: Duration,
}

impl ClusterConfig {
    /// A convenient classroom-scale configuration: `n_sites` sites (one per
    /// host), `n_items` integer items initialised to 100 and replicated on
    /// `replication_degree` sites with majority quorums, default protocol
    /// stack, perfect network.
    pub fn quick(n_sites: usize, n_items: usize, replication_degree: usize) -> RainbowResult<Self> {
        let distribution = DistributionSchema::one_site_per_host(n_sites);
        let database =
            DatabaseSchema::uniform(n_items, 100, &distribution.site_ids(), replication_degree)?;
        Ok(ClusterConfig {
            distribution,
            database,
            stack: ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(200))
                .with_quorum_timeout(Duration::from_millis(500))
                .with_commit_timeout(Duration::from_millis(500)),
            network: NetworkConfig::perfect(),
            client_timeout: Duration::from_secs(10),
        })
    }

    /// Builder-style protocol-stack override.
    pub fn with_stack(mut self, stack: ProtocolStack) -> Self {
        self.stack = stack;
        self
    }

    /// Builder-style network override.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Builder-style client timeout.
    pub fn with_client_timeout(mut self, timeout: Duration) -> Self {
        self.client_timeout = timeout;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> RainbowResult<()> {
        self.distribution.validate()?;
        self.database.validate()?;
        if self.distribution.is_empty() {
            return Err(RainbowError::InvalidConfig("no sites configured".into()));
        }
        // Every copy holder must be a configured site.
        let sites = self.distribution.site_ids();
        for holder in self.database.replication.copy_holders() {
            if !sites.contains(&holder) {
                return Err(RainbowError::InvalidConfig(format!(
                    "replication scheme references unknown site {holder}"
                )));
            }
        }
        Ok(())
    }
}

/// A running Rainbow instance.
pub struct Cluster {
    config: ClusterConfig,
    network: SimNetwork<Msg>,
    #[allow(dead_code)]
    name_server: NameServer,
    sites: BTreeMap<SiteId, SiteHandle>,
    monitor: Arc<ProgressMonitor>,
    clients: Arc<ClientPool>,
    next_client: AtomicU64,
    next_request: Arc<AtomicU64>,
    round_robin: Arc<AtomicU64>,
    shut_down: AtomicBool,
}

impl Cluster {
    /// Builds and starts a Rainbow instance from a configuration.
    pub fn start(config: ClusterConfig) -> RainbowResult<Self> {
        config.validate()?;
        let network = SimNetwork::<Msg>::new(config.network.clone());
        let monitor = Arc::new(ProgressMonitor::new(network.counters()));

        // Name server first: sites fetch their schema from it at startup.
        let ns_mailbox = network.register(NodeId::NameServer);
        let name_server = NameServer::spawn(
            network.handle(),
            ns_mailbox,
            config.database.clone(),
            config.distribution.clone(),
        );

        let mut sites = BTreeMap::new();
        for spec in &config.distribution.sites {
            let mailbox = network.register(NodeId::Site(spec.id));
            let metrics = Arc::new(SiteMetrics::new());
            monitor.register_site(spec.id, Arc::clone(&metrics));
            let site = SiteHandle::spawn(
                spec.id,
                config.stack.clone(),
                network.handle(),
                mailbox,
                metrics,
            )?;
            sites.insert(spec.id, site);
        }

        Ok(Cluster {
            config,
            network,
            name_server,
            sites,
            monitor,
            clients: Arc::new(ClientPool::new()),
            next_client: AtomicU64::new(0),
            next_request: Arc::new(AtomicU64::new(1)),
            round_robin: Arc::new(AtomicU64::new(0)),
            shut_down: AtomicBool::new(false),
        })
    }

    /// Checks a client endpoint out of the pool, registering a fresh one on
    /// the network when the pool is empty.
    fn checkout_core(&self) -> ClientCore {
        if let Some(core) = self.clients.take() {
            return core;
        }
        let index = self.next_client.fetch_add(1, Ordering::Relaxed) as u32;
        let node = NodeId::Client(index);
        let mailbox = self.network.register(node);
        ClientCore {
            node,
            mailbox,
            net: self.network.handle(),
            monitor: Arc::clone(&self.monitor),
            sites: self.site_ids(),
            round_robin: Arc::clone(&self.round_robin),
            next_request: Arc::clone(&self.next_request),
            timeout: self.config.client_timeout,
        }
    }

    /// An interactive client of this cluster: `begin → read/write → commit`
    /// conversations with typed, layer-attributed errors (see the
    /// [`crate::client`] module). The endpoint returns to the cluster's pool
    /// when the client is dropped.
    pub fn client(&self) -> Client<'_> {
        Client::new(&self.clients, self.checkout_core())
    }

    /// The configuration the cluster was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The ids of the configured sites.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.keys().copied().collect()
    }

    /// The fault controller (crash/recover/partition injection).
    pub fn faults(&self) -> Arc<FaultController> {
        self.network.faults()
    }

    /// The raw network traffic counters.
    pub fn network_counters(&self) -> Arc<NetworkCounters> {
        self.network.counters()
    }

    /// The progress monitor.
    pub fn monitor(&self) -> Arc<ProgressMonitor> {
        Arc::clone(&self.monitor)
    }

    /// The current statistics snapshot (the Figure 5 panel).
    pub fn stats(&self) -> StatsSnapshot {
        self.monitor.snapshot()
    }

    /// Total number of stale participant entries the janitors of all sites
    /// have cleaned up. A non-zero value after a healthy (no-fault) workload
    /// means some coordinator abandoned resources that only the janitor
    /// recovered — a leak indicator for tests.
    pub fn janitor_cleanups(&self) -> u64 {
        self.sites
            .values()
            .map(|site| {
                site.metrics()
                    .janitor_cleanups
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }

    /// Number of transactions currently holding concurrency-control
    /// resources at each site. Useful in tests and experiment teardown to
    /// verify that no transaction leaked locks after a workload finished.
    pub fn active_cc_transactions(&self) -> std::collections::BTreeMap<SiteId, usize> {
        self.sites
            .iter()
            .map(|(id, handle)| (*id, handle.active_transactions()))
            .collect()
    }

    /// Diagnostic view of participant-side transactions still registered at
    /// each site (see [`SiteHandle::lingering_participants`]).
    pub fn lingering_participants(
        &self,
    ) -> std::collections::BTreeMap<SiteId, Vec<(rainbow_common::TxnId, String, f64)>> {
        self.sites
            .iter()
            .map(|(id, handle)| (*id, handle.lingering_participants()))
            .collect()
    }

    /// The committed database state stored at one site.
    pub fn database_snapshot(&self, site: SiteId) -> RainbowResult<Vec<(ItemId, Value, Version)>> {
        self.sites
            .get(&site)
            .map(|s| s.database_snapshot())
            .ok_or(RainbowError::UnknownSite(site))
    }

    /// Crashes a site: its messages are dropped by the network until it is
    /// recovered.
    pub fn crash_site(&self, site: SiteId) -> RainbowResult<()> {
        if !self.sites.contains_key(&site) {
            return Err(RainbowError::UnknownSite(site));
        }
        self.network.faults().crash(NodeId::Site(site));
        Ok(())
    }

    /// Recovers a crashed site: volatile state is discarded, the committed
    /// state is rebuilt from its log, in-doubt transactions are resolved
    /// with their coordinators, and the site rejoins the network.
    pub fn recover_site(&self, site: SiteId) -> RainbowResult<()> {
        let handle = self
            .sites
            .get(&site)
            .ok_or(RainbowError::UnknownSite(site))?;
        handle.recover_from_crash();
        self.network.faults().recover(NodeId::Site(site));
        Ok(())
    }

    /// Partitions the network into the given site groups (sites not listed
    /// end up in an implicit extra group).
    pub fn partition(&self, groups: &[Vec<SiteId>]) {
        let node_groups: Vec<Vec<NodeId>> = groups
            .iter()
            .map(|group| group.iter().map(|s| NodeId::Site(*s)).collect())
            .collect();
        self.network.faults().partition(&node_groups);
    }

    /// Heals all partitions.
    pub fn heal_partition(&self) {
        self.network.faults().heal_partition();
    }

    /// Submits a one-shot transaction and returns a receiver for its result.
    /// The home site is the one named in the spec, or chosen round-robin.
    ///
    /// This is an adapter: a background driver replays the spec through an
    /// interactive [`crate::client::Txn`] conversation, so one-shot and
    /// interactive transactions share a single execution path.
    pub fn submit_async(&self, spec: TxnSpec) -> Receiver<TxnResult> {
        let (tx, rx) = bounded(1);
        let mut core = self.checkout_core();
        let pool = Arc::clone(&self.clients);
        std::thread::Builder::new()
            .name("rainbow-client-driver".into())
            .spawn(move || {
                let result = core.replay(&spec);
                pool.put(core);
                let _ = tx.send(result);
            })
            .expect("failed to spawn client driver");
        rx
    }

    /// Submits a one-shot transaction and waits for its result, replaying
    /// it through an interactive conversation inline. A transaction whose
    /// home site never answers (crash, partition) is reported as orphaned
    /// after the configured client timeout — the paper's "orphan
    /// transactions" statistic.
    pub fn submit(&self, spec: TxnSpec) -> TxnResult {
        let mut core = self.checkout_core();
        let result = core.replay(&spec);
        self.clients.put(core);
        result
    }

    /// Runs a batch of transactions with at most `mpl` (multiprogramming
    /// level) outstanding at any time and returns all results.
    pub fn run_workload(&self, specs: Vec<TxnSpec>, mpl: usize) -> Vec<TxnResult> {
        let mpl = mpl.max(1);
        let queue = Arc::new(Mutex::new(specs.into_iter().collect::<Vec<_>>()));
        let results = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for _ in 0..mpl {
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                scope.spawn(move || loop {
                    let next = queue.lock().pop();
                    match next {
                        Some(spec) => {
                            let result = self.submit(spec);
                            results.lock().push(result);
                        }
                        None => break,
                    }
                });
            }
        });
        let mut collected = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        collected.sort_by_key(|r| r.id);
        collected
    }

    /// Stops every component: sites, the name server, the network.
    /// Transactions still in flight are abandoned (their coordinator
    /// workers drain on their own, bounded by the protocol timeouts).
    ///
    /// Idempotent: the first call tears everything down, later calls (and
    /// the [`Drop`] impl, which delegates here) are no-ops — so examples
    /// and early-return test paths can never leak site or coordinator
    /// threads, whether they shut down explicitly or just let the cluster
    /// fall out of scope.
    pub fn shutdown(&mut self) {
        if self.shut_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for site in self.sites.values_mut() {
            site.shutdown();
        }
        self.name_server.shutdown();
        self.network.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::protocol::{AcpKind, CcpKind, RcpKind};
    use rainbow_common::Operation;

    fn quick_cluster(n_sites: usize) -> Cluster {
        Cluster::start(ClusterConfig::quick(n_sites, 8, n_sites.min(3)).unwrap()).unwrap()
    }

    #[test]
    fn read_only_transaction_commits_and_reads_initial_values() {
        let cluster = quick_cluster(3);
        let result = cluster.submit(TxnSpec::new(
            "read-only",
            vec![Operation::read("x0"), Operation::read("x1")],
        ));
        assert!(result.committed(), "outcome was {:?}", result.outcome);
        assert_eq!(result.reads.get(&ItemId::new("x0")), Some(&Value::Int(100)));
        assert_eq!(result.reads.get(&ItemId::new("x1")), Some(&Value::Int(100)));
        let stats = cluster.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.committed, 1);
    }

    #[test]
    fn update_transaction_is_visible_to_later_readers() {
        let cluster = quick_cluster(3);
        let write = cluster.submit(TxnSpec::new("writer", vec![Operation::write("x0", 555i64)]));
        assert!(write.committed(), "outcome was {:?}", write.outcome);
        let read = cluster.submit(TxnSpec::new("reader", vec![Operation::read("x0")]));
        assert!(read.committed());
        assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(555)));
    }

    #[test]
    fn increments_accumulate_across_transactions() {
        let cluster = quick_cluster(2);
        for _ in 0..5 {
            let result = cluster.submit(TxnSpec::new("inc", vec![Operation::increment("x2", 10)]));
            assert!(result.committed(), "outcome was {:?}", result.outcome);
        }
        let read = cluster.submit(TxnSpec::new("check", vec![Operation::read("x2")]));
        assert_eq!(read.reads.get(&ItemId::new("x2")), Some(&Value::Int(150)));
    }

    #[test]
    fn unknown_item_aborts_with_rcp_cause() {
        let cluster = quick_cluster(2);
        let result = cluster.submit(TxnSpec::new("bad", vec![Operation::read("does-not-exist")]));
        assert!(result.outcome.is_aborted());
        let stats = cluster.stats();
        assert_eq!(stats.aborted, 1);
    }

    #[test]
    fn pinned_home_site_is_respected() {
        let cluster = quick_cluster(3);
        let result =
            cluster.submit(TxnSpec::new("pinned", vec![Operation::read("x0")]).at_site(SiteId(2)));
        assert!(result.committed());
        assert_eq!(result.id.home, SiteId(2));
    }

    #[test]
    fn workload_batch_runs_to_completion() {
        let cluster = quick_cluster(3);
        let specs: Vec<TxnSpec> = (0..20)
            .map(|i| {
                TxnSpec::new(
                    format!("t{i}"),
                    vec![
                        Operation::read(format!("x{}", i % 8)),
                        Operation::increment(format!("x{}", (i + 1) % 8), 1),
                    ],
                )
            })
            .collect();
        let results = cluster.run_workload(specs, 4);
        assert_eq!(results.len(), 20);
        let stats = cluster.stats();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.committed + stats.aborted + stats.orphans, 20);
        assert!(stats.committed > 0);
        assert!(stats.messages.sent > 0);
    }

    #[test]
    fn rowa_and_alternative_ccp_stacks_work_end_to_end() {
        for (rcp, ccp, acp) in [
            (
                RcpKind::Rowa,
                CcpKind::TwoPhaseLocking,
                AcpKind::TwoPhaseCommit,
            ),
            (
                RcpKind::QuorumConsensus,
                CcpKind::TimestampOrdering,
                AcpKind::TwoPhaseCommit,
            ),
            (
                RcpKind::QuorumConsensus,
                CcpKind::MultiversionTimestampOrdering,
                AcpKind::ThreePhaseCommit,
            ),
        ] {
            let config = ClusterConfig::quick(3, 6, 3).unwrap().with_stack(
                ProtocolStack::rainbow_default()
                    .with_rcp(rcp)
                    .with_ccp(ccp)
                    .with_acp(acp)
                    .with_lock_wait_timeout(Duration::from_millis(200))
                    .with_quorum_timeout(Duration::from_millis(500))
                    .with_commit_timeout(Duration::from_millis(500)),
            );
            let cluster = Cluster::start(config).unwrap();
            let write = cluster.submit(TxnSpec::new("w", vec![Operation::write("x0", 9i64)]));
            assert!(
                write.committed(),
                "stack {rcp:?}+{ccp:?}+{acp:?} failed: {:?}",
                write.outcome
            );
            let read = cluster.submit(TxnSpec::new("r", vec![Operation::read("x0")]));
            assert_eq!(
                read.reads.get(&ItemId::new("x0")),
                Some(&Value::Int(9)),
                "stack {rcp:?}+{ccp:?}+{acp:?}"
            );
        }
    }

    #[test]
    fn crashing_a_majority_blocks_writes_under_qc() {
        let cluster = quick_cluster(3);
        cluster.crash_site(SiteId(1)).unwrap();
        cluster.crash_site(SiteId(2)).unwrap();
        let result = cluster.submit(TxnSpec::new("blocked", vec![Operation::write("x0", 1i64)]));
        assert!(
            !result.committed(),
            "write must not commit without a quorum: {:?}",
            result.outcome
        );
        // Recover and retry: the system heals.
        cluster.recover_site(SiteId(1)).unwrap();
        cluster.recover_site(SiteId(2)).unwrap();
        let retry = cluster.submit(TxnSpec::new("retry", vec![Operation::write("x0", 2i64)]));
        assert!(retry.committed(), "outcome was {:?}", retry.outcome);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut cluster = quick_cluster(2);
        let result = cluster.submit(TxnSpec::new("t", vec![Operation::read("x0")]));
        assert!(result.committed());
        // Explicit shutdown, then again, then the Drop impl on scope exit:
        // every path must be a no-op after the first.
        cluster.shutdown();
        cluster.shutdown();
        // Submitting against a torn-down cluster reports an orphan instead
        // of hanging or panicking.
        let late = cluster.submit(TxnSpec::new("late", vec![Operation::read("x0")]));
        assert!(late.outcome.is_orphaned());
        drop(cluster);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = ClusterConfig::quick(2, 2, 2).unwrap();
        config.database.replication.place(
            "x0",
            rainbow_common::config::ItemPlacement::majority(vec![SiteId(9)]),
        );
        assert!(Cluster::start(config).is_err());
    }

    #[test]
    fn stats_snapshot_exposes_load_balance_per_site() {
        let cluster = quick_cluster(2);
        for i in 0..6 {
            cluster.submit(TxnSpec::new(format!("t{i}"), vec![Operation::read("x0")]));
        }
        let stats = cluster.stats();
        let total_home: u64 = stats.load.home_transactions.values().sum();
        assert_eq!(total_home, 6);
    }
}
