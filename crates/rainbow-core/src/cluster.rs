//! Building and driving a complete Rainbow instance.
//!
//! A [`Cluster`] is the programmatic equivalent of a configured Rainbow
//! session: a simulated network, the name server, and a set of Rainbow
//! sites, plus a client endpoint through which transactions are submitted
//! and results collected (the role the GUI + WLGlet/PMlet play in the
//! paper). The workload generator, the Session API, the examples and every
//! bench drive the system through this type.

use crate::client::{Client, ClientCore, ClientPool};
use crate::messages::Msg;
use crate::metrics::{ProgressMonitor, SiteMetrics};
use crate::name_server::NameServer;
use crate::site::SiteHandle;
use crossbeam_channel::{bounded, Receiver};
use parking_lot::Mutex;
use rainbow_common::config::{DatabaseSchema, DistributionSchema};
use rainbow_common::history::{History, HistorySink};
use rainbow_common::protocol::ProtocolStack;
use rainbow_common::stats::StatsSnapshot;
use rainbow_common::txn::{TxnResult, TxnSpec};
use rainbow_common::{ItemId, RainbowError, RainbowResult, SiteId, Value, Version};
use rainbow_net::{FaultController, NetworkConfig, NetworkCounters, NodeId, SimNetwork};
use rainbow_storage::{PowerLossFault, StorageConfig};
use rainbow_trace::{TraceConfig, Tracer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Full configuration of a Rainbow instance.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Sites and the hosts they live on.
    pub distribution: DistributionSchema,
    /// Items, initial values and the replication scheme.
    pub database: DatabaseSchema,
    /// The protocol stack (RCP + CCP + ACP and their timeouts).
    pub stack: ProtocolStack,
    /// The simulated network.
    pub network: NetworkConfig,
    /// How long a client waits for a transaction result before declaring the
    /// transaction orphaned.
    pub client_timeout: Duration,
    /// When true, every coordinator records its transaction's footprint
    /// (reads with observed versions, installed writes, outcome) into a
    /// cluster-wide [`History`] for the serializability checker. Off by
    /// default: the bench hot path pays nothing.
    pub record_history: bool,
    /// End-to-end tracing: per-transaction span trees and per-phase latency
    /// histograms (see [`rainbow_trace`]). Disabled by default, in which
    /// case no tracer is constructed anywhere and every instrumentation
    /// point reduces to a `None` check.
    pub tracing: TraceConfig,
    /// Storage engine every site runs on: the in-memory simulated WAL (the
    /// fast deterministic default) or the on-disk log-structured engine.
    /// [`ClusterConfig::quick`] reads the `RAINBOW_ENGINE` environment
    /// variable so the whole test suite can be pointed at either engine.
    pub storage: StorageConfig,
}

impl ClusterConfig {
    /// A convenient classroom-scale configuration: `n_sites` sites (one per
    /// host), `n_items` integer items initialised to 100 and replicated on
    /// `replication_degree` sites with majority quorums, default protocol
    /// stack, perfect network.
    pub fn quick(n_sites: usize, n_items: usize, replication_degree: usize) -> RainbowResult<Self> {
        let distribution = DistributionSchema::one_site_per_host(n_sites);
        let database =
            DatabaseSchema::uniform(n_items, 100, &distribution.site_ids(), replication_degree)?;
        Ok(ClusterConfig {
            distribution,
            database,
            stack: ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(200))
                .with_quorum_timeout(Duration::from_millis(500))
                .with_commit_timeout(Duration::from_millis(500)),
            network: NetworkConfig::perfect(),
            client_timeout: Duration::from_secs(10),
            record_history: false,
            tracing: TraceConfig::disabled(),
            storage: StorageConfig::from_env(),
        })
    }

    /// Builder-style protocol-stack override.
    pub fn with_stack(mut self, stack: ProtocolStack) -> Self {
        self.stack = stack;
        self
    }

    /// Builder-style network override.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Builder-style client timeout.
    pub fn with_client_timeout(mut self, timeout: Duration) -> Self {
        self.client_timeout = timeout;
        self
    }

    /// Builder-style history recording toggle (see
    /// [`ClusterConfig::record_history`]).
    pub fn with_history_recording(mut self, record: bool) -> Self {
        self.record_history = record;
        self
    }

    /// Builder-style tracing configuration (see [`ClusterConfig::tracing`]).
    pub fn with_tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = tracing;
        self
    }

    /// Builder-style storage-engine override (see [`ClusterConfig::storage`]).
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> RainbowResult<()> {
        self.distribution.validate()?;
        self.database.validate()?;
        self.storage.validate()?;
        if self.distribution.is_empty() {
            return Err(RainbowError::InvalidConfig("no sites configured".into()));
        }
        // Every copy holder must be a configured site.
        let sites = self.distribution.site_ids();
        for holder in self.database.replication.copy_holders() {
            if !sites.contains(&holder) {
                return Err(RainbowError::InvalidConfig(format!(
                    "replication scheme references unknown site {holder}"
                )));
            }
        }
        Ok(())
    }
}

/// A running Rainbow instance.
pub struct Cluster {
    config: ClusterConfig,
    network: SimNetwork<Msg>,
    #[allow(dead_code)]
    name_server: NameServer,
    sites: BTreeMap<SiteId, SiteHandle>,
    monitor: Arc<ProgressMonitor>,
    clients: Arc<ClientPool>,
    next_client: AtomicU64,
    next_request: Arc<AtomicU64>,
    round_robin: Arc<AtomicU64>,
    shut_down: AtomicBool,
    history: Option<Arc<HistorySink>>,
    tracer: Option<Arc<Tracer>>,
}

impl Cluster {
    /// Builds and starts a Rainbow instance from a configuration.
    pub fn start(config: ClusterConfig) -> RainbowResult<Self> {
        config.validate()?;
        let tracer = config
            .tracing
            .enabled
            .then(|| Arc::new(Tracer::new(config.tracing.clone())));
        let network = SimNetwork::<Msg>::traced(config.network.clone(), tracer.clone());
        let monitor = Arc::new(ProgressMonitor::with_tracer(
            network.counters(),
            tracer.clone(),
        ));

        // Name server first: sites fetch their schema from it at startup.
        let ns_mailbox = network.register(NodeId::NameServer);
        let name_server = NameServer::spawn(
            network.handle(),
            ns_mailbox,
            config.database.clone(),
            config.distribution.clone(),
        );

        let history = config.record_history.then(|| Arc::new(HistorySink::new()));

        let mut sites = BTreeMap::new();
        for spec in &config.distribution.sites {
            let mailbox = network.register(NodeId::Site(spec.id));
            let metrics = Arc::new(SiteMetrics::new());
            monitor.register_site(spec.id, Arc::clone(&metrics));
            let site = SiteHandle::spawn(
                spec.id,
                config.stack.clone(),
                &config.storage,
                network.handle(),
                mailbox,
                metrics,
                history.clone(),
                tracer.clone(),
            )?;
            sites.insert(spec.id, site);
        }

        Ok(Cluster {
            config,
            network,
            name_server,
            sites,
            monitor,
            clients: Arc::new(ClientPool::new()),
            next_client: AtomicU64::new(0),
            next_request: Arc::new(AtomicU64::new(1)),
            round_robin: Arc::new(AtomicU64::new(0)),
            shut_down: AtomicBool::new(false),
            history,
            tracer,
        })
    }

    /// Checks a client endpoint out of the pool, registering a fresh one on
    /// the network when the pool is empty.
    fn checkout_core(&self) -> ClientCore {
        if let Some(core) = self.clients.take() {
            return core;
        }
        let index = self.next_client.fetch_add(1, Ordering::Relaxed) as u32;
        let node = NodeId::Client(index);
        let mailbox = self.network.register(node);
        ClientCore {
            node,
            mailbox,
            net: self.network.handle(),
            monitor: Arc::clone(&self.monitor),
            sites: self.site_ids(),
            round_robin: Arc::clone(&self.round_robin),
            next_request: Arc::clone(&self.next_request),
            timeout: self.config.client_timeout,
        }
    }

    /// An interactive client of this cluster: `begin → read/write → commit`
    /// conversations with typed, layer-attributed errors (see the
    /// [`crate::client`] module). The endpoint returns to the cluster's pool
    /// when the client is dropped.
    pub fn client(&self) -> Client<'_> {
        Client::new(&self.clients, self.checkout_core())
    }

    /// The configuration the cluster was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The ids of the configured sites.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.keys().copied().collect()
    }

    /// The fault controller (crash/recover/partition injection).
    pub fn faults(&self) -> Arc<FaultController> {
        self.network.faults()
    }

    /// The raw network traffic counters.
    pub fn network_counters(&self) -> Arc<NetworkCounters> {
        self.network.counters()
    }

    /// The progress monitor.
    pub fn monitor(&self) -> Arc<ProgressMonitor> {
        Arc::clone(&self.monitor)
    }

    /// The tracer, or `None` when the cluster was started without
    /// [`ClusterConfig::tracing`] enabled. Exporters (Chrome trace JSON,
    /// ASCII span trees) and the phase-latency tables read from here.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.clone()
    }

    /// The current statistics snapshot (the Figure 5 panel).
    pub fn stats(&self) -> StatsSnapshot {
        self.monitor.snapshot()
    }

    /// Total number of stale participant entries the janitors of all sites
    /// have cleaned up. A non-zero value after a healthy (no-fault) workload
    /// means some coordinator abandoned resources that only the janitor
    /// recovered — a leak indicator for tests.
    pub fn janitor_cleanups(&self) -> u64 {
        self.sites
            .values()
            .map(|site| {
                site.metrics()
                    .janitor_cleanups
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }

    /// Number of transactions currently holding concurrency-control
    /// resources at each site. Useful in tests and experiment teardown to
    /// verify that no transaction leaked locks after a workload finished.
    pub fn active_cc_transactions(&self) -> std::collections::BTreeMap<SiteId, usize> {
        self.sites
            .iter()
            .map(|(id, handle)| (*id, handle.active_transactions()))
            .collect()
    }

    /// Diagnostic view of participant-side transactions still registered at
    /// each site (see [`SiteHandle::lingering_participants`]).
    pub fn lingering_participants(
        &self,
    ) -> std::collections::BTreeMap<SiteId, Vec<(rainbow_common::TxnId, String, f64)>> {
        self.sites
            .iter()
            .map(|(id, handle)| (*id, handle.lingering_participants()))
            .collect()
    }

    /// The committed database state stored at one site.
    pub fn database_snapshot(&self, site: SiteId) -> RainbowResult<Vec<(ItemId, Value, Version)>> {
        self.sites
            .get(&site)
            .map(|s| s.database_snapshot())
            .ok_or(RainbowError::UnknownSite(site))
    }

    /// The transaction history recorded so far, or `None` when the cluster
    /// was started without [`ClusterConfig::record_history`]. The snapshot
    /// carries the initial database state so the checker can validate reads
    /// of version 0.
    pub fn history(&self) -> Option<History> {
        self.history.as_ref().map(|sink| {
            sink.snapshot(
                self.config
                    .database
                    .items
                    .iter()
                    .map(|spec| (spec.id.clone(), spec.initial.clone())),
            )
        })
    }

    /// Waits until every conversation that ever began has recorded its
    /// final outcome into the history sink (or `deadline_after` elapses).
    /// Returns true on quiescence. Chaos runs call this before snapshotting
    /// so the history cannot miss a committed transaction whose coordinator
    /// was still finishing — a gap the checker would misread as an
    /// unexplained version.
    pub fn await_history_quiescence(&self, deadline_after: Duration) -> bool {
        let Some(sink) = self.history.as_ref() else {
            return true;
        };
        let deadline = std::time::Instant::now() + deadline_after;
        while sink.in_flight() > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// Crashes a site: its messages are dropped by the network until it is
    /// recovered.
    pub fn crash_site(&self, site: SiteId) -> RainbowResult<()> {
        if !self.sites.contains_key(&site) {
            return Err(RainbowError::UnknownSite(site));
        }
        self.network.faults().crash(NodeId::Site(site));
        Ok(())
    }

    /// Recovers a crashed site: volatile state is discarded, the committed
    /// state is rebuilt from its log, in-doubt transactions are resolved
    /// with their coordinators, and the site rejoins the network.
    pub fn recover_site(&self, site: SiteId) -> RainbowResult<()> {
        let handle = self
            .sites
            .get(&site)
            .ok_or(RainbowError::UnknownSite(site))?;
        handle.recover_from_crash()?;
        self.network.faults().recover(NodeId::Site(site));
        Ok(())
    }

    /// Recovers a crashed site like [`Cluster::recover_site`], then runs the
    /// **copier catch-up** the classic Available Copies algorithm requires:
    /// the recovered site's copies are refreshed from the latest committed
    /// versions held by live peers, so read-one protocols (Available
    /// Copies, Primary Copy) cannot serve reads from the staleness window
    /// the crash opened. Two passes close the race with in-flight writes:
    ///
    /// 1. a first pass repairs the bulk of the staleness while the site is
    ///    still marked crashed (no new reads can hit it);
    /// 2. after the site rejoins, writes *planned while it was still marked
    ///    crashed* may commit without it for up to one quorum + commit
    ///    window; the call waits that window out and repairs once more.
    ///
    /// The repair reads peer state directly (the simulator's privilege,
    /// standing in for the copier transactions a real deployment would
    /// run); only strictly newer versions are installed, so racing with
    /// live writes is safe. Quorum-intersecting protocols (ROWA, QC, Tree
    /// Quorum) do not need this — their reads mask stale copies by version
    /// — but it is harmless under them.
    pub fn recover_site_with_catchup(&self, site: SiteId) -> RainbowResult<()> {
        let handle = self
            .sites
            .get(&site)
            .ok_or(RainbowError::UnknownSite(site))?;
        handle.recover_from_crash()?;
        self.catch_up(site)?;
        self.network.faults().recover(NodeId::Site(site));
        std::thread::sleep(self.config.stack.quorum_timeout + self.config.stack.commit_timeout);
        self.catch_up(site)?;
        Ok(())
    }

    /// The power-loss nemesis, the durable sibling of
    /// [`Cluster::recover_site_with_catchup`]: marks the site crashed,
    /// drops **all** of its volatile state (including anything its storage
    /// engine had buffered but not yet synced), optionally injects a torn
    /// or corrupted tail write into its log, restarts it from the disk
    /// image alone, and runs the same two-pass copier catch-up before the
    /// site rejoins the network.
    ///
    /// On the memory engine the fault degrades to a plain crash+recover
    /// (the simulated log has no tail to tear). Recovery errors — e.g. a
    /// corrupted record *before* the log tail — surface as typed
    /// [`RainbowError::CorruptLog`] values rather than panics.
    pub fn power_loss_site(&self, site: SiteId, fault: PowerLossFault) -> RainbowResult<()> {
        let handle = self
            .sites
            .get(&site)
            .ok_or(RainbowError::UnknownSite(site))?;
        self.network.faults().crash(NodeId::Site(site));
        handle.power_loss(fault)?;
        self.catch_up(site)?;
        self.network.faults().recover(NodeId::Site(site));
        std::thread::sleep(self.config.stack.quorum_timeout + self.config.stack.commit_timeout);
        self.catch_up(site)?;
        Ok(())
    }

    /// One catch-up pass: collect the highest committed version of every
    /// item from the peers that are currently up, and install the ones the
    /// recovering site is behind on.
    fn catch_up(&self, site: SiteId) -> RainbowResult<()> {
        let handle = self
            .sites
            .get(&site)
            .ok_or(RainbowError::UnknownSite(site))?;
        let faults = self.network.faults();
        let mut latest: BTreeMap<ItemId, (Value, Version)> = BTreeMap::new();
        for (peer, peer_handle) in &self.sites {
            if *peer == site || faults.is_crashed(NodeId::Site(*peer)) {
                continue;
            }
            for (item, value, version) in peer_handle.database_snapshot() {
                match latest.get(&item) {
                    Some((_, seen)) if *seen >= version => {}
                    _ => {
                        latest.insert(item, (value, version));
                    }
                }
            }
        }
        let copies: Vec<(ItemId, Value, Version)> = latest
            .into_iter()
            .map(|(item, (value, version))| (item, value, version))
            .collect();
        handle.repair_copies(&copies);
        Ok(())
    }

    /// Jumps a site's logical clock `ticks` ahead — the nemesis clock-skew
    /// fault. Harmless for 2PL stacks; under (MV)TSO it makes the skewed
    /// site issue far-future timestamps, aborting concurrent old-timestamp
    /// transactions, which is exactly the behavior the experiment observes.
    pub fn skew_site_clock(&self, site: SiteId, ticks: u64) -> RainbowResult<()> {
        self.sites
            .get(&site)
            .map(|handle| handle.skew_clock(ticks))
            .ok_or(RainbowError::UnknownSite(site))
    }

    /// Partitions the network into the given site groups (sites not listed
    /// end up in an implicit extra group).
    pub fn partition(&self, groups: &[Vec<SiteId>]) {
        let node_groups: Vec<Vec<NodeId>> = groups
            .iter()
            .map(|group| group.iter().map(|s| NodeId::Site(*s)).collect())
            .collect();
        self.network.faults().partition(&node_groups);
    }

    /// Heals all partitions.
    pub fn heal_partition(&self) {
        self.network.faults().heal_partition();
    }

    /// Submits a one-shot transaction and returns a receiver for its result.
    /// The home site is the one named in the spec, or chosen round-robin.
    ///
    /// This is an adapter: a background driver replays the spec through an
    /// interactive [`crate::client::Txn`] conversation, so one-shot and
    /// interactive transactions share a single execution path.
    pub fn submit_async(&self, spec: TxnSpec) -> Receiver<TxnResult> {
        let (tx, rx) = bounded(1);
        let mut core = self.checkout_core();
        let pool = Arc::clone(&self.clients);
        std::thread::Builder::new()
            .name("rainbow-client-driver".into())
            .spawn(move || {
                let result = core.replay(&spec);
                pool.put(core);
                let _ = tx.send(result);
            })
            .expect("failed to spawn client driver");
        rx
    }

    /// Submits a one-shot transaction and waits for its result, replaying
    /// it through an interactive conversation inline. A transaction whose
    /// home site never answers (crash, partition) is reported as orphaned
    /// after the configured client timeout — the paper's "orphan
    /// transactions" statistic.
    pub fn submit(&self, spec: TxnSpec) -> TxnResult {
        let mut core = self.checkout_core();
        let result = core.replay(&spec);
        self.clients.put(core);
        result
    }

    /// Runs a batch of transactions with at most `mpl` (multiprogramming
    /// level) outstanding at any time and returns all results.
    pub fn run_workload(&self, specs: Vec<TxnSpec>, mpl: usize) -> Vec<TxnResult> {
        let mpl = mpl.max(1);
        let queue = Arc::new(Mutex::new(specs.into_iter().collect::<Vec<_>>()));
        let results = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for _ in 0..mpl {
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                scope.spawn(move || loop {
                    let next = queue.lock().pop();
                    match next {
                        Some(spec) => {
                            let result = self.submit(spec);
                            results.lock().push(result);
                        }
                        None => break,
                    }
                });
            }
        });
        let mut collected = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        collected.sort_by_key(|r| r.id);
        collected
    }

    /// Stops every component: sites, the name server, the network.
    /// Transactions still in flight are abandoned (their coordinator
    /// workers drain on their own, bounded by the protocol timeouts).
    ///
    /// Idempotent: the first call tears everything down, later calls (and
    /// the [`Drop`] impl, which delegates here) are no-ops — so examples
    /// and early-return test paths can never leak site or coordinator
    /// threads, whether they shut down explicitly or just let the cluster
    /// fall out of scope.
    pub fn shutdown(&mut self) {
        if self.shut_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Flush and fsync every site's storage engine *before* joining the
        // site threads: a data directory reopened after this shutdown must
        // find every record appended so far, not just the forced ones.
        for site in self.sites.values() {
            if let Err(err) = site.flush_and_sync() {
                eprintln!("rainbow: flush on shutdown failed for {}: {err}", site.id());
            }
        }
        for site in self.sites.values_mut() {
            site.shutdown();
        }
        self.name_server.shutdown();
        self.network.shutdown();
        // Throwaway data directories (RAINBOW_ENGINE=disk test runs) are
        // removed once nothing is writing to them any more.
        if self.config.storage.ephemeral {
            if let Some(dir) = &self.config.storage.data_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::protocol::{AcpKind, CcpKind, RcpKind};
    use rainbow_common::Operation;

    fn quick_cluster(n_sites: usize) -> Cluster {
        Cluster::start(ClusterConfig::quick(n_sites, 8, n_sites.min(3)).unwrap()).unwrap()
    }

    #[test]
    fn read_only_transaction_commits_and_reads_initial_values() {
        let cluster = quick_cluster(3);
        let result = cluster.submit(TxnSpec::new(
            "read-only",
            vec![Operation::read("x0"), Operation::read("x1")],
        ));
        assert!(result.committed(), "outcome was {:?}", result.outcome);
        assert_eq!(result.reads.get(&ItemId::new("x0")), Some(&Value::Int(100)));
        assert_eq!(result.reads.get(&ItemId::new("x1")), Some(&Value::Int(100)));
        let stats = cluster.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.committed, 1);
    }

    #[test]
    fn update_transaction_is_visible_to_later_readers() {
        let cluster = quick_cluster(3);
        let write = cluster.submit(TxnSpec::new("writer", vec![Operation::write("x0", 555i64)]));
        assert!(write.committed(), "outcome was {:?}", write.outcome);
        let read = cluster.submit(TxnSpec::new("reader", vec![Operation::read("x0")]));
        assert!(read.committed());
        assert_eq!(read.reads.get(&ItemId::new("x0")), Some(&Value::Int(555)));
    }

    #[test]
    fn increments_accumulate_across_transactions() {
        let cluster = quick_cluster(2);
        for _ in 0..5 {
            let result = cluster.submit(TxnSpec::new("inc", vec![Operation::increment("x2", 10)]));
            assert!(result.committed(), "outcome was {:?}", result.outcome);
        }
        let read = cluster.submit(TxnSpec::new("check", vec![Operation::read("x2")]));
        assert_eq!(read.reads.get(&ItemId::new("x2")), Some(&Value::Int(150)));
    }

    #[test]
    fn unknown_item_aborts_with_rcp_cause() {
        let cluster = quick_cluster(2);
        let result = cluster.submit(TxnSpec::new("bad", vec![Operation::read("does-not-exist")]));
        assert!(result.outcome.is_aborted());
        let stats = cluster.stats();
        assert_eq!(stats.aborted, 1);
    }

    #[test]
    fn pinned_home_site_is_respected() {
        let cluster = quick_cluster(3);
        let result =
            cluster.submit(TxnSpec::new("pinned", vec![Operation::read("x0")]).at_site(SiteId(2)));
        assert!(result.committed());
        assert_eq!(result.id.home, SiteId(2));
    }

    #[test]
    fn workload_batch_runs_to_completion() {
        let cluster = quick_cluster(3);
        let specs: Vec<TxnSpec> = (0..20)
            .map(|i| {
                TxnSpec::new(
                    format!("t{i}"),
                    vec![
                        Operation::read(format!("x{}", i % 8)),
                        Operation::increment(format!("x{}", (i + 1) % 8), 1),
                    ],
                )
            })
            .collect();
        let results = cluster.run_workload(specs, 4);
        assert_eq!(results.len(), 20);
        let stats = cluster.stats();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.committed + stats.aborted + stats.orphans, 20);
        assert!(stats.committed > 0);
        assert!(stats.messages.sent > 0);
    }

    #[test]
    fn rowa_and_alternative_ccp_stacks_work_end_to_end() {
        for (rcp, ccp, acp) in [
            (
                RcpKind::Rowa,
                CcpKind::TwoPhaseLocking,
                AcpKind::TwoPhaseCommit,
            ),
            (
                RcpKind::QuorumConsensus,
                CcpKind::TimestampOrdering,
                AcpKind::TwoPhaseCommit,
            ),
            (
                RcpKind::QuorumConsensus,
                CcpKind::MultiversionTimestampOrdering,
                AcpKind::ThreePhaseCommit,
            ),
        ] {
            let config = ClusterConfig::quick(3, 6, 3).unwrap().with_stack(
                ProtocolStack::rainbow_default()
                    .with_rcp(rcp)
                    .with_ccp(ccp)
                    .with_acp(acp)
                    .with_lock_wait_timeout(Duration::from_millis(200))
                    .with_quorum_timeout(Duration::from_millis(500))
                    .with_commit_timeout(Duration::from_millis(500)),
            );
            let cluster = Cluster::start(config).unwrap();
            let write = cluster.submit(TxnSpec::new("w", vec![Operation::write("x0", 9i64)]));
            assert!(
                write.committed(),
                "stack {rcp:?}+{ccp:?}+{acp:?} failed: {:?}",
                write.outcome
            );
            let read = cluster.submit(TxnSpec::new("r", vec![Operation::read("x0")]));
            assert_eq!(
                read.reads.get(&ItemId::new("x0")),
                Some(&Value::Int(9)),
                "stack {rcp:?}+{ccp:?}+{acp:?}"
            );
        }
    }

    #[test]
    fn crashing_a_majority_blocks_writes_under_qc() {
        let cluster = quick_cluster(3);
        cluster.crash_site(SiteId(1)).unwrap();
        cluster.crash_site(SiteId(2)).unwrap();
        let result = cluster.submit(TxnSpec::new("blocked", vec![Operation::write("x0", 1i64)]));
        assert!(
            !result.committed(),
            "write must not commit without a quorum: {:?}",
            result.outcome
        );
        // Recover and retry: the system heals.
        cluster.recover_site(SiteId(1)).unwrap();
        cluster.recover_site(SiteId(2)).unwrap();
        let retry = cluster.submit(TxnSpec::new("retry", vec![Operation::write("x0", 2i64)]));
        assert!(retry.committed(), "outcome was {:?}", retry.outcome);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut cluster = quick_cluster(2);
        let result = cluster.submit(TxnSpec::new("t", vec![Operation::read("x0")]));
        assert!(result.committed());
        // Explicit shutdown, then again, then the Drop impl on scope exit:
        // every path must be a no-op after the first.
        cluster.shutdown();
        cluster.shutdown();
        // Submitting against a torn-down cluster reports an orphan instead
        // of hanging or panicking.
        let late = cluster.submit(TxnSpec::new("late", vec![Operation::read("x0")]));
        assert!(late.outcome.is_orphaned());
        drop(cluster);
    }

    #[test]
    fn history_recording_captures_footprints_with_versions() {
        let config = ClusterConfig::quick(3, 4, 3)
            .unwrap()
            .with_history_recording(true);
        let cluster = Cluster::start(config).unwrap();
        let w = cluster.submit(TxnSpec::new("w", vec![Operation::write("x0", 7i64)]));
        assert!(w.committed());
        let r = cluster.submit(TxnSpec::new(
            "r",
            vec![Operation::read("x0"), Operation::increment("x1", 1)],
        ));
        assert!(r.committed());
        assert!(cluster.await_history_quiescence(Duration::from_secs(5)));

        let history = cluster.history().expect("recording is on");
        assert_eq!(history.len(), 2);
        assert_eq!(history.initial.len(), 4, "initial state travels along");
        let writer = &history.records[0];
        assert_eq!(writer.label, "w");
        assert!(writer.committed());
        assert_eq!(writer.writes.len(), 1);
        assert_eq!(writer.writes[0].value, Value::Int(7));
        assert!(writer.writes[0].version > Version(0));
        let reader = &history.records[1];
        assert_eq!(reader.reads.len(), 2, "read + increment observation");
        assert_eq!(reader.reads[0].value, Value::Int(7));
        assert_eq!(reader.reads[0].version, writer.writes[0].version);
        assert_eq!(reader.writes.len(), 1, "the increment's install");
    }

    #[test]
    fn history_is_absent_when_recording_is_off() {
        let cluster = quick_cluster(2);
        let result = cluster.submit(TxnSpec::new("t", vec![Operation::read("x0")]));
        assert!(result.committed());
        assert!(cluster.history().is_none());
        assert!(cluster.await_history_quiescence(Duration::from_millis(10)));
    }

    #[test]
    fn recovery_with_catchup_refreshes_stale_copies() {
        let cluster = quick_cluster(3);
        cluster.crash_site(SiteId(2)).unwrap();
        let write = cluster.submit(TxnSpec::new("w", vec![Operation::write("x0", 42i64)]));
        assert!(write.committed(), "{:?}", write.outcome);
        // Raw recovery would leave site 2's copy of x0 at the initial
        // version; the catch-up variant repairs it from live peers.
        cluster.recover_site_with_catchup(SiteId(2)).unwrap();
        let snapshot = cluster.database_snapshot(SiteId(2)).unwrap();
        let copy = snapshot
            .iter()
            .find(|(item, _, _)| *item == ItemId::new("x0"))
            .expect("site 2 holds x0");
        assert_eq!(copy.1, Value::Int(42), "stale copy must be repaired");
        assert!(copy.2 > Version(0));
        assert!(cluster.recover_site_with_catchup(SiteId(9)).is_err());
    }

    #[test]
    fn clock_skew_targets_known_sites_only() {
        let cluster = quick_cluster(2);
        cluster.skew_site_clock(SiteId(0), 10_000).unwrap();
        assert!(cluster.skew_site_clock(SiteId(9), 1).is_err());
        // The cluster still processes transactions after the jump.
        let result = cluster.submit(TxnSpec::new("t", vec![Operation::read("x0")]));
        assert!(result.committed());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = ClusterConfig::quick(2, 2, 2).unwrap();
        config.database.replication.place(
            "x0",
            rainbow_common::config::ItemPlacement::majority(vec![SiteId(9)]),
        );
        assert!(Cluster::start(config).is_err());
    }

    #[test]
    fn traced_cluster_captures_span_trees_and_phase_histograms() {
        let config = ClusterConfig::quick(3, 4, 3)
            .unwrap()
            .with_tracing(rainbow_trace::TraceConfig::sample_all());
        let cluster = Cluster::start(config).unwrap();
        let w = cluster.submit(TxnSpec::new("w", vec![Operation::write("x0", 7i64)]));
        assert!(w.committed(), "{:?}", w.outcome);
        let r = cluster.submit(TxnSpec::new(
            "r",
            vec![Operation::read("x0"), Operation::increment("x1", 2)],
        ));
        assert!(r.committed(), "{:?}", r.outcome);

        let tracer = cluster.tracer().expect("tracing is on");
        let traced = tracer.traced_txns();
        assert!(
            traced.len() >= 2,
            "both transactions sampled, got {traced:?}"
        );
        let labels: Vec<String> = tracer.events().iter().map(|e| e.label.clone()).collect();
        for expected in [
            "txn",
            "op:commit",
            "quorum:leg",
            "ccp:grant",
            "acp:prepare",
            "acp:vote",
            "apply:commit",
            "wal:force",
        ] {
            assert!(
                labels.iter().any(|l| l == expected),
                "missing {expected} in {labels:?}"
            );
        }
        // Read + increment contribute to the quorum-read phase; commits
        // exercise prepare / commit-apply / wal-force everywhere.
        let phases = cluster.stats().phases;
        for phase in [
            "quorum-read",
            "lock-wait",
            "prepare",
            "commit-apply",
            "wal-force",
        ] {
            assert!(
                phases.get(phase).is_some_and(|s| s.count > 0),
                "phase {phase} empty: {phases:?}"
            );
        }
        // The untraced path stays tracer-free.
        let plain = quick_cluster(2);
        assert!(plain.tracer().is_none());
        assert!(plain.stats().phases.is_empty());
    }

    #[test]
    fn stats_snapshot_exposes_load_balance_per_site() {
        let cluster = quick_cluster(2);
        for i in 0..6 {
            cluster.submit(TxnSpec::new(format!("t{i}"), vec![Operation::read("x0")]));
        }
        let stats = cluster.stats();
        let total_home: u64 = stats.load.home_transactions.values().sum();
        assert_eq!(total_home, 6);
    }
}
