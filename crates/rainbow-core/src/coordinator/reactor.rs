//! The sharded reactor coordinator.
//!
//! The thread-per-conversation coordinator (the parent module) dedicates
//! one worker thread to every in-flight transaction, exactly as the paper
//! describes. That is faithful but tops out early under high multiprogramming:
//! a thousand concurrent conversations mean a thousand blocked threads, a
//! thousand per-transaction reply channels, and one network envelope per
//! protocol message.
//!
//! This module is the alternative the `RAINBOW_COORDINATOR=reactor` knob
//! (or [`rainbow_common::CoordinatorMode::Reactor`]) selects: **N reactor
//! event-loop threads**, each owning the transactions pinned to it by
//! `txn.seq % N`. Each reactor drains one MPSC queue of
//! [`ReactorEvent`]s — new conversations and routed protocol messages —
//! and drives a [`TxnMachine`] state machine per transaction through the
//! *same* protocol steps as `run_interactive`: the two paths share the
//! quorum planner, version rules, straggler release and abort fan-out, so
//! the spec-vs-handle differential holds under either coordinator.
//!
//! Batching falls out of the tick structure: every site-bound message a
//! tick produces is staged in a per-reactor [`Outbox`] and flushed once at
//! the end of the tick, coalescing same-destination messages into one
//! `Msg::Batch` envelope. The receiving site unpacks the batch and groups
//! the prepare/commit WAL forces (`SiteStorage::prepare_many` /
//! `commit_many`), so commit-time appends from different transactions ride
//! one fsync. Client-bound replies are latency-sensitive one-offs and are
//! always sent directly, never batched.

use super::{
    abort_everywhere, finish_quorum_span, new_write_version, push_span, release_stragglers,
    start_quorum, trace_now, QuorumAccess, QuorumRound, StagedWrite, TxnExecution,
};
use crate::messages::{CopyAccessResult, Msg, NextOp, OpReply};
use crate::site::SiteShared;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rainbow_commit::{Coordinator, CoordinatorAction, CoordinatorState, Decision, Vote};
use rainbow_common::history::TxnRecord;
use rainbow_common::txn::{AbortCause, TxnOutcome, TxnResult};
use rainbow_common::{ItemId, SiteId, Timestamp, TxnId};
use rainbow_net::{Envelope, NodeId, Outbox};
use rainbow_replication::{QuorumCollector, QuorumOutcome, QuorumResponse};
use rainbow_trace::{Meter, TraceEvent, Track};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a reactor blocks waiting for its first event before running a
/// deadline-scan tick anyway. Bounds timer granularity for quorum/commit
/// deadlines and the idle-client horizon.
const TICK: Duration = Duration::from_millis(1);

/// Upper bound on events drained per tick, so a flooded queue cannot
/// starve the deadline scan (the rest is picked up next tick).
const MAX_EVENTS_PER_TICK: u64 = 512;

/// One unit of work routed to a reactor.
pub(crate) enum ReactorEvent {
    /// A new conversation: the dispatcher already allocated the id and
    /// timestamp (it needs `txn.seq` to pick the reactor).
    Begin {
        /// The new transaction's id.
        txn: TxnId,
        /// Its timestamp.
        ts: Timestamp,
        /// The client-chosen label.
        label: String,
        /// The driving client.
        client: NodeId,
        /// The client's request correlation number.
        request: u64,
    },
    /// A protocol message for a transaction pinned to this reactor
    /// (client ops, quorum replies, votes, acks).
    Deliver(Envelope<Msg>),
}

/// The reactor thread pool of one site. Created at site spawn when the
/// stack selects [`rainbow_common::CoordinatorMode::Reactor`].
pub(crate) struct ReactorPool {
    queues: Vec<Sender<ReactorEvent>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ReactorPool {
    /// Spawns the reactor threads for `shared`'s site.
    pub(crate) fn spawn(shared: &Arc<SiteShared>) -> ReactorPool {
        let n = reactor_count();
        let mut queues = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            let (tx, rx) = unbounded();
            queues.push(tx);
            let reactor_shared = Arc::clone(shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rainbow-reactor-{}-{index}", shared.id.0))
                    .spawn(move || reactor_loop(reactor_shared, rx))
                    .expect("failed to spawn reactor"),
            );
        }
        ReactorPool {
            queues,
            handles: Mutex::new(handles),
        }
    }

    /// Routes an event to the reactor owning transaction sequence `seq`.
    /// Sends after shutdown are dropped (the protocols' timeouts cover the
    /// teardown window).
    pub(crate) fn route(&self, seq: u64, event: ReactorEvent) {
        let slot = (seq % self.queues.len() as u64) as usize;
        let _ = self.queues[slot].send(event);
    }

    /// Joins every reactor thread; called by site shutdown after the
    /// shutdown flag is set (the threads observe it within one tick).
    pub(crate) fn join(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Number of reactor threads: `RAINBOW_REACTORS` when set (clamped to
/// 1..=64), otherwise the machine's parallelism clamped to 2..=8.
fn reactor_count() -> usize {
    if let Ok(raw) = std::env::var("RAINBOW_REACTORS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(64);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// One reactor's event loop: drain the queue, advance machines, scan
/// deadlines, flush the outbox — once per tick.
fn reactor_loop(shared: Arc<SiteShared>, mailbox: Receiver<ReactorEvent>) {
    let mut machines: HashMap<TxnId, TxnMachine> = HashMap::new();
    let mut outbox: Outbox<Msg> = Outbox::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            for (_, mut machine) in machines.drain() {
                machine.fail_site_down(&shared);
            }
            let _ = outbox.flush(&shared.net, shared.node, Msg::Batch);
            return;
        }
        let mut drained: u64 = 0;
        match mailbox.recv_timeout(TICK) {
            Ok(event) => {
                drained += 1;
                handle_event(&shared, &mut machines, &mut outbox, event);
                while drained < MAX_EVENTS_PER_TICK {
                    match mailbox.try_recv() {
                        Ok(event) => {
                            drained += 1;
                            handle_event(&shared, &mut machines, &mut outbox, event);
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if drained > 0 {
            if let Some(tracer) = shared.tracer.as_ref() {
                tracer.record_meter(Meter::ReactorQueueDepth, drained);
            }
        }
        let now = Instant::now();
        for machine in machines.values_mut() {
            machine.on_tick(&shared, &mut outbox, now);
        }
        let stats = outbox.flush(&shared.net, shared.node, Msg::Batch);
        if stats.envelopes > 0 {
            if let Some(tracer) = shared.tracer.as_ref() {
                tracer.record_meter(Meter::ReactorBatchSize, stats.largest_batch as u64);
            }
        }
        machines.retain(|_, machine| !machine.done);
    }
}

/// Processes one queued event.
fn handle_event(
    shared: &Arc<SiteShared>,
    machines: &mut HashMap<TxnId, TxnMachine>,
    outbox: &mut Outbox<Msg>,
    event: ReactorEvent,
) {
    match event {
        ReactorEvent::Begin {
            txn,
            ts,
            label,
            client,
            request,
        } => {
            let machine = TxnMachine::new(shared, txn, ts, label, client, request);
            // Insert before acknowledging, so the client's first command
            // (queued behind this event) finds the machine.
            machines.insert(txn, machine);
            shared.send(client, Msg::TxnBegan { request, txn });
            if let Some(sink) = shared.history.as_ref() {
                sink.begin();
            }
        }
        ReactorEvent::Deliver(envelope) => {
            let Some(txn) = envelope.payload.txn() else {
                return;
            };
            match machines.get_mut(&txn) {
                Some(machine) if !machine.done => machine.on_message(shared, outbox, envelope),
                _ => {
                    // The conversation is gone (idled out, finished, or the
                    // site recovered). Tell a waiting client instead of
                    // leaving it to its timeout; drop stale protocol
                    // messages, exactly like the threads path.
                    if let Msg::TxnOp { .. } = envelope.payload {
                        shared.send(
                            envelope.from,
                            Msg::TxnOpReply {
                                txn,
                                reply: OpReply::Gone,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Which quorum-driven client operation a [`QuorumOp`] serves.
enum OpKind {
    /// A single read.
    Read,
    /// A batched multi-get.
    ReadMany,
    /// A read-modify-write.
    Increment {
        /// The increment delta, applied once the quorum value is known.
        delta: i64,
    },
    /// The deferred write quorums assembled at commit, followed by the ACP.
    CommitInstall,
}

/// A quorum fan-out in flight — the event-driven analogue of
/// `single_quorum` (sequential) and `assemble_quorums_parallel`.
struct QuorumOp {
    kind: OpKind,
    access: QuorumAccess,
    /// Parallel fan-out (all quorums at once, one shared deadline) vs the
    /// sequential baseline (one quorum at a time, fresh deadline each).
    parallel: bool,
    /// The items, in request order; `rounds[i]` serves `items[i]`.
    items: Vec<ItemId>,
    /// Started rounds. Sequential mode grows this one round at a time.
    rounds: Vec<QuorumRound>,
    deadline: Instant,
    /// Start of the whole client operation (the `op:*` span).
    op_start: u64,
    /// Start of the current fan-out (per-round in sequential mode).
    fanout_start: u64,
}

/// The commit protocol in flight — the event-driven analogue of
/// `run_commit_protocol`'s loop state.
struct AcpRun {
    coordinator: Coordinator,
    /// Participant count (span detail only).
    participants: usize,
    abort_cause: Option<AbortCause>,
    deadline: Instant,
    acp_start: u64,
    /// Set when the decision goes out: closes the voting span, opens the
    /// decision-distribution span.
    decision_start: Option<u64>,
    /// Start of the commit client operation (the `op:commit` span).
    op_start: u64,
}

/// An ACP event extracted from a routed message.
enum AcpEvent {
    Vote(Vote),
    PreCommitAck,
    Ack,
}

/// What a machine is waiting for.
enum MachineState {
    /// Awaiting the client's next command. The idle-client horizon only
    /// ticks in this state, matching the threads path (quorum and commit
    /// phases are bounded by their own deadlines).
    Idle,
    /// Assembling quorums for one client operation.
    Quorums(QuorumOp),
    /// Running the atomic commit protocol.
    Committing(AcpRun),
}

/// Which deadline fired on a tick (computed under a shared borrow, acted
/// on after it ends).
enum Due {
    No,
    IdleClient,
    Quorum,
    Acp,
}

/// One transaction's coordinator, as a state machine owned by a reactor.
/// Drives the exact protocol sequence of `run_interactive` /
/// `drive_conversation`, re-expressed event-driven.
struct TxnMachine {
    exec: TxnExecution,
    label: String,
    client: NodeId,
    request: u64,
    started: Instant,
    trace_start: u64,
    last_activity: Instant,
    horizon: Duration,
    state: MachineState,
    /// Set by [`TxnMachine::finish`]; the reactor reaps done machines at
    /// the end of the tick.
    done: bool,
}

impl TxnMachine {
    fn new(
        shared: &Arc<SiteShared>,
        txn: TxnId,
        ts: Timestamp,
        label: String,
        client: NodeId,
        request: u64,
    ) -> TxnMachine {
        TxnMachine {
            exec: TxnExecution::new(txn, ts, shared.history.is_some()),
            label,
            client,
            request,
            started: Instant::now(),
            trace_start: trace_now(shared),
            last_activity: Instant::now(),
            horizon: shared.stack.janitor_horizon(),
            state: MachineState::Idle,
            done: false,
        }
    }

    /// Routes one protocol message into the machine. Messages that do not
    /// fit the current state are stale leftovers of an earlier operation
    /// and are dropped, exactly as the threads path ignores them.
    fn on_message(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        envelope: Envelope<Msg>,
    ) {
        let from = envelope.from;
        match envelope.payload {
            Msg::TxnOp { op, .. } => {
                if !matches!(self.state, MachineState::Idle) {
                    return; // mid-operation pipelining is unsupported, as in the threads path
                }
                self.last_activity = Instant::now();
                self.on_client_op(shared, outbox, op);
            }
            Msg::CopyReply {
                item,
                prewrite,
                for_update,
                result,
                ..
            } => self.on_copy_reply(shared, outbox, from, item, prewrite, for_update, result),
            Msg::AcpVote { vote, .. } => {
                self.on_acp_event(shared, outbox, from, AcpEvent::Vote(vote))
            }
            Msg::AcpPreCommitAck { .. } => {
                self.on_acp_event(shared, outbox, from, AcpEvent::PreCommitAck)
            }
            Msg::AcpAck { .. } => self.on_acp_event(shared, outbox, from, AcpEvent::Ack),
            _ => {}
        }
    }

    /// Executes the client's next command (state: Idle).
    fn on_client_op(&mut self, shared: &Arc<SiteShared>, outbox: &mut Outbox<Msg>, op: NextOp) {
        match op {
            NextOp::Read { item } => {
                self.begin_quorum_op(shared, outbox, OpKind::Read, vec![item], QuorumAccess::Read)
            }
            NextOp::ReadMany { items } => {
                self.begin_quorum_op(shared, outbox, OpKind::ReadMany, items, QuorumAccess::Read)
            }
            NextOp::BufferWrite { item, value } => {
                self.exec.staged.push(StagedWrite::Deferred { item, value });
                self.reply(shared, OpReply::Buffered);
            }
            NextOp::Increment { item, delta } => self.begin_quorum_op(
                shared,
                outbox,
                OpKind::Increment { delta },
                vec![item],
                QuorumAccess::ReadForUpdate,
            ),
            NextOp::Commit => {
                let op_start = trace_now(shared);
                let deferred: Vec<ItemId> = self
                    .exec
                    .staged
                    .iter()
                    .filter_map(|w| match w {
                        StagedWrite::Deferred { item, .. } => Some(item.clone()),
                        StagedWrite::Assembled { .. } => None,
                    })
                    .collect();
                if deferred.is_empty() {
                    self.fold_staged(shared, Vec::new());
                    self.start_acp(shared, outbox, op_start);
                } else {
                    self.begin_quorums(
                        shared,
                        outbox,
                        OpKind::CommitInstall,
                        deferred,
                        QuorumAccess::Write,
                        op_start,
                    );
                }
            }
            NextOp::Abort => {
                abort_everywhere(shared, &mut self.exec);
                self.finish(shared, TxnOutcome::Aborted(AbortCause::UserAbort));
            }
        }
    }

    /// Starts a quorum-driven operation (op span clock starts now).
    fn begin_quorum_op(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        kind: OpKind,
        items: Vec<ItemId>,
        access: QuorumAccess,
    ) {
        let op_start = trace_now(shared);
        self.begin_quorums(shared, outbox, kind, items, access, op_start);
    }

    /// Plans and sends the quorum fan-out, transitioning into
    /// `MachineState::Quorums` (or straight through it when every quorum
    /// assembles synchronously, e.g. single-site placements).
    fn begin_quorums(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        kind: OpKind,
        items: Vec<ItemId>,
        access: QuorumAccess,
        op_start: u64,
    ) {
        let parallel = shared.stack.parallel_quorums && items.len() > 1;
        let fanout_start = trace_now(shared);
        let mut op = QuorumOp {
            kind,
            access,
            parallel,
            items,
            rounds: Vec::new(),
            deadline: Instant::now() + shared.stack.quorum_timeout,
            op_start,
            fanout_start,
        };
        let result = if parallel {
            self.start_all_rounds(shared, outbox, &mut op)
        } else {
            self.start_rounds_sequentially(shared, outbox, &mut op)
        };
        match result {
            Err(cause) => self.quorum_op_failed(shared, op, cause),
            Ok(true) => self.quorum_op_complete(shared, outbox, op),
            Ok(false) => self.state = MachineState::Quorums(op),
        }
    }

    /// Parallel fan-out phase 1: start every round up front (mirrors
    /// `assemble_quorums_parallel`). Returns `Ok(true)` when everything
    /// assembled synchronously.
    fn start_all_rounds(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        op: &mut QuorumOp,
    ) -> Result<bool, AbortCause> {
        for item in op.items.clone() {
            let collector = start_quorum(
                shared,
                &mut self.exec,
                &item,
                op.access,
                &mut |site, msg| outbox.push(NodeId::Site(site), msg),
            )?;
            // A plan that is unsatisfiable from the start must abort now,
            // not after the fan-out deadline expires.
            if collector.outcome() == QuorumOutcome::Impossible {
                return Err(collector.abort_cause());
            }
            let assembled = collector.is_assembled();
            if assembled {
                let responders = collector.responders().len();
                finish_quorum_span(
                    shared,
                    &mut self.exec,
                    op.access,
                    &item,
                    op.fanout_start,
                    responders,
                );
            }
            op.rounds.push(QuorumRound {
                item,
                access: op.access,
                collector,
                assembled,
                ccp_cause: None,
            });
        }
        if op.rounds.iter().all(|r| r.assembled) {
            for round in &op.rounds {
                for site in round.collector.responders() {
                    self.exec.touched.insert(site);
                }
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Sequential baseline: start rounds one at a time, each with a fresh
    /// deadline (mirrors `single_quorum` called in a loop). Returns
    /// `Ok(true)` when every item's quorum has assembled.
    fn start_rounds_sequentially(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        op: &mut QuorumOp,
    ) -> Result<bool, AbortCause> {
        while op.rounds.len() < op.items.len() {
            let item = op.items[op.rounds.len()].clone();
            op.fanout_start = trace_now(shared);
            let collector = start_quorum(
                shared,
                &mut self.exec,
                &item,
                op.access,
                &mut |site, msg| outbox.push(NodeId::Site(site), msg),
            )?;
            op.deadline = Instant::now() + shared.stack.quorum_timeout;
            let round = QuorumRound {
                item,
                access: op.access,
                collector,
                assembled: false,
                ccp_cause: None,
            };
            match round.collector.outcome() {
                QuorumOutcome::Assembled => {
                    let responders = round.collector.responders();
                    for site in &responders {
                        self.exec.touched.insert(*site);
                    }
                    finish_quorum_span(
                        shared,
                        &mut self.exec,
                        op.access,
                        &round.item,
                        op.fanout_start,
                        responders.len(),
                    );
                    let mut round = round;
                    round.assembled = true;
                    op.rounds.push(round);
                }
                QuorumOutcome::Impossible => {
                    for site in round.collector.responders() {
                        self.exec.touched.insert(site);
                    }
                    return Err(round.collector.abort_cause());
                }
                QuorumOutcome::Pending => {
                    op.rounds.push(round);
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Feeds one `CopyReply` into the in-flight quorum fan-out.
    #[allow(clippy::too_many_arguments)]
    fn on_copy_reply(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        from: NodeId,
        item: ItemId,
        prewrite: bool,
        for_update: bool,
        result: CopyAccessResult,
    ) {
        if !matches!(self.state, MachineState::Quorums(_)) {
            return; // stale reply from an earlier operation
        }
        let Some(site) = from.as_site() else { return };
        let MachineState::Quorums(mut op) = std::mem::replace(&mut self.state, MachineState::Idle)
        else {
            unreachable!("state checked above")
        };

        // Route the reply to the round it belongs to.
        let round_index = if op.parallel {
            match op
                .rounds
                .iter()
                .position(|r| r.matches(&item, prewrite, for_update, site))
            {
                Some(index) => index,
                None => {
                    // stale reply for an already-assembled quorum
                    self.state = MachineState::Quorums(op);
                    return;
                }
            }
        } else {
            let current = op.rounds.len() - 1;
            let stale = {
                let round = &op.rounds[current];
                round.assembled
                    || round.item != item
                    || prewrite != (op.access == QuorumAccess::Write)
                    || for_update != (op.access == QuorumAccess::ReadForUpdate)
            };
            if stale {
                self.state = MachineState::Quorums(op);
                return;
            }
            current
        };

        if from != shared.node {
            shared.net.counters().record_round_trip();
        }
        let fanout_start = op.fanout_start;
        push_span(
            shared,
            &mut self.exec,
            Track::Coordinator,
            "quorum:leg",
            fanout_start,
            || format!("site{} {item}", site.0),
        );

        {
            let round = &mut op.rounds[round_index];
            match result {
                CopyAccessResult::Granted { value, version } => {
                    if op.parallel {
                        // The responder holds CCP resources on our behalf
                        // from this moment, whether or not its quorum ends
                        // up assembling.
                        self.exec.touched.insert(site);
                    }
                    round.collector.record_response(QuorumResponse {
                        site,
                        version,
                        value,
                    });
                }
                CopyAccessResult::Denied(cause) => {
                    if round.ccp_cause.is_none() {
                        round.ccp_cause = Some(cause);
                    }
                    round.collector.record_failure(site);
                }
                CopyAccessResult::NoSuchCopy => {
                    round.collector.record_failure(site);
                }
            }
        }

        match op.rounds[round_index].collector.outcome() {
            QuorumOutcome::Assembled => {
                op.rounds[round_index].assembled = true;
                let responders = op.rounds[round_index].collector.responders();
                if !op.parallel {
                    // The sequential baseline books responders at terminal
                    // states, like `single_quorum`.
                    for site in &responders {
                        self.exec.touched.insert(*site);
                    }
                }
                let round_item = op.rounds[round_index].item.clone();
                finish_quorum_span(
                    shared,
                    &mut self.exec,
                    op.access,
                    &round_item,
                    op.fanout_start,
                    responders.len(),
                );
                if op.parallel {
                    if op.rounds.iter().all(|r| r.assembled) {
                        for round in &op.rounds {
                            for site in round.collector.responders() {
                                self.exec.touched.insert(site);
                            }
                        }
                        self.quorum_op_complete(shared, outbox, op);
                    } else {
                        self.state = MachineState::Quorums(op);
                    }
                } else {
                    match self.start_rounds_sequentially(shared, outbox, &mut op) {
                        Ok(true) => self.quorum_op_complete(shared, outbox, op),
                        Ok(false) => self.state = MachineState::Quorums(op),
                        Err(cause) => self.quorum_op_failed(shared, op, cause),
                    }
                }
            }
            QuorumOutcome::Impossible => {
                if !op.parallel {
                    for site in op.rounds[round_index].collector.responders() {
                        self.exec.touched.insert(site);
                    }
                }
                let cause = op.rounds[round_index]
                    .ccp_cause
                    .clone()
                    .unwrap_or_else(|| op.rounds[round_index].collector.abort_cause());
                self.quorum_op_failed(shared, op, cause);
            }
            QuorumOutcome::Pending => {
                self.state = MachineState::Quorums(op);
            }
        }
    }

    /// The quorum deadline fired before assembly completed.
    fn quorum_deadline_expired(&mut self, shared: &Arc<SiteShared>, op: QuorumOp) {
        let cause = if op.parallel {
            let slowest = op
                .rounds
                .iter()
                .find(|r| !r.assembled)
                .expect("an unassembled round on expiry");
            slowest.ccp_cause.clone().unwrap_or(AbortCause::RcpTimeout {
                item: slowest.item.clone(),
            })
        } else {
            let round = op.rounds.last().expect("a started round on expiry");
            for site in round.collector.responders() {
                self.exec.touched.insert(site);
            }
            round.ccp_cause.clone().unwrap_or(AbortCause::RcpTimeout {
                item: round.item.clone(),
            })
        };
        self.quorum_op_failed(shared, op, cause);
    }

    /// Aborts the transaction because a quorum failed: op span, abort
    /// fan-out, final report — in the threads path's order (the commit op
    /// aborts everywhere *before* its span; the others after).
    fn quorum_op_failed(&mut self, shared: &Arc<SiteShared>, op: QuorumOp, cause: AbortCause) {
        if matches!(op.kind, OpKind::CommitInstall) {
            abort_everywhere(shared, &mut self.exec);
            self.push_op_span(shared, &op, false);
        } else {
            self.push_op_span(shared, &op, false);
            abort_everywhere(shared, &mut self.exec);
        }
        self.finish(shared, TxnOutcome::Aborted(cause));
    }

    /// Buffers the operation's coordinator span (`op:read`, `op:read-many`,
    /// `op:increment`, or `op:commit` on the failure path).
    fn push_op_span(&mut self, shared: &Arc<SiteShared>, op: &QuorumOp, committed: bool) {
        if shared.tracer.is_none() {
            return;
        }
        let (label, detail): (&str, String) = match &op.kind {
            OpKind::Read => ("op:read", op.items[0].to_string()),
            OpKind::ReadMany => ("op:read-many", format!("{} items", op.items.len())),
            OpKind::Increment { .. } => ("op:increment", op.items[0].to_string()),
            OpKind::CommitInstall => (
                "op:commit",
                if committed { "committed" } else { "aborted" }.to_string(),
            ),
        };
        push_span(
            shared,
            &mut self.exec,
            Track::Coordinator,
            label,
            op.op_start,
            || detail,
        );
    }

    /// Every quorum of the operation assembled: complete the client
    /// operation (observe values, stage writes, reply — or move into the
    /// commit protocol).
    fn quorum_op_complete(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        op: QuorumOp,
    ) {
        match &op.kind {
            OpKind::Read => {
                let item = op.rounds[0].item.clone();
                let res = op.rounds[0]
                    .collector
                    .latest_value()
                    .ok_or_else(|| AbortCause::RcpTimeout { item: item.clone() });
                self.push_op_span(shared, &op, false);
                match res {
                    Ok((value, version)) => {
                        self.exec.observe_read(&item, &value, version);
                        self.exec.reads.insert(item.clone(), value.clone());
                        self.reply(shared, OpReply::Value { item, value });
                        self.state = MachineState::Idle;
                    }
                    Err(cause) => {
                        abort_everywhere(shared, &mut self.exec);
                        self.finish(shared, TxnOutcome::Aborted(cause));
                    }
                }
            }
            OpKind::ReadMany => {
                let mut values = Vec::with_capacity(op.rounds.len());
                let mut failure: Option<AbortCause> = None;
                for round in &op.rounds {
                    match round.collector.latest_value() {
                        Some((value, version)) => {
                            self.exec.observe_read(&round.item, &value, version);
                            self.exec.reads.insert(round.item.clone(), value.clone());
                            values.push((round.item.clone(), value));
                        }
                        None => {
                            failure = Some(AbortCause::RcpTimeout {
                                item: round.item.clone(),
                            });
                            break;
                        }
                    }
                }
                self.push_op_span(shared, &op, false);
                match failure {
                    None => {
                        self.reply(shared, OpReply::Values { values });
                        self.state = MachineState::Idle;
                    }
                    Some(cause) => {
                        abort_everywhere(shared, &mut self.exec);
                        self.finish(shared, TxnOutcome::Aborted(cause));
                    }
                }
            }
            OpKind::Increment { delta } => {
                let delta = *delta;
                let item = op.rounds[0].item.clone();
                let res = match op.rounds[0].collector.latest_value() {
                    None => Err(AbortCause::RcpTimeout { item: item.clone() }),
                    Some((current, observed_version)) => match current.add_int(delta) {
                        None => Err(AbortCause::UserAbort),
                        Some(new_value) => {
                            self.exec.observe_read(&item, &current, observed_version);
                            self.exec.reads.insert(item.clone(), current.clone());
                            let version =
                                new_write_version(shared, &self.exec, &op.rounds[0].collector);
                            self.exec.staged.push(StagedWrite::Assembled {
                                item: item.clone(),
                                value: new_value,
                                sites: op.rounds[0].collector.responders(),
                                version,
                            });
                            Ok(current)
                        }
                    },
                };
                self.push_op_span(shared, &op, false);
                match res {
                    Ok(value) => {
                        self.reply(shared, OpReply::Value { item, value });
                        self.state = MachineState::Idle;
                    }
                    Err(cause) => {
                        abort_everywhere(shared, &mut self.exec);
                        self.finish(shared, TxnOutcome::Aborted(cause));
                    }
                }
            }
            OpKind::CommitInstall => {
                let op_start = op.op_start;
                let collectors: Vec<QuorumCollector> =
                    op.rounds.into_iter().map(|r| r.collector).collect();
                self.fold_staged(shared, collectors);
                self.start_acp(shared, outbox, op_start);
            }
        }
    }

    /// Folds the staged updates — in client order — into the per-site
    /// write sets the ACP will distribute (mirrors the tail of
    /// `install_staged_writes`).
    fn fold_staged(&mut self, shared: &Arc<SiteShared>, collectors: Vec<QuorumCollector>) {
        let mut next_collector = collectors.into_iter();
        for staged in std::mem::take(&mut self.exec.staged) {
            match staged {
                StagedWrite::Deferred { item, value } => {
                    let collector = next_collector
                        .next()
                        .expect("one collector per deferred write");
                    let version = new_write_version(shared, &self.exec, &collector);
                    self.exec.observe_write(&item, &value, version);
                    for site in collector.responders() {
                        self.exec.writes_per_site.entry(site).or_default().push((
                            item.clone(),
                            value.clone(),
                            version,
                        ));
                    }
                }
                StagedWrite::Assembled {
                    item,
                    value,
                    sites,
                    version,
                } => {
                    self.exec.observe_write(&item, &value, version);
                    for site in sites {
                        self.exec.writes_per_site.entry(site).or_default().push((
                            item.clone(),
                            value.clone(),
                            version,
                        ));
                    }
                }
            }
        }
    }

    /// Starts the atomic commit protocol over every touched site.
    fn start_acp(&mut self, shared: &Arc<SiteShared>, outbox: &mut Outbox<Msg>, op_start: u64) {
        let participants: Vec<SiteId> = self.exec.touched.iter().copied().collect();
        let n_participants = participants.len();
        let mut coordinator = Coordinator::new(self.exec.txn, shared.stack.acp, participants);
        let acp_start = trace_now(shared);
        let action = coordinator.start();
        if let CoordinatorAction::Complete(decision) = action {
            // No participants: a transaction that touched nothing commits
            // trivially.
            let outcome = match decision {
                Decision::Commit => TxnOutcome::Committed,
                Decision::Abort => TxnOutcome::Aborted(AbortCause::UserAbort),
            };
            self.push_commit_span(shared, op_start, &outcome);
            self.finish(shared, outcome);
            return;
        }
        let run = AcpRun {
            coordinator,
            participants: n_participants,
            abort_cause: None,
            deadline: Instant::now() + shared.stack.commit_timeout,
            acp_start,
            decision_start: None,
            op_start,
        };
        self.advance_acp(shared, outbox, run, action);
    }

    /// Feeds one routed ACP reply into the in-flight commit protocol.
    fn on_acp_event(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        from: NodeId,
        event: AcpEvent,
    ) {
        if !matches!(self.state, MachineState::Committing(_)) {
            return; // stale vote/ack from an earlier transaction phase
        }
        let Some(site) = from.as_site() else { return };
        let MachineState::Committing(mut run) =
            std::mem::replace(&mut self.state, MachineState::Idle)
        else {
            unreachable!("state checked above")
        };
        let action = match event {
            AcpEvent::Vote(vote) => {
                if vote == Vote::No && run.abort_cause.is_none() {
                    run.abort_cause = Some(AbortCause::AcpVotedNo { participant: site });
                }
                run.coordinator.on_vote(site, vote)
            }
            AcpEvent::PreCommitAck => run.coordinator.on_precommit_ack(site),
            AcpEvent::Ack => run.coordinator.on_ack(site),
        };
        self.advance_acp(shared, outbox, run, action);
    }

    /// Applies one coordinator action, refreshing phase deadlines and
    /// spans like the threads loop, and either completes the protocol or
    /// re-enters the `Committing` state.
    fn advance_acp(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        mut run: AcpRun,
        action: CoordinatorAction,
    ) {
        // Phase transitions get a fresh timeout window.
        match action {
            CoordinatorAction::SendPreCommit(_) | CoordinatorAction::SendDecision(..) => {
                run.deadline = Instant::now() + shared.stack.commit_timeout;
            }
            _ => {}
        }
        if matches!(action, CoordinatorAction::SendDecision(..)) && run.decision_start.is_none() {
            let n = run.participants;
            push_span(
                shared,
                &mut self.exec,
                Track::Coordinator,
                "acp:prepare",
                run.acp_start,
                || format!("{n} participants"),
            );
            run.decision_start = Some(trace_now(shared));
        }
        let complete = self.perform_acp_action(shared, outbox, action);
        if complete || run.coordinator.state() == CoordinatorState::Completed {
            self.finish_acp(shared, run);
        } else {
            self.state = MachineState::Committing(run);
        }
    }

    /// Performs one coordinator action, queueing site-bound messages in
    /// the outbox (they coalesce per destination at the tick flush).
    /// Returns true when the protocol is complete — the reactor analogue
    /// of `perform_action`.
    fn perform_acp_action(
        &mut self,
        shared: &Arc<SiteShared>,
        outbox: &mut Outbox<Msg>,
        action: CoordinatorAction,
    ) -> bool {
        match action {
            CoordinatorAction::SendPrepare(targets) => {
                for target in targets {
                    let writes = self
                        .exec
                        .writes_per_site
                        .get(&target)
                        .cloned()
                        .unwrap_or_default();
                    outbox.push(
                        NodeId::Site(target),
                        Msg::AcpPrepare {
                            txn: self.exec.txn,
                            ts: self.exec.ts,
                            writes,
                        },
                    );
                    if target != shared.id {
                        self.exec.messages += 1;
                    }
                }
                false
            }
            CoordinatorAction::SendPreCommit(targets) => {
                for target in targets {
                    outbox.push(
                        NodeId::Site(target),
                        Msg::AcpPreCommit { txn: self.exec.txn },
                    );
                    if target != shared.id {
                        self.exec.messages += 1;
                    }
                }
                false
            }
            CoordinatorAction::SendDecision(decision, targets) => {
                // Force the decision at the coordinator before telling
                // anyone (queued sends leave strictly after the insert).
                shared.decided.lock().insert(self.exec.txn, decision);
                for target in targets {
                    outbox.push(
                        NodeId::Site(target),
                        Msg::AcpDecision {
                            txn: self.exec.txn,
                            decision,
                        },
                    );
                    if target != shared.id {
                        self.exec.messages += 1;
                    }
                }
                false
            }
            CoordinatorAction::Complete(_) => true,
            CoordinatorAction::Wait => false,
        }
    }

    /// The commit protocol finished (decision distributed and acked, or
    /// timed out into an orphan): report the outcome.
    fn finish_acp(&mut self, shared: &Arc<SiteShared>, mut run: AcpRun) {
        if let Some(start) = run.decision_start {
            let decision = run.coordinator.decision();
            push_span(
                shared,
                &mut self.exec,
                Track::Coordinator,
                "acp:decision",
                start,
                || format!("{decision:?}"),
            );
        }
        let outcome = match run.coordinator.decision() {
            Some(Decision::Commit) => TxnOutcome::Committed,
            Some(Decision::Abort) => {
                TxnOutcome::Aborted(run.abort_cause.take().unwrap_or(AbortCause::AcpTimeout {
                    phase: "prepare".into(),
                }))
            }
            None => TxnOutcome::Orphaned,
        };
        self.push_commit_span(shared, run.op_start, &outcome);
        self.finish(shared, outcome);
    }

    /// Buffers the `op:commit` span.
    fn push_commit_span(&mut self, shared: &Arc<SiteShared>, op_start: u64, outcome: &TxnOutcome) {
        let committed = outcome.is_committed();
        push_span(
            shared,
            &mut self.exec,
            Track::Coordinator,
            "op:commit",
            op_start,
            || {
                if committed {
                    "committed".to_string()
                } else {
                    "aborted".to_string()
                }
            },
        );
    }

    /// Deadline scan, run once per tick.
    fn on_tick(&mut self, shared: &Arc<SiteShared>, outbox: &mut Outbox<Msg>, now: Instant) {
        if self.done {
            return;
        }
        let due = match &self.state {
            MachineState::Idle => {
                if now.duration_since(self.last_activity) >= self.horizon {
                    Due::IdleClient
                } else {
                    Due::No
                }
            }
            MachineState::Quorums(op) => {
                if now >= op.deadline {
                    Due::Quorum
                } else {
                    Due::No
                }
            }
            MachineState::Committing(run) => {
                if now >= run.deadline {
                    Due::Acp
                } else {
                    Due::No
                }
            }
        };
        match due {
            Due::No => {}
            Due::IdleClient => {
                // The client went quiet past the janitor horizon: presume
                // it gone and free resources everywhere on the same clock
                // the participant janitor uses.
                abort_everywhere(shared, &mut self.exec);
                self.finish(shared, TxnOutcome::Aborted(AbortCause::ClientTimeout));
            }
            Due::Quorum => {
                let MachineState::Quorums(op) =
                    std::mem::replace(&mut self.state, MachineState::Idle)
                else {
                    unreachable!("state checked above")
                };
                self.quorum_deadline_expired(shared, op);
            }
            Due::Acp => {
                let MachineState::Committing(mut run) =
                    std::mem::replace(&mut self.state, MachineState::Idle)
                else {
                    unreachable!("state checked above")
                };
                if run.abort_cause.is_none() {
                    run.abort_cause = Some(AbortCause::AcpTimeout {
                        phase: match run.coordinator.state() {
                            CoordinatorState::CollectingVotes => "prepare".into(),
                            CoordinatorState::CollectingPreCommitAcks => "pre-commit".into(),
                            _ => "ack".into(),
                        },
                    });
                }
                let action = run.coordinator.on_timeout();
                self.advance_acp(shared, outbox, run, action);
            }
        }
    }

    /// Site shutdown with the conversation still open: abort everywhere
    /// and report a site failure, like a thread-per-conversation worker
    /// observing the shutdown flag.
    fn fail_site_down(&mut self, shared: &Arc<SiteShared>) {
        if self.done {
            return;
        }
        abort_everywhere(shared, &mut self.exec);
        self.finish(
            shared,
            TxnOutcome::Aborted(AbortCause::SiteFailure { site: shared.id }),
        );
    }

    /// Sends an operation reply to the driving client (direct, never
    /// batched: client replies are latency-sensitive one-offs).
    fn reply(&self, shared: &Arc<SiteShared>, reply: OpReply) {
        shared.send(
            self.client,
            Msg::TxnOpReply {
                txn: self.exec.txn,
                reply,
            },
        );
    }

    /// The common epilogue of every outcome — the reactor analogue of
    /// `run_interactive`'s tail: release stragglers, record the decision
    /// and history, close the trace, and report to the client.
    fn finish(&mut self, shared: &Arc<SiteShared>, outcome: TxnOutcome) {
        release_stragglers(shared, &mut self.exec);
        if outcome.is_committed() {
            shared
                .decided
                .lock()
                .insert(self.exec.txn, Decision::Commit);
        }
        if let Some(sink) = shared.history.as_ref() {
            sink.record(TxnRecord {
                txn: self.exec.txn,
                label: self.label.clone(),
                reads: std::mem::take(&mut self.exec.observed),
                writes: std::mem::take(&mut self.exec.installed),
                outcome: outcome.clone(),
                completion_seq: 0,
            });
        }
        if let Some(tracer) = shared.tracer.as_ref() {
            let mut spans = std::mem::take(&mut self.exec.spans);
            spans.push(TraceEvent {
                txn: self.exec.txn,
                track: Track::Coordinator,
                label: "txn".to_string(),
                start_us: self.trace_start,
                dur_us: tracer.now_us().saturating_sub(self.trace_start),
                detail: format!("{}: {:?}", self.label, outcome),
            });
            tracer.finish_txn(self.exec.txn, self.started.elapsed(), spans);
        }
        let result = TxnResult {
            id: self.exec.txn,
            label: self.label.clone(),
            outcome,
            reads: self.exec.reads.clone(),
            response_time: self.started.elapsed(),
            restarts: 0,
            messages: self.exec.messages,
        };
        shared.send(
            self.client,
            Msg::TxnDone {
                request: self.request,
                result,
            },
        );
        self.done = true;
        self.state = MachineState::Idle;
    }
}
