//! The Rainbow site runtime.
//!
//! A site is one node of the distributed database. It runs:
//!
//! * a **dispatcher thread** that drains the site's network mailbox and
//!   routes messages — responses go to the transaction-coordinator worker
//!   waiting for them, requests are handled (inline when non-blocking,
//!   on a short-lived handler thread when they may block on a lock);
//! * **one worker thread per in-flight transaction** whose home is this
//!   site, exactly as in the paper ("When a new transaction arrives at a
//!   Rainbow site, the site dedicates one thread to process it");
//! * the **participant side** of the commit protocol for transactions
//!   coordinated elsewhere, including a janitor that cleans up transactions
//!   whose coordinator disappeared and the recovery path that resolves
//!   in-doubt transactions after a crash.

use crate::coordinator::reactor::{ReactorEvent, ReactorPool};
use crate::coordinator::run_interactive;
use crate::messages::{CopyAccessResult, Msg, OpReply};
use crate::metrics::SiteMetrics;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rainbow_cc::{make_ccp, CcDecision, CcProtocol, TxnContext};
use rainbow_commit::{Decision, Participant, ParticipantAction, ParticipantState, Vote};
use rainbow_common::config::DatabaseSchema;
use rainbow_common::history::HistorySink;
use rainbow_common::protocol::{CoordinatorMode, ProtocolStack};
use rainbow_common::{
    ItemId, RainbowError, RainbowResult, SiteId, Timestamp, TimestampGenerator, TxnId, Value,
    Version,
};
use rainbow_net::{Envelope, NetHandle, NodeId};
use rainbow_replication::{make_rcp, ReplicationControl};
use rainbow_storage::{PowerLossFault, SiteStorage, StorageConfig};
use rainbow_trace::{Phase, TraceEvent, Tracer, Track};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The writes of one transaction destined for (or recovered at) this site.
pub(crate) type WriteSet = Vec<(ItemId, Value, Version)>;

/// Participant-side bookkeeping for one transaction at this site.
pub(crate) struct ParticipantEntry {
    pub machine: Participant,
    pub ctx: TxnContext,
    pub coordinator: NodeId,
    pub last_activity: Instant,
}

/// State shared between the dispatcher, handler threads and transaction
/// workers of one site.
pub(crate) struct SiteShared {
    pub id: SiteId,
    pub node: NodeId,
    pub stack: ProtocolStack,
    pub storage: SiteStorage,
    pub ccp: RwLock<Arc<dyn CcProtocol>>,
    pub rcp: Arc<dyn ReplicationControl>,
    pub schema: RwLock<DatabaseSchema>,
    pub net: NetHandle<Msg>,
    pub metrics: Arc<SiteMetrics>,
    pub participants: Mutex<HashMap<TxnId, ParticipantEntry>>,
    pub pending_replies: Mutex<HashMap<TxnId, Sender<Envelope<Msg>>>>,
    pub decided: Mutex<HashMap<TxnId, Decision>>,
    /// Transactions that have already been decided (or cleaned up) at this
    /// site *as a participant*. Late copy-access requests and late lock
    /// grants for these transactions are refused so they cannot resurrect a
    /// participant entry that nobody will ever release.
    pub finished: Mutex<std::collections::HashSet<TxnId>>,
    /// In-doubt transactions found during crash recovery, waiting for a
    /// status reply from their coordinator.
    pub in_doubt: Mutex<HashMap<TxnId, WriteSet>>,
    pub txn_seq: AtomicU64,
    pub clock: TimestampGenerator,
    pub shutdown: Arc<AtomicBool>,
    /// The cluster-wide history sink the chaos laboratory snoops on, when
    /// history recording is enabled. `None` (the default) keeps every
    /// recording branch in the coordinator dead, so the hot path pays
    /// nothing.
    pub history: Option<Arc<HistorySink>>,
    /// The cluster-wide trace sink, `None` when tracing is disabled (the
    /// default) — same dead-branch pattern as `history`.
    pub tracer: Option<Arc<Tracer>>,
    /// The sharded reactor pool, populated at spawn when the stack selects
    /// [`CoordinatorMode::Reactor`]. Empty in thread-per-conversation mode,
    /// so the dispatcher's `get()` check is the only cost there.
    pub reactor: OnceLock<ReactorPool>,
}

impl SiteShared {
    /// The CCP currently in force (replaced wholesale on crash recovery).
    pub fn ccp(&self) -> Arc<dyn CcProtocol> {
        self.ccp.read().clone()
    }

    /// Registers a reply channel for a coordinator worker.
    pub fn register_reply_channel(&self, txn: TxnId, tx: Sender<Envelope<Msg>>) {
        self.pending_replies.lock().insert(txn, tx);
    }

    /// Removes the reply channel when the coordinator worker finishes.
    pub fn unregister_reply_channel(&self, txn: TxnId) {
        self.pending_replies.lock().remove(&txn);
    }

    /// Sends a message from this site, ignoring network shutdown errors
    /// (which only occur while the whole instance is being torn down).
    pub fn send(&self, to: NodeId, msg: Msg) {
        let _ = self.net.send(self.node, to, msg);
    }

    /// Microseconds since the tracer epoch, or 0 when tracing is off. The
    /// timestamp feeds [`SiteShared::trace_site_span`].
    pub fn trace_now(&self) -> u64 {
        self.tracer.as_ref().map_or(0, |t| t.now_us())
    }

    /// Records a participant-side span covering `start_us`..now on this
    /// site's track — into `phase`'s histogram when given, and as a span
    /// event when the transaction is sampled. No-op without a tracer; the
    /// detail is a closure so untraced runs never pay for formatting.
    pub fn trace_site_span(
        &self,
        txn: TxnId,
        phase: Option<Phase>,
        label: &str,
        start_us: u64,
        detail: impl FnOnce() -> String,
    ) {
        let Some(tracer) = self.tracer.as_ref() else {
            return;
        };
        let dur = tracer.now_us().saturating_sub(start_us);
        if let Some(phase) = phase {
            tracer.record_phase(phase, Duration::from_micros(dur));
        }
        if tracer.sampled(txn) {
            tracer.record(TraceEvent {
                txn,
                track: Track::Site { site: self.id.0 },
                label: label.to_string(),
                start_us,
                dur_us: dur,
                detail: detail(),
            });
        }
    }

    /// Ensures a participant entry exists for `txn` and returns its context.
    fn ensure_participant(&self, txn: TxnId, ts: Timestamp, coordinator: NodeId) -> TxnContext {
        let mut participants = self.participants.lock();
        let entry = participants.entry(txn).or_insert_with(|| ParticipantEntry {
            machine: Participant::new(
                txn,
                coordinator.as_site().unwrap_or(self.id),
                self.stack.acp,
            ),
            ctx: TxnContext::new(txn, ts),
            coordinator,
            last_activity: Instant::now(),
        });
        entry.last_activity = Instant::now();
        entry.ctx
    }
}

/// Handle to a running Rainbow site.
pub struct SiteHandle {
    shared: Arc<SiteShared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl SiteHandle {
    /// Spawns a site that first fetches its schema from the name server.
    /// `history` is the cluster-wide transaction-history sink, `None` when
    /// recording is disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        id: SiteId,
        stack: ProtocolStack,
        storage: &StorageConfig,
        net: NetHandle<Msg>,
        mailbox: Receiver<Envelope<Msg>>,
        metrics: Arc<SiteMetrics>,
        history: Option<Arc<HistorySink>>,
        tracer: Option<Arc<Tracer>>,
    ) -> RainbowResult<Self> {
        let node = NodeId::Site(id);
        // Ask the name server for the schema before serving anything.
        let mut schema = None;
        for _attempt in 0..10 {
            net.send(node, NodeId::NameServer, Msg::NsGetSchema)?;
            match mailbox.recv_timeout(Duration::from_millis(300)) {
                Ok(envelope) => {
                    if let Msg::NsSchema { database, .. } = envelope.payload {
                        schema = Some(database);
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RainbowError::Network("site mailbox closed".into()))
                }
            }
        }
        let schema = schema.ok_or_else(|| {
            RainbowError::Timeout(format!("site {id} could not fetch the schema"))
        })?;
        Self::spawn_with_schema(
            id, stack, storage, schema, net, mailbox, metrics, history, tracer,
        )
    }

    /// Spawns a site with an explicitly provided schema (no name-server
    /// round trip); used by tests and by recovery.
    ///
    /// A disk engine reopening an existing data directory comes back with
    /// its committed state; items recovered from the log are *not*
    /// re-initialized, and in-doubt transactions found in the log get a
    /// status query to their coordinator (retried by the janitor until an
    /// answer arrives).
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with_schema(
        id: SiteId,
        stack: ProtocolStack,
        storage_config: &StorageConfig,
        schema: DatabaseSchema,
        net: NetHandle<Msg>,
        mailbox: Receiver<Envelope<Msg>>,
        metrics: Arc<SiteMetrics>,
        history: Option<Arc<HistorySink>>,
        tracer: Option<Arc<Tracer>>,
    ) -> RainbowResult<Self> {
        let (storage, outcome) = SiteStorage::open(id, storage_config, tracer.clone())?;
        let local_items: Vec<(ItemId, Value)> = schema
            .items
            .iter()
            .filter(|spec| {
                schema
                    .replication
                    .placement(&spec.id)
                    .map(|p| p.holds_copy(id))
                    .unwrap_or(false)
            })
            .map(|spec| (spec.id.clone(), spec.initial.clone()))
            .collect();
        storage.initialize(&local_items);

        let ccp = make_ccp(stack.ccp, stack.deadlock, stack.lock_wait_timeout);
        let rcp = make_rcp(stack.rcp);
        let shared = Arc::new(SiteShared {
            id,
            node: NodeId::Site(id),
            stack,
            storage,
            ccp: RwLock::new(ccp),
            rcp,
            schema: RwLock::new(schema),
            net,
            metrics,
            participants: Mutex::new(HashMap::new()),
            pending_replies: Mutex::new(HashMap::new()),
            decided: Mutex::new(HashMap::new()),
            finished: Mutex::new(std::collections::HashSet::new()),
            in_doubt: Mutex::new(HashMap::new()),
            txn_seq: AtomicU64::new(0),
            clock: TimestampGenerator::new(id),
            shutdown: Arc::new(AtomicBool::new(false)),
            history,
            tracer,
            reactor: OnceLock::new(),
        });

        if shared.stack.coordinator == CoordinatorMode::Reactor {
            let _ = shared.reactor.set(ReactorPool::spawn(&shared));
        }

        // A restart from an existing durable log may come back with in-doubt
        // transactions (prepared, never decided before the previous process
        // died). Chase their coordinators exactly like crash recovery does;
        // the janitor keeps retrying until an answer arrives.
        {
            let mut in_doubt = shared.in_doubt.lock();
            for txn in outcome.in_doubt {
                in_doubt.insert(txn.txn, txn.writes.clone());
                shared.send(
                    NodeId::Site(txn.txn.home),
                    Msg::AcpStatusQuery { txn: txn.txn },
                );
            }
        }

        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name(format!("rainbow-site-{}", id.0))
            .spawn(move || dispatcher_loop(dispatcher_shared, mailbox))
            .expect("failed to spawn site dispatcher");

        Ok(SiteHandle {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// The site's id.
    pub fn id(&self) -> SiteId {
        self.shared.id
    }

    /// The site's metrics handle.
    pub fn metrics(&self) -> Arc<SiteMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// A snapshot of the committed database state at this site.
    pub fn database_snapshot(&self) -> Vec<(ItemId, Value, Version)> {
        self.shared.storage.snapshot()
    }

    /// Number of transactions currently holding resources at this site's
    /// CCP.
    pub fn active_transactions(&self) -> usize {
        self.shared.ccp().active_transactions()
    }

    /// Diagnostic view of the transactions still registered as participants
    /// at this site: `(transaction, state, seconds since last activity)`.
    /// Used by tests and operational tooling to spot transactions whose
    /// coordinator disappeared.
    pub fn lingering_participants(&self) -> Vec<(TxnId, String, f64)> {
        self.shared
            .participants
            .lock()
            .iter()
            .map(|(txn, entry)| {
                (
                    *txn,
                    format!("{:?}", entry.machine.state()),
                    entry.last_activity.elapsed().as_secs_f64(),
                )
            })
            .collect()
    }

    /// Simulates the volatile-state loss of a crash and immediately runs
    /// recovery: the committed state is rebuilt from the write-ahead log,
    /// concurrency-control state is reset, and status queries are sent to
    /// the coordinators of in-doubt transactions.
    ///
    /// The caller (normally the cluster / fault injector) is responsible for
    /// marking the site crashed in the [`rainbow_net::FaultController`]
    /// before, and recovering it after, so that no messages flow while the
    /// site is "down".
    pub fn recover_from_crash(&self) -> RainbowResult<()> {
        // Volatile state is gone.
        self.shared.storage.crash();
        self.restart_from_log()
    }

    /// The power-loss nemesis: drops **all** of the site's volatile state —
    /// including whatever the durable engine had buffered but not yet
    /// synced — optionally injecting a torn or corrupted tail write into
    /// the log, then restarts the site from the disk image alone. On the
    /// memory engine this degrades to [`SiteHandle::recover_from_crash`]
    /// (its simulated log has no tail to tear).
    ///
    /// Errors surface recovery failures: a corrupted record *before* the
    /// tail is a typed [`RainbowError::CorruptLog`], not a panic.
    pub fn power_loss(&self, fault: PowerLossFault) -> RainbowResult<()> {
        self.shared.storage.power_loss(fault);
        self.restart_from_log()
    }

    /// Shared tail of [`SiteHandle::recover_from_crash`] and
    /// [`SiteHandle::power_loss`]: rebuild committed state from the log,
    /// reset concurrency control, and chase in-doubt transactions.
    fn restart_from_log(&self) -> RainbowResult<()> {
        let shared = &self.shared;
        let outcome = shared.storage.recover()?;
        // Fresh CCP: every lock and timestamp table entry was volatile. The
        // replacement gets a recovery floor at the site's current logical
        // time — the clock observed the timestamp of every access granted
        // before the crash, so rejecting everything older conservatively
        // restores the rts/wts rejection surface the crash erased (without
        // it, a recovered site can admit an old write it had already
        // ordered a younger read past — a serializability violation the
        // chaos harness reproduces).
        let ccp = make_ccp(
            shared.stack.ccp,
            shared.stack.deadlock,
            shared.stack.lock_wait_timeout,
        );
        ccp.install_recovery_floor(Timestamp::new(shared.clock.now(), shared.id.0));
        *shared.ccp.write() = ccp;
        shared.participants.lock().clear();
        // Ask each in-doubt transaction's coordinator for the decision.
        let mut in_doubt = shared.in_doubt.lock();
        in_doubt.clear();
        for txn in outcome.in_doubt {
            in_doubt.insert(txn.txn, txn.writes);
            shared.send(
                NodeId::Site(txn.txn.home),
                Msg::AcpStatusQuery { txn: txn.txn },
            );
        }
        Ok(())
    }

    /// Flushes and fsyncs the durable engine: every record appended so far
    /// is on stable storage when this returns. Called by cluster shutdown
    /// so a data directory reopened later finds every committed write.
    pub fn flush_and_sync(&self) -> RainbowResult<()> {
        self.shared.storage.flush_and_sync()
    }

    /// Which storage engine this site runs on.
    pub fn engine_kind(&self) -> rainbow_storage::EngineKind {
        self.shared.storage.engine_kind()
    }

    /// Number of real sync (fsync) operations the site's engine performed.
    pub fn storage_force_count(&self) -> u64 {
        self.shared.storage.force_count()
    }

    /// Installs committed copies fetched from live peers — the catch-up
    /// ("copier") half of crash recovery for read-one replication protocols
    /// (Available Copies, Primary Copy), driven by the cluster. Only copies
    /// newer than the local ones are installed; returns how many were.
    pub fn repair_copies(&self, copies: &[(ItemId, Value, Version)]) -> usize {
        self.shared.storage.repair_copies(copies)
    }

    /// Jumps this site's logical clock `ticks` ahead of its current value —
    /// the nemesis "clock skew" fault. Lamport clocks tolerate arbitrary
    /// forward jumps by construction; the skew stresses timestamp-ordering
    /// CCPs (transactions from the skewed site suddenly carry much larger
    /// timestamps, aborting concurrent old-timestamp transactions).
    pub fn skew_clock(&self, ticks: u64) {
        let clock = &self.shared.clock;
        clock.observe(Timestamp::new(
            clock.now().saturating_add(ticks),
            self.shared.id.0,
        ));
    }

    /// Stops the dispatcher thread. Outstanding transaction workers finish
    /// on their own (bounded by the protocol timeouts).
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.dispatcher.take() {
            let _ = thread.join();
        }
        // Reactor mode: the event loops observe the flag within one tick,
        // fail their in-flight conversations and drain their outboxes.
        if let Some(pool) = self.shared.reactor.get() {
            pool.join();
        }
        // Stop the background compaction thread (a no-op on the memory
        // engine, which never spawns one).
        self.shared.storage.shutdown_compactor();
    }
}

impl Drop for SiteHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatcher_loop(shared: Arc<SiteShared>, mailbox: Receiver<Envelope<Msg>>) {
    let mut last_janitor = Instant::now();
    let janitor_every = Duration::from_millis(200);
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match mailbox.recv_timeout(Duration::from_millis(25)) {
            Ok(envelope) => dispatch(&shared, envelope),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if last_janitor.elapsed() >= janitor_every {
            last_janitor = Instant::now();
            run_janitor(&shared);
        }
    }
}

fn dispatch(shared: &Arc<SiteShared>, envelope: Envelope<Msg>) {
    // Responses go straight to the coordinator waiting for them: the
    // owning reactor in reactor mode, the conversation worker's reply
    // channel otherwise.
    if envelope.payload.is_coordinator_response() {
        if let Some(txn) = envelope.payload.txn() {
            if let Some(pool) = shared.reactor.get() {
                pool.route(txn.seq, ReactorEvent::Deliver(envelope));
                return;
            }
            let pending = shared.pending_replies.lock();
            if let Some(tx) = pending.get(&txn) {
                let _ = tx.send(envelope);
            }
        }
        return;
    }

    match envelope.payload.clone() {
        Msg::TxnBegin { request, label } => {
            SiteMetrics::bump(&shared.metrics.home_transactions);
            let client = envelope.from;
            if let Some(pool) = shared.reactor.get() {
                // Reactor mode: allocate the id here (its sequence number
                // pins the transaction to a reactor) and hand the
                // conversation to the owning event loop.
                let txn = TxnId::new(shared.id, shared.txn_seq.fetch_add(1, Ordering::Relaxed));
                let ts = shared.clock.next();
                pool.route(
                    txn.seq,
                    ReactorEvent::Begin {
                        txn,
                        ts,
                        label,
                        client,
                        request,
                    },
                );
            } else {
                let worker_shared = Arc::clone(shared);
                // "The site dedicates one thread to process it." The thread
                // now drives an interactive conversation instead of a fixed
                // op list.
                let _ = std::thread::Builder::new()
                    .name(format!("rainbow-txn-{}", shared.id.0))
                    .spawn(move || run_interactive(worker_shared, label, client, request));
            }
        }
        Msg::TxnOp { txn, .. } => {
            // Route the client command to the coordinator driving the
            // conversation. When no worker is registered any more (the
            // conversation idled out and was aborted, or the site crashed
            // and recovered), tell the client instead of leaving it to its
            // timeout; the reactor path answers `Gone` itself.
            if let Some(pool) = shared.reactor.get() {
                pool.route(txn.seq, ReactorEvent::Deliver(envelope));
                return;
            }
            let client = envelope.from;
            let routed = {
                let pending = shared.pending_replies.lock();
                match pending.get(&txn) {
                    Some(tx) => tx.send(envelope).is_ok(),
                    None => false,
                }
            };
            if !routed {
                shared.send(
                    client,
                    Msg::TxnOpReply {
                        txn,
                        reply: OpReply::Gone,
                    },
                );
            }
        }
        Msg::CopyRead {
            txn,
            ts,
            item,
            for_update,
        } => {
            SiteMetrics::bump(&shared.metrics.served_requests);
            // Register the participant entry *inline* so a decision that is
            // already queued behind this request finds the entry and cleans
            // it up; the (possibly blocking) lock work happens off-thread.
            shared.ensure_participant(txn, ts, envelope.from);
            let handler_shared = Arc::clone(shared);
            let from = envelope.from;
            // May block on a lock: never handle on the dispatcher thread.
            let _ = std::thread::Builder::new()
                .name("rainbow-copy-read".into())
                .spawn(move || {
                    handle_copy_access(
                        handler_shared,
                        from,
                        txn,
                        ts,
                        item,
                        CopyAccess::Read { for_update },
                    )
                });
        }
        Msg::CopyPrewrite { txn, ts, item } => {
            SiteMetrics::bump(&shared.metrics.served_requests);
            shared.ensure_participant(txn, ts, envelope.from);
            let handler_shared = Arc::clone(shared);
            let from = envelope.from;
            let _ = std::thread::Builder::new()
                .name("rainbow-copy-prewrite".into())
                .spawn(move || {
                    handle_copy_access(handler_shared, from, txn, ts, item, CopyAccess::Prewrite)
                });
        }
        Msg::AcpPrepare { txn, ts, writes } => {
            SiteMetrics::bump(&shared.metrics.served_requests);
            handle_prepare(shared, envelope.from, txn, ts, writes);
        }
        Msg::AcpPreCommit { txn } => {
            handle_precommit(shared, envelope.from, txn);
        }
        Msg::AcpDecision { txn, decision } => {
            handle_decision(shared, envelope.from, txn, decision);
        }
        Msg::AcpStatusQuery { txn } => {
            let decision = shared.decided.lock().get(&txn).copied();
            shared.send(envelope.from, Msg::AcpStatusReply { txn, decision });
        }
        Msg::AcpStatusReply { txn, decision } => {
            handle_status_reply(shared, txn, decision);
        }
        Msg::NsSchema { database, .. } => {
            // A late or refreshed schema push: adopt it.
            *shared.schema.write() = database;
        }
        Msg::Batch(msgs) => {
            // A coalesced envelope from a reactor tick. Prepares and commit
            // decisions are pulled out and handled as groups so their WAL
            // forces ride one fsync each; everything else goes through the
            // normal per-message path (which also routes any coordinator
            // responses the batch carried).
            let mut prepares = Vec::new();
            let mut commits = Vec::new();
            let mut rest = Vec::new();
            for msg in msgs {
                match msg {
                    Msg::AcpPrepare { txn, ts, writes } => prepares.push((txn, ts, writes)),
                    Msg::AcpDecision {
                        txn,
                        decision: Decision::Commit,
                    } => commits.push(txn),
                    other => rest.push(other),
                }
            }
            if !prepares.is_empty() {
                handle_prepare_batch(shared, envelope.from, prepares);
            }
            if !commits.is_empty() {
                handle_decision_commit_batch(shared, envelope.from, commits);
            }
            for msg in rest {
                dispatch(
                    shared,
                    Envelope {
                        id: envelope.id,
                        from: envelope.from,
                        to: envelope.to,
                        payload: msg,
                    },
                );
            }
        }
        // Messages a site never receives (or that only matter to clients /
        // the name server) are ignored.
        Msg::TxnBegan { .. }
        | Msg::TxnOpReply { .. }
        | Msg::TxnDone { .. }
        | Msg::NsGetSchema
        | Msg::CopyReply { .. }
        | Msg::AcpVote { .. }
        | Msg::AcpPreCommitAck { .. }
        | Msg::AcpAck { .. } => {}
    }
}

/// The kind of copy access requested by the RCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyAccess {
    /// A plain read (shared access).
    Read {
        /// Read on behalf of a read-modify-write: take write access first so
        /// no shared→exclusive upgrade is needed later.
        for_update: bool,
    },
    /// A pre-write (exclusive access, returns the version only).
    Prewrite,
}

/// Handles a copy read or pre-write request through the CCP.
fn handle_copy_access(
    shared: Arc<SiteShared>,
    from: NodeId,
    txn: TxnId,
    ts: Timestamp,
    item: ItemId,
    access: CopyAccess,
) {
    shared.clock.observe(ts);
    // Refuse accesses for transactions that already finished at this site
    // (their decision raced ahead of this request); granting would leak a
    // lock nobody releases.
    if shared.finished.lock().contains(&txn) {
        shared.send(
            from,
            Msg::CopyReply {
                txn,
                item: item.clone(),
                prewrite: access == CopyAccess::Prewrite,
                for_update: access == CopyAccess::Read { for_update: true },
                result: CopyAccessResult::Denied(
                    rainbow_common::txn::AbortCause::CcpLockConflict {
                        item: item.clone(),
                        holder: None,
                    },
                ),
            },
        );
        return;
    }
    // Items in an in-doubt transaction's prepared write set are
    // untouchable: the crash destroyed the locks that protected them, the
    // prepared (pre-commit) version is what a read would return, and the
    // outcome is unknown until ACP termination resolves it. Granting any
    // access here lets a reader serialize against state that may be about
    // to change — the write-skew anomaly the chaos lab convicts — so deny
    // and let the client retry after the in-doubt window closes.
    {
        let in_doubt = shared.in_doubt.lock();
        let blocked = in_doubt
            .iter()
            .any(|(holder, writes)| *holder != txn && writes.iter().any(|(i, _, _)| *i == item));
        if blocked {
            shared.send(
                from,
                Msg::CopyReply {
                    txn,
                    item: item.clone(),
                    prewrite: access == CopyAccess::Prewrite,
                    for_update: access == CopyAccess::Read { for_update: true },
                    result: CopyAccessResult::Denied(
                        rainbow_common::txn::AbortCause::CcpLockConflict {
                            item: item.clone(),
                            holder: None,
                        },
                    ),
                },
            );
            return;
        }
    }
    let ctx = shared.ensure_participant(txn, ts, from);
    let is_prewrite_reply = access == CopyAccess::Prewrite;
    let result = match shared.storage.read(&item) {
        Err(_) => CopyAccessResult::NoSuchCopy,
        Ok(current) => {
            let ccp = shared.ccp();
            let lock_start = shared.trace_now();
            let decision = match access {
                CopyAccess::Prewrite => ccp.prewrite(&ctx, &item, current.clone()),
                CopyAccess::Read { for_update: false } => ccp.read(&ctx, &item, current.clone()),
                CopyAccess::Read { for_update: true } => {
                    // Write access first (exclusive lock / pre-write
                    // validation), then the read; this avoids the classic
                    // shared→exclusive upgrade deadlock for read-modify-write
                    // operations.
                    match ccp.prewrite(&ctx, &item, current.clone()) {
                        CcDecision::Granted { .. } => ccp.read(&ctx, &item, current.clone()),
                        rejected => rejected,
                    }
                }
            };
            // The CCP call is where lock waits happen: its latency *is* the
            // lock-acquisition phase, granted or not.
            shared.trace_site_span(
                txn,
                Some(Phase::LockWait),
                if decision.is_granted() {
                    "ccp:grant"
                } else {
                    "ccp:deny"
                },
                lock_start,
                || format!("{item} {access:?}"),
            );
            match decision {
                CcDecision::Granted { value_override } => {
                    // The CCP call may have blocked (2PL lock wait). Two
                    // things follow. First, the transaction may have been
                    // decided (committed or aborted) while we were waiting —
                    // its participant entry is gone and nobody will ever
                    // release what we just acquired, so release it right now
                    // and refuse the access. Second, re-read the committed
                    // state *after* the grant so the value reflects every
                    // transaction serialized before us.
                    let still_active = {
                        let mut participants = shared.participants.lock();
                        match participants.get_mut(&txn) {
                            Some(entry) => {
                                entry.last_activity = Instant::now();
                                true
                            }
                            None => false,
                        }
                    };
                    if !still_active {
                        shared.ccp().abort(&ctx);
                        CopyAccessResult::Denied(rainbow_common::txn::AbortCause::CcpLockConflict {
                            item: item.clone(),
                            holder: None,
                        })
                    } else {
                        let (value, version) = match value_override {
                            Some(pair) => pair,
                            None => shared.storage.read(&item).unwrap_or(current),
                        };
                        CopyAccessResult::Granted {
                            value: if is_prewrite_reply { None } else { Some(value) },
                            version,
                        }
                    }
                }
                CcDecision::Rejected(cause) => {
                    SiteMetrics::bump(&shared.metrics.ccp_rejections);
                    CopyAccessResult::Denied(cause)
                }
            }
        }
    };
    shared.send(
        from,
        Msg::CopyReply {
            txn,
            item,
            prewrite: is_prewrite_reply,
            for_update: access == CopyAccess::Read { for_update: true },
            result,
        },
    );
}

/// Handles the PREPARE request of the commit protocol.
fn handle_prepare(
    shared: &Arc<SiteShared>,
    from: NodeId,
    txn: TxnId,
    ts: Timestamp,
    writes: Vec<(ItemId, Value, Version)>,
) {
    shared.clock.observe(ts);
    let prepare_start = shared.trace_now();
    let ctx = shared.ensure_participant(txn, ts, from);
    let ccp = shared.ccp();
    let can_commit = ccp.validate(&ctx).is_granted();
    if can_commit {
        for (item, value, version) in &writes {
            shared
                .storage
                .stage_write(txn, item.clone(), value.clone(), *version);
        }
        // Force the prepare record before voting YES.
        shared.storage.prepare(txn);
    }

    let action = {
        let mut participants = shared.participants.lock();
        let entry = participants.get_mut(&txn).expect("entry ensured above");
        entry.last_activity = Instant::now();
        entry.machine.on_prepare(can_commit)
    };
    if let ParticipantAction::SendVote(vote) = action {
        if vote == Vote::Yes {
            SiteMetrics::bump(&shared.metrics.votes_yes);
        } else {
            SiteMetrics::bump(&shared.metrics.votes_no);
            // Voting NO releases local resources immediately.
            shared.storage.abort(txn);
            ccp.abort(&ctx);
        }
        shared.trace_site_span(txn, Some(Phase::Prepare), "acp:vote", prepare_start, || {
            format!("{vote:?} ({} writes)", writes.len())
        });
        shared.send(from, Msg::AcpVote { txn, vote });
    }
}

/// Handles a batch of PREPARE requests that arrived in one coalesced
/// envelope: each transaction is validated and staged individually, but the
/// prepare records of every YES-voter are forced with a **single**
/// [`rainbow_storage::SiteStorage::prepare_many`] group append — the
/// group-commit half of the reactor pipeline. Votes travel back to the
/// coordinator node in one batch envelope when there is more than one.
fn handle_prepare_batch(
    shared: &Arc<SiteShared>,
    from: NodeId,
    prepares: Vec<(TxnId, Timestamp, WriteSet)>,
) {
    let prepare_start = shared.trace_now();
    let group = prepares.len();
    // Phase 1: validate through the CCP and stage the writes of every
    // transaction that can commit.
    let mut rounds: Vec<(TxnId, TxnContext, bool, usize)> = Vec::with_capacity(group);
    let mut yes_voters: Vec<TxnId> = Vec::with_capacity(group);
    for (txn, ts, writes) in prepares {
        SiteMetrics::bump(&shared.metrics.served_requests);
        shared.clock.observe(ts);
        let ctx = shared.ensure_participant(txn, ts, from);
        let can_commit = shared.ccp().validate(&ctx).is_granted();
        if can_commit {
            for (item, value, version) in &writes {
                shared
                    .storage
                    .stage_write(txn, item.clone(), value.clone(), *version);
            }
            yes_voters.push(txn);
        }
        rounds.push((txn, ctx, can_commit, writes.len()));
    }
    // Phase 2: one forced append covers every YES-voter's prepare record —
    // still strictly before any YES vote leaves this site.
    shared.storage.prepare_many(&yes_voters);
    // Phase 3: advance the participant machines and vote.
    let mut votes: Vec<Msg> = Vec::with_capacity(group);
    for (txn, ctx, can_commit, n_writes) in rounds {
        let action = {
            let mut participants = shared.participants.lock();
            let entry = participants.get_mut(&txn).expect("entry ensured above");
            entry.last_activity = Instant::now();
            entry.machine.on_prepare(can_commit)
        };
        if let ParticipantAction::SendVote(vote) = action {
            if vote == Vote::Yes {
                SiteMetrics::bump(&shared.metrics.votes_yes);
            } else {
                SiteMetrics::bump(&shared.metrics.votes_no);
                // Voting NO releases local resources immediately.
                shared.storage.abort(txn);
                shared.ccp().abort(&ctx);
            }
            shared.trace_site_span(txn, Some(Phase::Prepare), "acp:vote", prepare_start, || {
                format!("{vote:?} ({n_writes} writes, group of {group})")
            });
            votes.push(Msg::AcpVote { txn, vote });
        }
    }
    match votes.len() {
        0 => {}
        1 => shared.send(from, votes.pop().expect("one vote")),
        _ => shared.send(from, Msg::Batch(votes)),
    }
}

/// Handles a batch of COMMIT decisions from one coalesced envelope: every
/// participant machine advances individually, then all the commit records
/// are forced with a single [`rainbow_storage::SiteStorage::commit_many`]
/// group append and the writes installed under one store lock. Acks travel
/// back in one batch envelope when there is more than one.
fn handle_decision_commit_batch(shared: &Arc<SiteShared>, from: NodeId, txns: Vec<TxnId>) {
    let apply_start = shared.trace_now();
    let group = txns.len();
    let mut to_apply: Vec<(TxnId, TxnContext)> = Vec::with_capacity(group);
    let mut acks: Vec<Msg> = Vec::with_capacity(group);
    for txn in txns {
        shared.finished.lock().insert(txn);
        let entry = shared.participants.lock().remove(&txn);
        if let Some(mut entry) = entry {
            match entry.machine.on_decision(Decision::Commit) {
                ParticipantAction::ApplyAndAck(Decision::Commit) => {
                    to_apply.push((txn, entry.ctx));
                }
                ParticipantAction::ApplyAndAck(Decision::Abort) => {
                    apply_decision(shared, &entry.ctx, Decision::Abort);
                }
                _ => {}
            }
        }
        // Ack even without a participant entry (already applied, cleaned
        // up, or crashed and recovered), exactly like the single path.
        acks.push(Msg::AcpAck { txn });
    }
    let apply_ids: Vec<TxnId> = to_apply.iter().map(|(txn, _)| *txn).collect();
    let write_sets = shared.storage.commit_many(&apply_ids);
    let ccp = shared.ccp();
    for ((txn, ctx), writes) in to_apply.iter().zip(write_sets.iter()) {
        ccp.commit(ctx, writes);
        shared.trace_site_span(
            *txn,
            Some(Phase::CommitApply),
            "apply:commit",
            apply_start,
            || format!("{} writes installed (group of {group})", writes.len()),
        );
    }
    match acks.len() {
        0 => {}
        1 => shared.send(from, acks.pop().expect("one ack")),
        _ => shared.send(from, Msg::Batch(acks)),
    }
}

/// Handles the 3PC PRE-COMMIT message.
fn handle_precommit(shared: &Arc<SiteShared>, from: NodeId, txn: TxnId) {
    let action = {
        let mut participants = shared.participants.lock();
        match participants.get_mut(&txn) {
            Some(entry) => {
                entry.last_activity = Instant::now();
                entry.machine.on_precommit()
            }
            None => ParticipantAction::Wait,
        }
    };
    if action == ParticipantAction::SendPreCommitAck {
        shared.send(from, Msg::AcpPreCommitAck { txn });
    }
}

/// Handles the coordinator's decision.
fn handle_decision(shared: &Arc<SiteShared>, from: NodeId, txn: TxnId, decision: Decision) {
    shared.finished.lock().insert(txn);
    let entry = shared.participants.lock().remove(&txn);
    match entry {
        Some(mut entry) => {
            let action = entry.machine.on_decision(decision);
            if let ParticipantAction::ApplyAndAck(applied) = action {
                apply_decision(shared, &entry.ctx, applied);
            }
            shared.send(from, Msg::AcpAck { txn });
        }
        None => {
            // We have no record (already applied, cleaned up, or we crashed
            // and recovered): acknowledge so the coordinator can finish.
            shared.send(from, Msg::AcpAck { txn });
        }
    }
}

/// Handles the reply to a status query sent for an in-doubt transaction (or
/// by a blocked participant).
fn handle_status_reply(shared: &Arc<SiteShared>, txn: TxnId, decision: Option<Decision>) {
    // Presumed abort: no decision on record means abort.
    let decision = decision.unwrap_or(Decision::Abort);

    // Case 1: an in-doubt transaction from crash recovery.
    if let Some(writes) = shared.in_doubt.lock().remove(&txn) {
        match decision {
            Decision::Commit => shared.storage.commit_writes(txn, writes),
            Decision::Abort => shared.storage.abort(txn),
        }
        return;
    }

    // Case 2: a blocked (prepared) participant resolving via its coordinator.
    let entry = shared.participants.lock().remove(&txn);
    if let Some(mut entry) = entry {
        shared.finished.lock().insert(txn);
        if let ParticipantAction::ApplyAndAck(applied) = entry.machine.on_decision(decision) {
            apply_decision(shared, &entry.ctx, applied);
        }
    }
}

/// Applies a commit/abort decision to storage and the CCP.
fn apply_decision(shared: &Arc<SiteShared>, ctx: &TxnContext, decision: Decision) {
    let apply_start = shared.trace_now();
    let ccp = shared.ccp();
    match decision {
        Decision::Commit => {
            let writes = shared.storage.commit(ctx.id);
            ccp.commit(ctx, &writes);
            shared.trace_site_span(
                ctx.id,
                Some(Phase::CommitApply),
                "apply:commit",
                apply_start,
                || format!("{} writes installed", writes.len()),
            );
        }
        Decision::Abort => {
            shared.storage.abort(ctx.id);
            ccp.abort(ctx);
            shared.trace_site_span(ctx.id, None, "apply:abort", apply_start, String::new);
        }
    }
}

/// Cleans up transactions whose coordinator never came back, so their locks
/// do not wedge the site forever. Prepared participants ask the coordinator
/// for the decision (cooperative termination); working participants are
/// aborted unilaterally.
fn run_janitor(shared: &Arc<SiteShared>) {
    let horizon = shared.stack.janitor_horizon();
    let now = Instant::now();
    let mut stale_working: Vec<(TxnId, TxnContext)> = Vec::new();
    let mut stale_prepared: Vec<(TxnId, NodeId)> = Vec::new();
    {
        let mut participants = shared.participants.lock();
        participants.retain(|txn, entry| {
            if now.duration_since(entry.last_activity) < horizon {
                return true;
            }
            match entry.machine.state() {
                ParticipantState::Working => {
                    stale_working.push((*txn, entry.ctx));
                    false
                }
                ParticipantState::Prepared | ParticipantState::PreCommitted => {
                    // Keep the entry (still blocked / uncertain) but ask the
                    // coordinator what happened; refresh the activity stamp so
                    // we do not spam queries every janitor pass.
                    stale_prepared.push((*txn, entry.coordinator));
                    entry.last_activity = Instant::now();
                    true
                }
                ParticipantState::Committed | ParticipantState::Aborted => false,
            }
        });
    }
    for (txn, ctx) in stale_working {
        SiteMetrics::bump(&shared.metrics.janitor_cleanups);
        shared.finished.lock().insert(txn);
        apply_decision(shared, &ctx, Decision::Abort);
    }
    for (txn, coordinator) in stale_prepared {
        shared.send(coordinator, Msg::AcpStatusQuery { txn });
    }
    // In-doubt transactions found during crash recovery keep asking their
    // coordinator until an answer arrives. The initial query (sent inside
    // `recover_from_crash`) is dropped whenever the fault controller still
    // marks this site crashed — the normal recovery order — so without this
    // retry an in-doubt commit could stay uninstalled forever.
    let in_doubt: Vec<TxnId> = shared.in_doubt.lock().keys().copied().collect();
    for txn in in_doubt {
        shared.send(NodeId::Site(txn.home), Msg::AcpStatusQuery { txn });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_net::{NetworkConfig, SimNetwork};

    fn build_site(
        net: &SimNetwork<Msg>,
        id: u32,
        schema: &DatabaseSchema,
        stack: ProtocolStack,
    ) -> SiteHandle {
        let mailbox = net.register(NodeId::site(id));
        SiteHandle::spawn_with_schema(
            SiteId(id),
            stack,
            &StorageConfig::memory(),
            schema.clone(),
            net.handle(),
            mailbox,
            Arc::new(SiteMetrics::new()),
            None,
            None,
        )
        .expect("spawn site")
    }

    fn quick_stack() -> ProtocolStack {
        ProtocolStack::default()
            .with_lock_wait_timeout(Duration::from_millis(100))
            .with_commit_timeout(Duration::from_millis(300))
            .with_quorum_timeout(Duration::from_millis(300))
    }

    fn schema_for(sites: &[SiteId]) -> DatabaseSchema {
        DatabaseSchema::uniform(4, 100, sites, sites.len()).unwrap()
    }

    #[test]
    fn site_initializes_only_its_own_copies() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let sites: Vec<SiteId> = vec![SiteId(0), SiteId(1)];
        // Items replicated only on site 0.
        let mut schema = DatabaseSchema::new();
        schema.declare(
            "only-on-0",
            1i64,
            rainbow_common::config::ItemPlacement::majority(vec![SiteId(0)]),
        );
        schema.declare(
            "everywhere",
            2i64,
            rainbow_common::config::ItemPlacement::majority(sites.clone()),
        );
        let s0 = build_site(&net, 0, &schema, quick_stack());
        let s1 = build_site(&net, 1, &schema, quick_stack());
        assert_eq!(s0.database_snapshot().len(), 2);
        assert_eq!(s1.database_snapshot().len(), 1);
        assert_eq!(s0.id(), SiteId(0));
        assert_eq!(s1.active_transactions(), 0);
    }

    #[test]
    fn copy_read_request_is_served_through_ccp() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let sites = vec![SiteId(0)];
        let schema = schema_for(&sites);
        let _site = build_site(&net, 0, &schema, quick_stack());

        let client = NodeId::Client(0);
        let client_mailbox = net.register(client);
        let txn = TxnId::new(SiteId(9), 1);
        net.handle()
            .send(
                client,
                NodeId::site(0),
                Msg::CopyRead {
                    txn,
                    ts: Timestamp::new(1, 9),
                    item: ItemId::new("x0"),
                    for_update: false,
                },
            )
            .unwrap();
        let reply = client_mailbox
            .recv_timeout(Duration::from_millis(1000))
            .expect("no copy reply");
        match reply.payload {
            Msg::CopyReply {
                txn: t,
                prewrite,
                result: CopyAccessResult::Granted { value, version },
                ..
            } => {
                assert_eq!(t, txn);
                assert!(!prewrite);
                assert_eq!(value, Some(Value::Int(100)));
                assert_eq!(version, Version(0));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn copy_access_to_unknown_item_reports_no_such_copy() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let sites = vec![SiteId(0)];
        let schema = schema_for(&sites);
        let _site = build_site(&net, 0, &schema, quick_stack());
        let client = NodeId::Client(0);
        let client_mailbox = net.register(client);
        net.handle()
            .send(
                client,
                NodeId::site(0),
                Msg::CopyPrewrite {
                    txn: TxnId::new(SiteId(9), 1),
                    ts: Timestamp::new(1, 9),
                    item: ItemId::new("missing"),
                },
            )
            .unwrap();
        let reply = client_mailbox
            .recv_timeout(Duration::from_millis(1000))
            .expect("no reply");
        assert!(matches!(
            reply.payload,
            Msg::CopyReply {
                result: CopyAccessResult::NoSuchCopy,
                prewrite: true,
                ..
            }
        ));
    }

    #[test]
    fn prepare_and_commit_install_writes() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let sites = vec![SiteId(0)];
        let schema = schema_for(&sites);
        let site = build_site(&net, 0, &schema, quick_stack());
        let client = NodeId::Client(0);
        let client_mailbox = net.register(client);
        let txn = TxnId::new(SiteId(9), 1);
        let ts = Timestamp::new(5, 9);

        // Pre-write through the CCP first (as the RCP would).
        net.handle()
            .send(
                client,
                NodeId::site(0),
                Msg::CopyPrewrite {
                    txn,
                    ts,
                    item: ItemId::new("x1"),
                },
            )
            .unwrap();
        let _ = client_mailbox
            .recv_timeout(Duration::from_millis(1000))
            .unwrap();

        // Prepare with the write payload.
        net.handle()
            .send(
                client,
                NodeId::site(0),
                Msg::AcpPrepare {
                    txn,
                    ts,
                    writes: vec![(ItemId::new("x1"), Value::Int(777), Version(1))],
                },
            )
            .unwrap();
        let vote = client_mailbox
            .recv_timeout(Duration::from_millis(1000))
            .unwrap();
        assert!(matches!(
            vote.payload,
            Msg::AcpVote {
                vote: Vote::Yes,
                ..
            }
        ));

        // Decide commit.
        net.handle()
            .send(
                client,
                NodeId::site(0),
                Msg::AcpDecision {
                    txn,
                    decision: Decision::Commit,
                },
            )
            .unwrap();
        let ack = client_mailbox
            .recv_timeout(Duration::from_millis(1000))
            .unwrap();
        assert!(matches!(ack.payload, Msg::AcpAck { .. }));

        let snapshot = site.database_snapshot();
        assert!(snapshot.contains(&(ItemId::new("x1"), Value::Int(777), Version(1))));
        assert_eq!(site.active_transactions(), 0, "locks must be released");
    }

    #[test]
    fn decision_for_unknown_transaction_is_acked_idempotently() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let sites = vec![SiteId(0)];
        let schema = schema_for(&sites);
        let _site = build_site(&net, 0, &schema, quick_stack());
        let client = NodeId::Client(0);
        let client_mailbox = net.register(client);
        net.handle()
            .send(
                client,
                NodeId::site(0),
                Msg::AcpDecision {
                    txn: TxnId::new(SiteId(9), 42),
                    decision: Decision::Abort,
                },
            )
            .unwrap();
        let ack = client_mailbox
            .recv_timeout(Duration::from_millis(1000))
            .unwrap();
        assert!(matches!(ack.payload, Msg::AcpAck { .. }));
    }

    #[test]
    fn status_query_answers_from_the_decision_log() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let sites = vec![SiteId(0)];
        let schema = schema_for(&sites);
        let site = build_site(&net, 0, &schema, quick_stack());
        let txn = TxnId::new(SiteId(0), 7);
        site.shared.decided.lock().insert(txn, Decision::Commit);

        let client = NodeId::Client(0);
        let client_mailbox = net.register(client);
        net.handle()
            .send(client, NodeId::site(0), Msg::AcpStatusQuery { txn })
            .unwrap();
        let reply = client_mailbox
            .recv_timeout(Duration::from_millis(1000))
            .unwrap();
        assert!(matches!(
            reply.payload,
            Msg::AcpStatusReply {
                decision: Some(Decision::Commit),
                ..
            }
        ));

        // Unknown transaction: presumed abort (no decision on record).
        net.handle()
            .send(
                client,
                NodeId::site(0),
                Msg::AcpStatusQuery {
                    txn: TxnId::new(SiteId(0), 999),
                },
            )
            .unwrap();
        let reply = client_mailbox
            .recv_timeout(Duration::from_millis(1000))
            .unwrap();
        assert!(matches!(
            reply.payload,
            Msg::AcpStatusReply { decision: None, .. }
        ));
    }

    #[test]
    fn crash_recovery_restores_committed_state_and_resets_ccp() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let sites = vec![SiteId(0)];
        let schema = schema_for(&sites);
        let site = build_site(&net, 0, &schema, quick_stack());
        // Commit a write directly through storage (simulating a completed
        // transaction), then crash and recover.
        let txn = TxnId::new(SiteId(0), 1);
        site.shared
            .storage
            .stage_write(txn, ItemId::new("x0"), Value::Int(5), Version(1));
        site.shared.storage.prepare(txn);
        site.shared.storage.commit(txn);

        site.recover_from_crash().unwrap();
        let snapshot = site.database_snapshot();
        assert!(snapshot.contains(&(ItemId::new("x0"), Value::Int(5), Version(1))));
        assert_eq!(site.active_transactions(), 0);
    }
}
