//! The Rainbow name server.
//!
//! "The name server stores metadata of all Rainbow sites, such as the id and
//! end point specifications. Also maintained in the name server are the
//! database fragmentation, replication and distribution schema. Any site can
//! query the name server to get pertinent information." (Section 2)
//!
//! There is exactly one name server per Rainbow instance. It runs as its own
//! node on the simulated network and answers [`Msg::NsGetSchema`] requests
//! with the full schema, so sites (and clients that want to inspect the
//! configuration) obtain their metadata through counted messages rather than
//! shared memory.

use crate::messages::Msg;
use crossbeam_channel::{Receiver, RecvTimeoutError};
use rainbow_common::config::{DatabaseSchema, DistributionSchema};
use rainbow_net::{Envelope, NetHandle, NodeId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running name server.
pub struct NameServer {
    shutdown: Arc<AtomicBool>,
    lookups: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
    database: DatabaseSchema,
    distribution: DistributionSchema,
}

impl NameServer {
    /// Spawns the name server thread, serving the given schemas on the
    /// [`NodeId::NameServer`] mailbox.
    pub fn spawn(
        net: NetHandle<Msg>,
        mailbox: Receiver<Envelope<Msg>>,
        database: DatabaseSchema,
        distribution: DistributionSchema,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let lookups = Arc::new(AtomicU64::new(0));
        let thread_shutdown = Arc::clone(&shutdown);
        let thread_lookups = Arc::clone(&lookups);
        let db = database.clone();
        let dist = distribution.clone();
        let thread = std::thread::Builder::new()
            .name("rainbow-nameserver".into())
            .spawn(move || run_name_server(net, mailbox, db, dist, thread_shutdown, thread_lookups))
            .expect("failed to spawn name server thread");
        NameServer {
            shutdown,
            lookups,
            thread: Some(thread),
            database,
            distribution,
        }
    }

    /// The database schema served by this name server.
    pub fn database(&self) -> &DatabaseSchema {
        &self.database
    }

    /// The distribution schema served by this name server.
    pub fn distribution(&self) -> &DistributionSchema {
        &self.distribution
    }

    /// Number of schema lookups answered so far.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Stops the name server thread.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for NameServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_name_server(
    net: NetHandle<Msg>,
    mailbox: Receiver<Envelope<Msg>>,
    database: DatabaseSchema,
    distribution: DistributionSchema,
    shutdown: Arc<AtomicBool>,
    lookups: Arc<AtomicU64>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match mailbox.recv_timeout(Duration::from_millis(25)) {
            Ok(envelope) => {
                if let Msg::NsGetSchema = envelope.payload {
                    lookups.fetch_add(1, Ordering::Relaxed);
                    let reply = Msg::NsSchema {
                        database: database.clone(),
                        distribution: distribution.clone(),
                    };
                    let _ = net.send(NodeId::NameServer, envelope.from, reply);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;
    use rainbow_net::{NetworkConfig, SimNetwork};

    fn schemas() -> (DatabaseSchema, DistributionSchema) {
        let dist = DistributionSchema::one_site_per_host(3);
        let db = DatabaseSchema::uniform(4, 0, &dist.site_ids(), 2).unwrap();
        (db, dist)
    }

    #[test]
    fn name_server_answers_schema_lookups() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let ns_mailbox = net.register(NodeId::NameServer);
        let (db, dist) = schemas();
        let ns = NameServer::spawn(net.handle(), ns_mailbox, db.clone(), dist.clone());

        let client = NodeId::Client(0);
        let client_mailbox = net.register(client);
        net.handle()
            .send(client, NodeId::NameServer, Msg::NsGetSchema)
            .unwrap();
        let reply = client_mailbox
            .recv_timeout(Duration::from_millis(500))
            .expect("no schema reply");
        match reply.payload {
            Msg::NsSchema {
                database,
                distribution,
            } => {
                assert_eq!(database, db);
                assert_eq!(distribution, dist);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(ns.lookups(), 1);
        assert_eq!(ns.database().len(), 4);
        assert_eq!(ns.distribution().len(), 3);
    }

    #[test]
    fn name_server_ignores_unrelated_messages() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let ns_mailbox = net.register(NodeId::NameServer);
        let (db, dist) = schemas();
        let ns = NameServer::spawn(net.handle(), ns_mailbox, db, dist);

        let client = NodeId::Client(0);
        let client_mailbox = net.register(client);
        net.handle()
            .send(
                client,
                NodeId::NameServer,
                Msg::AcpAck {
                    txn: rainbow_common::TxnId::new(SiteId(0), 1),
                },
            )
            .unwrap();
        assert!(client_mailbox
            .recv_timeout(Duration::from_millis(100))
            .is_err());
        assert_eq!(ns.lookups(), 0);
    }

    #[test]
    fn shutdown_stops_the_thread() {
        let net = SimNetwork::<Msg>::new(NetworkConfig::perfect());
        let ns_mailbox = net.register(NodeId::NameServer);
        let (db, dist) = schemas();
        let mut ns = NameServer::spawn(net.handle(), ns_mailbox, db, dist);
        ns.shutdown();
        // Second shutdown is a no-op.
        ns.shutdown();
    }
}
