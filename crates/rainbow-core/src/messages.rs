//! The message set of the Rainbow core.
//!
//! Every interaction between clients, the name server and Rainbow sites is a
//! [`Msg`] travelling through the `rainbow-net` simulator, so the paper's
//! "total number of messages generated per time unit" statistic and the
//! quorum message-traffic experiment count exactly what the protocols
//! exchange.

use rainbow_commit::{Decision, Vote};
use rainbow_common::config::{DatabaseSchema, DistributionSchema};
use rainbow_common::txn::{AbortCause, TxnResult};
use rainbow_common::{ItemId, Timestamp, TxnId, Value, Version};
use rainbow_net::NetMessage;

/// Result of a copy access at a holder site: either the copy's
/// `(value, version)` (value is `None` for pre-writes) or the abort cause
/// produced by the holder's CCP.
#[derive(Debug, Clone)]
pub enum CopyAccessResult {
    /// Access granted.
    Granted {
        /// The copy's value; `None` for pre-write (version-only) accesses.
        value: Option<Value>,
        /// The copy's current version number.
        version: Version,
    },
    /// Access denied by the holder's concurrency control.
    Denied(AbortCause),
    /// The item is not stored at the contacted site (configuration error or
    /// stale schema).
    NoSuchCopy,
}

/// One step of an interactive transaction conversation, sent by a client
/// handle (`Txn`) to the coordinator worker driving the transaction at its
/// home site. The coordinator is an op-driven state machine: it learns the
/// transaction one command at a time instead of receiving a pre-declared
/// operation list.
#[derive(Debug, Clone)]
pub enum NextOp {
    /// Run the read quorum for `item` *now* and return the observed value
    /// to the client mid-transaction.
    Read {
        /// The item to read.
        item: ItemId,
    },
    /// Run the read quorums of several items as one batch (parallel fan-out
    /// when enabled) and return every observed value. The multi-get of the
    /// interactive API; also how the spec adapter replays consecutive
    /// reads without giving up the fan-out optimization.
    ReadMany {
        /// The items to read, in reply order.
        items: Vec<ItemId>,
    },
    /// Buffer a write. Its write quorum runs when the transaction commits;
    /// the value is installed through the ACP as always.
    BufferWrite {
        /// The item to write.
        item: ItemId,
        /// The value to install at commit.
        value: Value,
    },
    /// Read-modify-write: assemble a write quorum whose accesses return the
    /// current value (read-for-update), buffer `current + delta`, and return
    /// the observed pre-increment value.
    Increment {
        /// The item to increment.
        item: ItemId,
        /// The (possibly negative) delta.
        delta: i64,
    },
    /// Install the buffered writes through their write quorums, then run
    /// the atomic commit protocol. Ends the conversation.
    Commit,
    /// Abort: release every CCP resource the conversation acquired. Ends
    /// the conversation.
    Abort,
}

/// Reply to a [`NextOp`] that did *not* end the conversation (terminal
/// commands and op failures are answered with [`Msg::TxnDone`] instead).
#[derive(Debug, Clone)]
pub enum OpReply {
    /// Value observed by a read or read-modify-write operation.
    Value {
        /// The item that was read.
        item: ItemId,
        /// Its observed (highest-versioned in-quorum) value.
        value: Value,
    },
    /// Values observed by a [`NextOp::ReadMany`] batch, in request order.
    Values {
        /// The observed `(item, value)` pairs.
        values: Vec<(ItemId, Value)>,
    },
    /// The write was buffered; its quorum runs at commit.
    Buffered,
    /// No coordinator is driving this transaction any more (the
    /// conversation idled past the coordinator's horizon, or the home site
    /// lost its volatile state in a crash).
    Gone,
}

/// The Rainbow protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    // ------------------------------------------------------------------
    // Client ↔ site: the interactive transaction conversation (the WLGlet /
    // manual-panel paths of the middle tier). One-shot `TxnSpec` submission
    // is a client-side adapter replaying the spec through this same
    // conversation, so there is exactly one execution path.
    // ------------------------------------------------------------------
    /// A client opens an interactive transaction at its home site.
    TxnBegin {
        /// Client-chosen request id, echoed back in [`Msg::TxnBegan`] and
        /// [`Msg::TxnDone`].
        request: u64,
        /// Human-readable label used in reports.
        label: String,
    },
    /// The home site acknowledges an open transaction and names it.
    TxnBegan {
        /// The client request id from [`Msg::TxnBegin`].
        request: u64,
        /// The transaction id the home site assigned.
        txn: TxnId,
    },
    /// The client's next command for an open transaction.
    TxnOp {
        /// The transaction (from [`Msg::TxnBegan`]).
        txn: TxnId,
        /// The command.
        op: NextOp,
    },
    /// The coordinator's answer to a non-terminal [`Msg::TxnOp`].
    TxnOpReply {
        /// The transaction.
        txn: TxnId,
        /// The outcome of the command.
        reply: OpReply,
    },
    /// A site reports the final result of a transaction back to the client
    /// that drove it (after commit, abort, or a failed operation).
    TxnDone {
        /// The client request id from [`Msg::TxnBegin`].
        request: u64,
        /// The result.
        result: TxnResult,
    },

    // ------------------------------------------------------------------
    // Name server
    // ------------------------------------------------------------------
    /// A site (or client) asks the name server for the schemas.
    NsGetSchema,
    /// The name server's reply.
    NsSchema {
        /// The database + replication schema.
        database: DatabaseSchema,
        /// The site/host distribution schema.
        distribution: DistributionSchema,
    },

    // ------------------------------------------------------------------
    // Replication control: copy accesses (executed through the CCP at the
    // holder site)
    // ------------------------------------------------------------------
    /// Read one copy of an item.
    CopyRead {
        /// The requesting transaction.
        txn: TxnId,
        /// Its timestamp.
        ts: Timestamp,
        /// The item.
        item: ItemId,
        /// When true the read is on behalf of a read-modify-write operation:
        /// the holder acquires *write* access (exclusive lock / pre-write
        /// validation) before returning the value, so the transaction never
        /// needs a shared→exclusive upgrade later.
        for_update: bool,
    },
    /// Pre-write one copy of an item (returns its current version).
    CopyPrewrite {
        /// The requesting transaction.
        txn: TxnId,
        /// Its timestamp.
        ts: Timestamp,
        /// The item.
        item: ItemId,
    },
    /// Reply to [`Msg::CopyRead`] / [`Msg::CopyPrewrite`].
    CopyReply {
        /// The transaction the reply belongs to.
        txn: TxnId,
        /// The item.
        item: ItemId,
        /// Whether the reply answers a pre-write (true) or a read (false).
        prewrite: bool,
        /// Whether the reply answers a read-for-update access. Together
        /// with `prewrite` this identifies the access kind exactly, so the
        /// coordinator can route concurrent quorums over the same item
        /// without cross-attributing a read's grant to a read-for-update's
        /// denial (or vice versa).
        for_update: bool,
        /// The outcome.
        result: CopyAccessResult,
    },

    // ------------------------------------------------------------------
    // Atomic commitment
    // ------------------------------------------------------------------
    /// 2PC PREPARE / 3PC CAN-COMMIT, carrying the writes this participant
    /// must install if the decision is commit.
    AcpPrepare {
        /// The transaction.
        txn: TxnId,
        /// Its timestamp.
        ts: Timestamp,
        /// Writes destined for this participant.
        writes: Vec<(ItemId, Value, Version)>,
    },
    /// A participant's vote.
    AcpVote {
        /// The transaction.
        txn: TxnId,
        /// The vote.
        vote: Vote,
    },
    /// 3PC PRE-COMMIT.
    AcpPreCommit {
        /// The transaction.
        txn: TxnId,
    },
    /// 3PC PRE-COMMIT acknowledgement.
    AcpPreCommitAck {
        /// The transaction.
        txn: TxnId,
    },
    /// The coordinator's decision.
    AcpDecision {
        /// The transaction.
        txn: TxnId,
        /// Commit or abort.
        decision: Decision,
    },
    /// A participant's acknowledgement of the decision.
    AcpAck {
        /// The transaction.
        txn: TxnId,
    },
    /// A recovering / blocked participant asks a coordinator (or peer) for
    /// the fate of a transaction.
    AcpStatusQuery {
        /// The transaction.
        txn: TxnId,
    },
    /// Answer to a status query. `None` means the queried site has no record
    /// of a decision (presumed abort applies at the coordinator).
    AcpStatusReply {
        /// The transaction.
        txn: TxnId,
        /// The decision, if known.
        decision: Option<Decision>,
    },

    // ------------------------------------------------------------------
    // Batching
    // ------------------------------------------------------------------
    /// Several protocol messages for the same destination coalesced into
    /// one envelope. The reactor coordinator flushes its per-tick outbox
    /// this way (and a site answers a batch of prepares with a batch of
    /// votes), so N messages to one site pay one trip through the network
    /// simulator instead of N. The receiving dispatcher unpacks the batch
    /// and handles each message exactly as if it had arrived alone;
    /// message-count statistics still count the logical messages.
    Batch(Vec<Msg>),
}

impl Msg {
    /// The transaction a message refers to, for response routing.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            Msg::TxnBegan { txn, .. }
            | Msg::TxnOp { txn, .. }
            | Msg::TxnOpReply { txn, .. }
            | Msg::CopyRead { txn, .. }
            | Msg::CopyPrewrite { txn, .. }
            | Msg::CopyReply { txn, .. }
            | Msg::AcpPrepare { txn, .. }
            | Msg::AcpVote { txn, .. }
            | Msg::AcpPreCommit { txn }
            | Msg::AcpPreCommitAck { txn }
            | Msg::AcpDecision { txn, .. }
            | Msg::AcpAck { txn }
            | Msg::AcpStatusQuery { txn }
            | Msg::AcpStatusReply { txn, .. } => Some(*txn),
            _ => None,
        }
    }

    /// True for messages that are *responses* routed back to a waiting
    /// transaction coordinator. ([`Msg::AcpStatusReply`] is not included:
    /// status replies answer a *participant* that is blocked or recovering,
    /// and are handled by the site dispatcher itself.)
    pub fn is_coordinator_response(&self) -> bool {
        matches!(
            self,
            Msg::CopyReply { .. }
                | Msg::AcpVote { .. }
                | Msg::AcpPreCommitAck { .. }
                | Msg::AcpAck { .. }
        )
    }
}

impl NetMessage for Msg {
    fn kind(&self) -> &'static str {
        match self {
            Msg::TxnBegin { .. } => "TXN_BEGIN",
            Msg::TxnBegan { .. } => "TXN_BEGAN",
            Msg::TxnOp { .. } => "TXN_OP",
            Msg::TxnOpReply { .. } => "TXN_OP_REPLY",
            Msg::TxnDone { .. } => "TXN_DONE",
            Msg::NsGetSchema => "NS_GET_SCHEMA",
            Msg::NsSchema { .. } => "NS_SCHEMA",
            Msg::CopyRead { .. } => "RCP_READ",
            Msg::CopyPrewrite { .. } => "RCP_PREWRITE",
            Msg::CopyReply { .. } => "RCP_REPLY",
            Msg::AcpPrepare { .. } => "ACP_PREPARE",
            Msg::AcpVote { .. } => "ACP_VOTE",
            Msg::AcpPreCommit { .. } => "ACP_PRECOMMIT",
            Msg::AcpPreCommitAck { .. } => "ACP_PRECOMMIT_ACK",
            Msg::AcpDecision { .. } => "ACP_DECISION",
            Msg::AcpAck { .. } => "ACP_ACK",
            Msg::AcpStatusQuery { .. } => "ACP_STATUS_QUERY",
            Msg::AcpStatusReply { .. } => "ACP_STATUS_REPLY",
            Msg::Batch(..) => "BATCH",
        }
    }

    fn size_hint(&self) -> usize {
        // A rough wire-size model: fixed header plus payload-dependent parts.
        const HEADER: usize = 48;
        match self {
            Msg::TxnBegin { label, .. } => HEADER + label.len(),
            Msg::TxnOp { op, .. } => {
                HEADER
                    + match op {
                        NextOp::Read { item } | NextOp::Increment { item, .. } => {
                            item.name().len() + 8
                        }
                        NextOp::ReadMany { items } => {
                            items.iter().map(|item| item.name().len() + 8).sum()
                        }
                        NextOp::BufferWrite { item, value } => {
                            item.name().len() + value.payload_size()
                        }
                        NextOp::Commit | NextOp::Abort => 0,
                    }
            }
            Msg::TxnOpReply { reply, .. } => {
                HEADER
                    + match reply {
                        OpReply::Value { item, value } => item.name().len() + value.payload_size(),
                        OpReply::Values { values } => values
                            .iter()
                            .map(|(item, value)| item.name().len() + value.payload_size())
                            .sum(),
                        OpReply::Buffered | OpReply::Gone => 8,
                    }
            }
            Msg::TxnDone { result, .. } => HEADER + 64 + result.reads.len() * 24,
            Msg::NsGetSchema => HEADER,
            Msg::NsSchema { database, .. } => HEADER + database.items.len() * 48,
            Msg::CopyRead { item, .. } | Msg::CopyPrewrite { item, .. } => {
                HEADER + item.name().len()
            }
            Msg::CopyReply { item, result, .. } => {
                let payload = match result {
                    CopyAccessResult::Granted { value, .. } => {
                        value.as_ref().map(|v| v.payload_size()).unwrap_or(0) + 8
                    }
                    _ => 16,
                };
                HEADER + item.name().len() + payload
            }
            Msg::AcpPrepare { writes, .. } => {
                HEADER
                    + writes
                        .iter()
                        .map(|(item, value, _)| item.name().len() + value.payload_size() + 8)
                        .sum::<usize>()
            }
            // One envelope header plus every coalesced message's own size:
            // batching saves trips, not bytes.
            Msg::Batch(msgs) => HEADER + msgs.iter().map(Msg::size_hint).sum::<usize>(),
            _ => HEADER,
        }
    }

    fn txn(&self) -> Option<TxnId> {
        // Delegates to the inherent method so the network tracer attributes
        // queue-delay spans to the right transaction.
        Msg::txn(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    fn txn() -> TxnId {
        TxnId::new(SiteId(1), 4)
    }

    #[test]
    fn txn_extraction_covers_protocol_messages() {
        assert_eq!(
            Msg::CopyRead {
                txn: txn(),
                ts: Timestamp::new(1, 1),
                item: ItemId::new("x"),
                for_update: false,
            }
            .txn(),
            Some(txn())
        );
        assert_eq!(Msg::AcpAck { txn: txn() }.txn(), Some(txn()));
        assert_eq!(
            Msg::TxnOp {
                txn: txn(),
                op: NextOp::Commit,
            }
            .txn(),
            Some(txn())
        );
        assert_eq!(
            Msg::TxnOpReply {
                txn: txn(),
                reply: OpReply::Buffered,
            }
            .txn(),
            Some(txn())
        );
        assert_eq!(Msg::NsGetSchema.txn(), None);
        assert_eq!(
            Msg::TxnBegin {
                request: 1,
                label: "t".into(),
            }
            .txn(),
            None
        );
    }

    #[test]
    fn coordinator_response_classification() {
        assert!(Msg::AcpVote {
            txn: txn(),
            vote: Vote::Yes
        }
        .is_coordinator_response());
        assert!(Msg::CopyReply {
            txn: txn(),
            item: ItemId::new("x"),
            prewrite: false,
            for_update: false,
            result: CopyAccessResult::NoSuchCopy,
        }
        .is_coordinator_response());
        assert!(!Msg::AcpPrepare {
            txn: txn(),
            ts: Timestamp::ZERO,
            writes: vec![],
        }
        .is_coordinator_response());
        assert!(!Msg::NsGetSchema.is_coordinator_response());
        assert!(!Msg::AcpStatusReply {
            txn: txn(),
            decision: None,
        }
        .is_coordinator_response());
    }

    #[test]
    fn conversation_ops_are_not_coordinator_responses() {
        // Client commands are routed to the worker explicitly by the site
        // dispatcher, not through the coordinator-response fast path, and
        // client-bound replies are never routed by a site at all.
        assert!(!Msg::TxnOp {
            txn: txn(),
            op: NextOp::Read {
                item: ItemId::new("x"),
            },
        }
        .is_coordinator_response());
        assert!(!Msg::TxnOpReply {
            txn: txn(),
            reply: OpReply::Gone,
        }
        .is_coordinator_response());
        assert!(!Msg::TxnBegan {
            request: 1,
            txn: txn(),
        }
        .is_coordinator_response());
    }

    #[test]
    fn kinds_are_distinct_for_the_traffic_experiments() {
        let kinds = [
            Msg::NsGetSchema.kind(),
            Msg::TxnBegin {
                request: 1,
                label: "t".into(),
            }
            .kind(),
            Msg::TxnOp {
                txn: txn(),
                op: NextOp::Abort,
            }
            .kind(),
            Msg::TxnOpReply {
                txn: txn(),
                reply: OpReply::Buffered,
            }
            .kind(),
            Msg::CopyRead {
                txn: txn(),
                ts: Timestamp::ZERO,
                item: ItemId::new("x"),
                for_update: false,
            }
            .kind(),
            Msg::CopyPrewrite {
                txn: txn(),
                ts: Timestamp::ZERO,
                item: ItemId::new("x"),
            }
            .kind(),
            Msg::AcpPrepare {
                txn: txn(),
                ts: Timestamp::ZERO,
                writes: vec![],
            }
            .kind(),
            Msg::AcpDecision {
                txn: txn(),
                decision: Decision::Commit,
            }
            .kind(),
        ];
        let unique: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn batch_sums_sizes_and_routes_to_no_single_txn() {
        let inner = vec![
            Msg::AcpDecision {
                txn: txn(),
                decision: Decision::Commit,
            },
            Msg::AcpPrepare {
                txn: txn(),
                ts: Timestamp::ZERO,
                writes: vec![(ItemId::new("x"), Value::Int(1), Version(1))],
            },
        ];
        let summed: usize = inner.iter().map(|m| m.size_hint()).sum();
        let batch = Msg::Batch(inner);
        assert_eq!(batch.kind(), "BATCH");
        assert!(batch.size_hint() > summed, "envelope header is extra");
        // A batch spans transactions; the dispatcher unpacks it before any
        // per-transaction routing happens.
        assert_eq!(batch.txn(), None);
        assert!(!batch.is_coordinator_response());
    }

    #[test]
    fn size_hints_grow_with_payload() {
        let small = Msg::AcpPrepare {
            txn: txn(),
            ts: Timestamp::ZERO,
            writes: vec![],
        };
        let large = Msg::AcpPrepare {
            txn: txn(),
            ts: Timestamp::ZERO,
            writes: vec![
                (ItemId::new("x"), Value::Int(1), Version(1)),
                (ItemId::new("y"), Value::Text("hello".into()), Version(2)),
            ],
        };
        assert!(large.size_hint() > small.size_hint());
        assert!(Msg::NsGetSchema.size_hint() > 0);
    }
}
