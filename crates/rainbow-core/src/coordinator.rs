//! The home-site transaction manager (coordinator worker).
//!
//! One worker thread per transaction executes the flow of Section 2.1 of the
//! paper:
//!
//! 1. the RCP builds a read or write quorum **per operation**, contacting
//!    copy-holder sites whose CCP arbitrates each copy access;
//! 2. once every operation has its quorum, the home site runs the ACP (2PC
//!    by default, 3PC optionally);
//! 3. the result — committed, aborted (with the responsible layer) or
//!    orphaned — is reported back to the submitting client together with
//!    the values read, the response time and the number of messages the
//!    transaction generated.

use crate::messages::{CopyAccessResult, Msg};
use crate::site::SiteShared;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError};
use rainbow_commit::{Coordinator, CoordinatorAction, Decision, Vote};
use rainbow_common::txn::{AbortCause, TxnOutcome, TxnResult, TxnSpec};
use rainbow_common::{ItemId, Operation, SiteId, Timestamp, TxnId, Value, Version};
use rainbow_net::{Envelope, NodeId};
use rainbow_replication::{QuorumCollector, QuorumOutcome, QuorumResponse};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// Mutable execution state of one transaction at its coordinator.
struct TxnExecution {
    txn: TxnId,
    ts: Timestamp,
    /// Values observed by read operations.
    reads: BTreeMap<ItemId, Value>,
    /// Writes to install per participant site.
    writes_per_site: BTreeMap<SiteId, Vec<(ItemId, Value, Version)>>,
    /// Every site that granted this transaction an access (they all hold CCP
    /// resources and must see the final decision).
    touched: BTreeSet<SiteId>,
    /// Every site the transaction *contacted* (quorum targets), whether or
    /// not it answered in time. Contacted-but-untouched sites may have
    /// granted a lock after the quorum was already assembled; they receive a
    /// release notice when the transaction finishes so their resources do
    /// not linger until the janitor.
    contacted: BTreeSet<SiteId>,
    /// Messages sent on behalf of this transaction (remote only; loopback is
    /// free, as in the paper's message accounting).
    messages: u64,
}

impl TxnExecution {
    fn new(txn: TxnId, ts: Timestamp) -> Self {
        TxnExecution {
            txn,
            ts,
            reads: BTreeMap::new(),
            writes_per_site: BTreeMap::new(),
            touched: BTreeSet::new(),
            contacted: BTreeSet::new(),
            messages: 0,
        }
    }
}

/// Entry point of the coordinator worker thread: executes `spec` and reports
/// the result to `client`.
pub(crate) fn run_transaction(
    shared: Arc<SiteShared>,
    spec: TxnSpec,
    client: NodeId,
    request: u64,
) {
    let txn = TxnId::new(
        shared.id,
        shared
            .txn_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    );
    let ts = shared.clock.next();
    let started = Instant::now();

    let (reply_tx, reply_rx) = unbounded();
    shared.register_reply_channel(txn, reply_tx);

    let mut exec = TxnExecution::new(txn, ts);
    let outcome = match execute_operations(&shared, &spec, &mut exec, &reply_rx) {
        Ok(()) => run_commit_protocol(&shared, &mut exec, &reply_rx),
        Err(cause) => {
            // Release whatever the transaction holds at the sites it touched.
            abort_everywhere(&shared, &mut exec);
            TxnOutcome::Aborted(cause)
        }
    };
    release_stragglers(&shared, &mut exec);

    shared.unregister_reply_channel(txn);

    if outcome.is_committed() {
        shared.decided.lock().insert(txn, Decision::Commit);
    }

    let result = TxnResult {
        id: txn,
        label: spec.label.clone(),
        outcome,
        reads: if spec.is_read_only() || !exec.reads.is_empty() {
            exec.reads.clone()
        } else {
            BTreeMap::new()
        },
        response_time: started.elapsed(),
        restarts: 0,
        messages: exec.messages,
    };
    shared.send(client, Msg::TxnDone { request, result });
}

/// Executes every operation of the transaction through the RCP, collecting
/// read values and the per-site write sets.
///
/// Two strategies exist. The default **parallel fan-out** sends the copy
/// accesses of *all* operations up front and drains replies under one
/// deadline, so a transaction's RCP latency is the slowest quorum instead of
/// the sum of all quorums. The **sequential** path (protocol-stack knob
/// `parallel_quorums = false`) assembles one quorum at a time, exactly as
/// the paper describes the RCP loop; it is kept both as an experiment
/// baseline and as a differential-testing oracle for the parallel path.
fn execute_operations(
    shared: &Arc<SiteShared>,
    spec: &TxnSpec,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
) -> Result<(), AbortCause> {
    if shared.stack.parallel_quorums {
        execute_operations_parallel(shared, spec, exec, replies)
    } else {
        execute_operations_sequential(shared, spec, exec, replies)
    }
}

/// The strictly sequential RCP loop: one quorum per operation, each with its
/// own deadline.
fn execute_operations_sequential(
    shared: &Arc<SiteShared>,
    spec: &TxnSpec,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
) -> Result<(), AbortCause> {
    for op in &spec.operations {
        match op {
            Operation::Read { item } => {
                let (value, _) = read_quorum(shared, exec, replies, item)?;
                exec.reads.insert(item.clone(), value);
            }
            Operation::Write { item, value } => {
                write_quorum(shared, exec, replies, item, value.clone())?;
            }
            Operation::Increment { item, delta } => {
                // A read-modify-write builds a single *write* quorum whose
                // copy accesses take write access up front and return the
                // current value (read-for-update), avoiding shared→exclusive
                // upgrades and a second quorum round.
                let collector =
                    run_quorum(shared, exec, replies, item, QuorumAccess::ReadForUpdate)?;
                apply_increment(shared, exec, item, *delta, &collector)?;
            }
        }
    }
    Ok(())
}

/// One operation's quorum being assembled during parallel fan-out.
struct QuorumRound {
    item: ItemId,
    access: QuorumAccess,
    collector: QuorumCollector,
    assembled: bool,
    /// First CCP denial observed by *this* round (abort causes must stay
    /// per-quorum so layer attribution matches the sequential path).
    ccp_cause: Option<AbortCause>,
}

impl QuorumRound {
    /// Whether an incoming `CopyReply` from `site` belongs to this round:
    /// the item and the exact access kind must match, the site must be one
    /// this round actually contacted, and the round must not have heard
    /// from the site yet. The last rule makes duplicate operations on the
    /// same item each collect their own copy of every site's answer instead
    /// of the first round swallowing all of them; the target rule keeps a
    /// wider quorum's replies (e.g. a write fan-out) from being absorbed by
    /// a narrower one on the same item (e.g. a one-site ROWA read whose
    /// vote map nevertheless lists every holder).
    fn matches(&self, item: &ItemId, prewrite: bool, for_update: bool, site: SiteId) -> bool {
        !self.assembled
            && self.item == *item
            && (self.access == QuorumAccess::Write) == prewrite
            && (self.access == QuorumAccess::ReadForUpdate) == for_update
            && self.collector.is_target(site)
            && !self.collector.has_response(site)
            && !self.collector.has_failure(site)
    }
}

/// Parallel fan-out: send the copy accesses of every operation first, then
/// drain replies for all quorums under a single deadline.
fn execute_operations_parallel(
    shared: &Arc<SiteShared>,
    spec: &TxnSpec,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
) -> Result<(), AbortCause> {
    // Phase 1: plan and send everything.
    let mut rounds: Vec<QuorumRound> = Vec::with_capacity(spec.operations.len());
    for op in &spec.operations {
        let (item, access) = match op {
            Operation::Read { item } => (item, QuorumAccess::Read),
            Operation::Write { item, .. } => (item, QuorumAccess::Write),
            Operation::Increment { item, .. } => (item, QuorumAccess::ReadForUpdate),
        };
        let collector = start_quorum(shared, exec, item, access)?;
        // A plan that is unsatisfiable from the start (e.g. a tree-quorum
        // write while the tree root is down plans zero targets) must abort
        // now, not after the fan-out deadline expires.
        if collector.outcome() == QuorumOutcome::Impossible {
            return Err(collector.abort_cause());
        }
        let assembled = collector.is_assembled();
        rounds.push(QuorumRound {
            item: item.clone(),
            access,
            collector,
            assembled,
            ccp_cause: None,
        });
    }

    // Phase 2: one deadline for the whole fan-out.
    let deadline = Instant::now() + shared.stack.quorum_timeout;
    let mut outstanding = rounds.iter().filter(|r| !r.assembled).count();

    while outstanding > 0 {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            let slowest = rounds
                .iter()
                .find(|r| !r.assembled)
                .expect("outstanding > 0");
            return Err(slowest.ccp_cause.clone().unwrap_or(AbortCause::RcpTimeout {
                item: slowest.item.clone(),
            }));
        }
        let envelope = match replies.recv_timeout(remaining) {
            Ok(envelope) => envelope,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(AbortCause::SiteFailure { site: shared.id })
            }
        };
        let from = envelope.from;
        let Msg::CopyReply {
            item: reply_item,
            prewrite,
            for_update,
            result,
            ..
        } = envelope.payload
        else {
            // Late votes/acks from an earlier transaction attempt: ignore.
            continue;
        };
        let Some(site) = from.as_site() else { continue };
        // Route the reply to the first still-pending round it can serve.
        // Duplicate (item, access) operations each sent their own requests,
        // so reply counts line up even when keys collide.
        let Some(round) = rounds
            .iter_mut()
            .find(|r| r.matches(&reply_item, prewrite, for_update, site))
        else {
            continue; // stale reply for an already-assembled quorum
        };
        if from != shared.node {
            shared.net.counters().record_round_trip();
        }
        match result {
            CopyAccessResult::Granted { value, version } => {
                // The responder holds CCP resources on our behalf from this
                // moment, whether or not its quorum ends up assembling.
                exec.touched.insert(site);
                round.collector.record_response(QuorumResponse {
                    site,
                    version,
                    value,
                });
            }
            CopyAccessResult::Denied(cause) => {
                if round.ccp_cause.is_none() {
                    round.ccp_cause = Some(cause);
                }
                round.collector.record_failure(site);
            }
            CopyAccessResult::NoSuchCopy => {
                round.collector.record_failure(site);
            }
        }
        match round.collector.outcome() {
            QuorumOutcome::Assembled => {
                round.assembled = true;
                outstanding -= 1;
            }
            QuorumOutcome::Impossible => {
                return Err(round
                    .ccp_cause
                    .clone()
                    .unwrap_or_else(|| round.collector.abort_cause()));
            }
            QuorumOutcome::Pending => {}
        }
    }

    // Phase 3: every quorum assembled — fold results back in operation
    // order, so reads and write sets come out exactly as the sequential
    // path produces them.
    for (op, round) in spec.operations.iter().zip(rounds.iter()) {
        for site in round.collector.responders() {
            exec.touched.insert(site);
        }
        match op {
            Operation::Read { item } => {
                let (value, _) = round
                    .collector
                    .latest_value()
                    .ok_or_else(|| AbortCause::RcpTimeout { item: item.clone() })?;
                exec.reads.insert(item.clone(), value);
            }
            Operation::Write { item, value } => {
                let new_version = new_write_version(shared, exec, &round.collector);
                for site in round.collector.responders() {
                    exec.writes_per_site.entry(site).or_default().push((
                        item.clone(),
                        value.clone(),
                        new_version,
                    ));
                }
            }
            Operation::Increment { item, delta } => {
                apply_increment(shared, exec, item, *delta, &round.collector)?;
            }
        }
    }
    Ok(())
}

/// Folds an assembled read-for-update quorum into an increment operation's
/// read value and write set.
fn apply_increment(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    item: &ItemId,
    delta: i64,
    collector: &QuorumCollector,
) -> Result<(), AbortCause> {
    let (current, _) = collector
        .latest_value()
        .ok_or_else(|| AbortCause::RcpTimeout { item: item.clone() })?;
    let new_value = current.add_int(delta).ok_or(AbortCause::UserAbort)?;
    exec.reads.insert(item.clone(), current);
    let new_version = new_write_version(shared, exec, collector);
    for site in collector.responders() {
        exec.writes_per_site.entry(site).or_default().push((
            item.clone(),
            new_value.clone(),
            new_version,
        ));
    }
    Ok(())
}

/// The replica version number a write must install.
///
/// Under 2PL, write quorums are serialized by exclusive locks, so
/// `max(version in quorum) + 1` is strictly increasing in commit order.
/// Under (MV)TSO, conflicting pre-writes are *not* serialized before commit
/// — two concurrent writers could both observe the same committed version
/// and install colliding numbers — so the version is derived from the
/// transaction's globally unique timestamp instead, which is exactly the
/// order those protocols serialize by.
fn new_write_version(
    shared: &Arc<SiteShared>,
    exec: &TxnExecution,
    collector: &QuorumCollector,
) -> Version {
    match shared.stack.ccp {
        rainbow_common::protocol::CcpKind::TwoPhaseLocking => collector.next_version(),
        rainbow_common::protocol::CcpKind::TimestampOrdering
        | rainbow_common::protocol::CcpKind::MultiversionTimestampOrdering => {
            // Encode (counter, site) into a single monotonic number; site ids
            // are far below 1024 in any Rainbow configuration.
            Version(exec.ts.counter * 1024 + u64::from(exec.ts.site % 1024))
        }
    }
}

/// The three copy-access patterns the coordinator issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QuorumAccess {
    /// Read quorum, shared access.
    Read,
    /// Write quorum, pre-write access (version numbers only).
    Write,
    /// Write quorum whose accesses also return the current value
    /// (read-modify-write operations).
    ReadForUpdate,
}

/// Builds a read quorum for `item` and returns the highest-versioned value.
fn read_quorum(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
    item: &ItemId,
) -> Result<(Value, Version), AbortCause> {
    let collector = run_quorum(shared, exec, replies, item, QuorumAccess::Read)?;
    collector
        .latest_value()
        .ok_or_else(|| AbortCause::RcpTimeout { item: item.clone() })
}

/// Builds a write quorum for `item` and records the write for every site in
/// the quorum.
fn write_quorum(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
    item: &ItemId,
    value: Value,
) -> Result<(), AbortCause> {
    let collector = run_quorum(shared, exec, replies, item, QuorumAccess::Write)?;
    let new_version = new_write_version(shared, exec, &collector);
    for site in collector.responders() {
        exec.writes_per_site.entry(site).or_default().push((
            item.clone(),
            value.clone(),
            new_version,
        ));
    }
    Ok(())
}

/// Plans one quorum and sends its copy-access requests to every target
/// site, returning the collector the replies feed into. Shared by the
/// sequential and the parallel fan-out paths.
fn start_quorum(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    item: &ItemId,
    access: QuorumAccess,
) -> Result<QuorumCollector, AbortCause> {
    let schema = shared.schema.read();
    let placement = match schema.replication.placement(item) {
        Some(p) => p.clone(),
        None => {
            return Err(AbortCause::RcpQuorumUnavailable {
                item: item.clone(),
                collected: 0,
                required: 0,
            })
        }
    };
    drop(schema);

    // The fault controller's live site-status view: the planners route
    // around (reads), shrink their write sets to (available copies, primary
    // copy) or degrade their quorum trees around (tree quorum) the sites
    // known to be down. Partitioned-but-alive sites are deliberately *not*
    // in this list — treating them as down would let write sets shrink on
    // both sides of a partition and diverge; instead they stay targets and
    // the quorum times out, aborting the transaction.
    let suspected_down: Vec<SiteId> = shared.net.faults().crashed_sites();
    let plan = match access {
        QuorumAccess::Read => {
            shared
                .rcp
                .plan_read(item, &placement, Some(shared.id), &suspected_down)
        }
        QuorumAccess::Write | QuorumAccess::ReadForUpdate => {
            shared.rcp.plan_write(item, &placement, &suspected_down)
        }
    };
    let targets = plan.targets.clone();
    let collector = plan.collector();

    for target in &targets {
        let msg = match access {
            QuorumAccess::Write => Msg::CopyPrewrite {
                txn: exec.txn,
                ts: exec.ts,
                item: item.clone(),
            },
            QuorumAccess::Read => Msg::CopyRead {
                txn: exec.txn,
                ts: exec.ts,
                item: item.clone(),
                for_update: false,
            },
            QuorumAccess::ReadForUpdate => Msg::CopyRead {
                txn: exec.txn,
                ts: exec.ts,
                item: item.clone(),
                for_update: true,
            },
        };
        shared.send(NodeId::Site(*target), msg);
        exec.contacted.insert(*target);
        if *target != shared.id {
            exec.messages += 1;
        }
    }
    Ok(collector)
}

/// Sends the copy-access requests for one quorum and collects responses
/// until the quorum is assembled, impossible, or the quorum timeout expires.
fn run_quorum(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
    item: &ItemId,
    access: QuorumAccess,
) -> Result<QuorumCollector, AbortCause> {
    // Only plain pre-writes come back flagged as pre-write replies;
    // read-for-update accesses reply like reads (they carry the value).
    let is_prewrite = access == QuorumAccess::Write;
    let mut collector = start_quorum(shared, exec, item, access)?;

    let deadline = Instant::now() + shared.stack.quorum_timeout;
    let mut first_ccp_cause: Option<AbortCause> = None;

    loop {
        match collector.outcome() {
            QuorumOutcome::Assembled => {
                // Every responder holds CCP resources on our behalf.
                for site in collector.responders() {
                    exec.touched.insert(site);
                }
                return Ok(collector);
            }
            QuorumOutcome::Impossible => {
                // Responders so far still hold resources and must be released
                // by the caller's abort path.
                for site in collector.responders() {
                    exec.touched.insert(site);
                }
                return Err(first_ccp_cause.unwrap_or_else(|| collector.abort_cause()));
            }
            QuorumOutcome::Pending => {}
        }

        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            for site in collector.responders() {
                exec.touched.insert(site);
            }
            return Err(first_ccp_cause.unwrap_or(AbortCause::RcpTimeout { item: item.clone() }));
        }
        match replies.recv_timeout(remaining) {
            Ok(envelope) => {
                let from_site = envelope.from.as_site();
                if let Msg::CopyReply {
                    item: reply_item,
                    prewrite,
                    for_update,
                    result,
                    ..
                } = envelope.payload
                {
                    if reply_item != *item
                        || prewrite != is_prewrite
                        || for_update != (access == QuorumAccess::ReadForUpdate)
                    {
                        continue; // stale reply from an earlier operation
                    }
                    let Some(site) = from_site else { continue };
                    if envelope.from != shared.node {
                        shared.net.counters().record_round_trip();
                    }
                    match result {
                        CopyAccessResult::Granted { value, version } => {
                            collector.record_response(QuorumResponse {
                                site,
                                version,
                                value,
                            });
                        }
                        CopyAccessResult::Denied(cause) => {
                            if first_ccp_cause.is_none() {
                                first_ccp_cause = Some(cause);
                            }
                            collector.record_failure(site);
                        }
                        CopyAccessResult::NoSuchCopy => {
                            collector.record_failure(site);
                        }
                    }
                }
                // Other message kinds (late votes/acks from a previous
                // operation set) are ignored.
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(AbortCause::SiteFailure { site: shared.id })
            }
        }
    }
}

/// Runs the atomic commit protocol over every touched site and returns the
/// final transaction outcome.
fn run_commit_protocol(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
) -> TxnOutcome {
    let participants: Vec<SiteId> = exec.touched.iter().copied().collect();
    let mut coordinator = Coordinator::new(exec.txn, shared.stack.acp, participants.clone());
    let mut abort_cause: Option<AbortCause> = None;

    let action = coordinator.start();
    if let CoordinatorAction::Complete(decision) = action {
        // No participants: a transaction that touched nothing commits
        // trivially.
        return match decision {
            Decision::Commit => TxnOutcome::Committed,
            Decision::Abort => TxnOutcome::Aborted(AbortCause::UserAbort),
        };
    }
    perform_action(shared, exec, action, &mut abort_cause);

    let mut deadline = Instant::now() + shared.stack.commit_timeout;
    loop {
        if coordinator.state() == rainbow_commit::CoordinatorState::Completed {
            break;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        let event = if remaining.is_zero() {
            None
        } else {
            match replies.recv_timeout(remaining) {
                Ok(envelope) => Some(envelope),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => None,
            }
        };
        let action = match event {
            Some(envelope) => {
                let from_site = envelope.from.as_site();
                match (envelope.payload, from_site) {
                    (Msg::AcpVote { vote, .. }, Some(site)) => {
                        if vote == Vote::No && abort_cause.is_none() {
                            abort_cause = Some(AbortCause::AcpVotedNo { participant: site });
                        }
                        coordinator.on_vote(site, vote)
                    }
                    (Msg::AcpPreCommitAck { .. }, Some(site)) => coordinator.on_precommit_ack(site),
                    (Msg::AcpAck { .. }, Some(site)) => coordinator.on_ack(site),
                    _ => CoordinatorAction::Wait,
                }
            }
            None => {
                if abort_cause.is_none() {
                    abort_cause = Some(AbortCause::AcpTimeout {
                        phase: match coordinator.state() {
                            rainbow_commit::CoordinatorState::CollectingVotes => "prepare".into(),
                            rainbow_commit::CoordinatorState::CollectingPreCommitAcks => {
                                "pre-commit".into()
                            }
                            _ => "ack".into(),
                        },
                    });
                }
                coordinator.on_timeout()
            }
        };
        // Phase transitions get a fresh timeout window.
        match action {
            CoordinatorAction::SendPreCommit(_) | CoordinatorAction::SendDecision(..) => {
                deadline = Instant::now() + shared.stack.commit_timeout;
            }
            _ => {}
        }
        if perform_action(shared, exec, action, &mut abort_cause) {
            break;
        }
    }

    match coordinator.decision() {
        Some(Decision::Commit) => TxnOutcome::Committed,
        Some(Decision::Abort) => {
            TxnOutcome::Aborted(abort_cause.unwrap_or(AbortCause::AcpTimeout {
                phase: "prepare".into(),
            }))
        }
        None => TxnOutcome::Orphaned,
    }
}

/// Performs one coordinator action (sending the corresponding messages).
/// Returns true when the protocol is complete.
fn perform_action(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    action: CoordinatorAction,
    _abort_cause: &mut Option<AbortCause>,
) -> bool {
    match action {
        CoordinatorAction::SendPrepare(targets) => {
            for target in targets {
                let writes = exec
                    .writes_per_site
                    .get(&target)
                    .cloned()
                    .unwrap_or_default();
                shared.send(
                    NodeId::Site(target),
                    Msg::AcpPrepare {
                        txn: exec.txn,
                        ts: exec.ts,
                        writes,
                    },
                );
                if target != shared.id {
                    exec.messages += 1;
                }
            }
            false
        }
        CoordinatorAction::SendPreCommit(targets) => {
            for target in targets {
                shared.send(NodeId::Site(target), Msg::AcpPreCommit { txn: exec.txn });
                if target != shared.id {
                    exec.messages += 1;
                }
            }
            false
        }
        CoordinatorAction::SendDecision(decision, targets) => {
            // Force the decision at the coordinator before telling anyone.
            shared.decided.lock().insert(exec.txn, decision);
            for target in targets {
                shared.send(
                    NodeId::Site(target),
                    Msg::AcpDecision {
                        txn: exec.txn,
                        decision,
                    },
                );
                if target != shared.id {
                    exec.messages += 1;
                }
            }
            false
        }
        CoordinatorAction::Complete(_) => true,
        CoordinatorAction::Wait => false,
    }
}

/// Sends a release notice (an abort decision) to every site that was
/// contacted but is not a commit-protocol participant. Such a site may have
/// granted a copy access *after* the quorum was already assembled (or after
/// it became impossible); it holds locks for this transaction but will never
/// hear from the commit protocol, so it is told to drop them now instead of
/// waiting for the janitor. Aborting at a non-participant is always safe:
/// the site has no staged writes for this transaction.
fn release_stragglers(shared: &Arc<SiteShared>, exec: &mut TxnExecution) {
    let stragglers: Vec<SiteId> = exec
        .contacted
        .iter()
        .filter(|site| !exec.touched.contains(site))
        .copied()
        .collect();
    for site in stragglers {
        shared.send(
            NodeId::Site(site),
            Msg::AcpDecision {
                txn: exec.txn,
                decision: Decision::Abort,
            },
        );
        if site != shared.id {
            exec.messages += 1;
        }
    }
}

/// Fire-and-forget abort distribution used when the transaction fails before
/// the commit protocol starts: every touched site must release the
/// transaction's CCP resources and discard staged state.
fn abort_everywhere(shared: &Arc<SiteShared>, exec: &mut TxnExecution) {
    shared.decided.lock().insert(exec.txn, Decision::Abort);
    for site in exec.touched.clone() {
        shared.send(
            NodeId::Site(site),
            Msg::AcpDecision {
                txn: exec.txn,
                decision: Decision::Abort,
            },
        );
        if site != shared.id {
            exec.messages += 1;
        }
    }
}
