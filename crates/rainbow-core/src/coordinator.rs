//! The home-site transaction manager (coordinator worker).
//!
//! One worker thread per transaction drives the flow of Section 2.1 of the
//! paper — but as an **op-driven state machine**: the coordinator learns the
//! transaction one command at a time from the client's interactive handle
//! (begin → read/write/increment → commit/abort) instead of iterating a
//! pre-declared operation list. Each command flows through the layers:
//!
//! 1. the RCP builds a read or write quorum **per operation**, contacting
//!    copy-holder sites whose CCP arbitrates each copy access — reads run
//!    immediately and return the observed value mid-transaction, plain
//!    writes are buffered and their quorums run at commit;
//! 2. at commit the buffered write quorums are installed and the home site
//!    runs the ACP (2PC by default, 3PC optionally);
//! 3. the result — committed, aborted (with the responsible layer) or
//!    orphaned — is reported back to the driving client together with the
//!    values read, the response time and the number of messages the
//!    transaction generated.
//!
//! One-shot `TxnSpec` submission is a *client-side* adapter replaying the
//! spec through this same conversation; there is no second execution path.

pub(crate) mod reactor;

use crate::messages::{CopyAccessResult, Msg, NextOp, OpReply};
use crate::site::SiteShared;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError};
use rainbow_commit::{Coordinator, CoordinatorAction, Decision, Vote};
use rainbow_common::history::{ReadObservation, TxnRecord, WriteRecord};
use rainbow_common::txn::{AbortCause, TxnOutcome, TxnResult};
use rainbow_common::{ItemId, SiteId, Timestamp, TxnId, Value, Version};
use rainbow_net::{Envelope, NodeId};
use rainbow_replication::{QuorumCollector, QuorumOutcome, QuorumResponse};
use rainbow_trace::{Phase, TraceEvent, Track};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An update the conversation has staged, in client order. Install order
/// must follow the order the client issued the updates in, even though
/// read-modify-writes assemble their quorums immediately while plain writes
/// defer theirs to commit.
enum StagedWrite {
    /// A plain write: the quorum runs at commit.
    Deferred {
        /// The item.
        item: ItemId,
        /// The value to install.
        value: Value,
    },
    /// A read-modify-write whose (read-for-update) quorum already assembled
    /// when the operation ran.
    Assembled {
        /// The item.
        item: ItemId,
        /// The computed value to install.
        value: Value,
        /// The quorum's responders (where the write must be installed).
        sites: Vec<SiteId>,
        /// The version the write installs.
        version: Version,
    },
}

/// Mutable execution state of one transaction at its coordinator.
struct TxnExecution {
    txn: TxnId,
    ts: Timestamp,
    /// Values observed by read operations.
    reads: BTreeMap<ItemId, Value>,
    /// Updates staged by the conversation, in client order.
    staged: Vec<StagedWrite>,
    /// Writes to install per participant site (built when the staged
    /// updates are folded at commit).
    writes_per_site: BTreeMap<SiteId, Vec<(ItemId, Value, Version)>>,
    /// Every site that granted this transaction an access (they all hold CCP
    /// resources and must see the final decision).
    touched: BTreeSet<SiteId>,
    /// Every site the transaction *contacted* (quorum targets), whether or
    /// not it answered in time. Contacted-but-untouched sites may have
    /// granted a lock after the quorum was already assembled; they receive a
    /// release notice when the transaction finishes so their resources do
    /// not linger until the janitor.
    contacted: BTreeSet<SiteId>,
    /// Messages sent on behalf of this transaction (remote only; loopback is
    /// free, as in the paper's message accounting; client conversation round
    /// trips are excluded, like `SubmitTxn` round trips were).
    messages: u64,
    /// Whether the cluster records transaction histories; when false the
    /// two vectors below stay empty and untouched (the default).
    record_history: bool,
    /// Every read with its observed version, in execution order — the
    /// history footprint the serializability checker consumes.
    observed: Vec<ReadObservation>,
    /// Every write with its installed version, in client order (filled when
    /// the staged writes are folded at commit).
    installed: Vec<WriteRecord>,
    /// Coordinator-side spans buffered locally while the transaction runs.
    /// Handed to the tracer's `finish_txn` at the end, which keeps them if
    /// the transaction is sampled *or* slow enough for the worst-N ring.
    /// Empty (never pushed to) when the cluster runs without a tracer.
    spans: Vec<TraceEvent>,
}

impl TxnExecution {
    fn new(txn: TxnId, ts: Timestamp, record_history: bool) -> Self {
        TxnExecution {
            txn,
            ts,
            reads: BTreeMap::new(),
            staged: Vec::new(),
            writes_per_site: BTreeMap::new(),
            touched: BTreeSet::new(),
            contacted: BTreeSet::new(),
            messages: 0,
            record_history,
            observed: Vec::new(),
            installed: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Records one read observation (history recording only).
    fn observe_read(&mut self, item: &ItemId, value: &Value, version: Version) {
        if self.record_history {
            self.observed.push(ReadObservation {
                item: item.clone(),
                value: value.clone(),
                version,
            });
        }
    }

    /// Records one installed write (history recording only).
    fn observe_write(&mut self, item: &ItemId, value: &Value, version: Version) {
        if self.record_history {
            self.installed.push(WriteRecord {
                item: item.clone(),
                value: value.clone(),
                version,
            });
        }
    }
}

/// Tracer clock, or 0 when tracing is off (every span built from it is
/// discarded unconditionally in that case).
fn trace_now(shared: &SiteShared) -> u64 {
    shared.tracer.as_ref().map_or(0, |t| t.now_us())
}

/// Buffers one coordinator-side span ending now. No-op without a tracer;
/// the detail is a closure so untraced runs never pay for formatting.
fn push_span(
    shared: &SiteShared,
    exec: &mut TxnExecution,
    track: Track,
    label: &str,
    start_us: u64,
    detail: impl FnOnce() -> String,
) {
    if let Some(tracer) = shared.tracer.as_ref() {
        let dur_us = tracer.now_us().saturating_sub(start_us);
        exec.spans.push(TraceEvent {
            txn: exec.txn,
            track,
            label: label.to_string(),
            start_us,
            dur_us,
            detail: detail(),
        });
    }
}

/// Records the span + phase histogram entry for one assembled quorum.
/// Write quorums get a span but no `quorum-read` histogram entry.
fn finish_quorum_span(
    shared: &SiteShared,
    exec: &mut TxnExecution,
    access: QuorumAccess,
    item: &ItemId,
    start_us: u64,
    responders: usize,
) {
    let Some(tracer) = shared.tracer.as_ref() else {
        return;
    };
    let dur_us = tracer.now_us().saturating_sub(start_us);
    if access != QuorumAccess::Write {
        tracer.record_phase(Phase::QuorumRead, Duration::from_micros(dur_us));
    }
    let label = match access {
        QuorumAccess::Read => "quorum:read",
        QuorumAccess::Write => "quorum:write",
        QuorumAccess::ReadForUpdate => "quorum:read-for-update",
    };
    exec.spans.push(TraceEvent {
        txn: exec.txn,
        track: Track::Coordinator,
        label: label.to_string(),
        start_us,
        dur_us,
        detail: format!("{item} ({responders} responders)"),
    });
}

/// Entry point of the coordinator worker thread: opens the conversation for
/// `client`, executes commands until the client commits or aborts (or the
/// conversation idles out), and reports the final result.
pub(crate) fn run_interactive(
    shared: Arc<SiteShared>,
    label: String,
    client: NodeId,
    request: u64,
) {
    let txn = TxnId::new(
        shared.id,
        shared
            .txn_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    );
    let ts = shared.clock.next();
    let started = Instant::now();
    let trace_start = trace_now(&shared);

    let (reply_tx, reply_rx) = unbounded();
    // Register before acknowledging, so the client's first command cannot
    // outrun the routing entry.
    shared.register_reply_channel(txn, reply_tx);
    shared.send(client, Msg::TxnBegan { request, txn });

    if let Some(sink) = shared.history.as_ref() {
        sink.begin();
    }
    let mut exec = TxnExecution::new(txn, ts, shared.history.is_some());
    let outcome = drive_conversation(&shared, &mut exec, &reply_rx);
    release_stragglers(&shared, &mut exec);

    shared.unregister_reply_channel(txn);

    if outcome.is_committed() {
        shared.decided.lock().insert(txn, Decision::Commit);
    }

    // The coordinator is the authoritative observer: it records the real
    // outcome even when the driving client timed out and reported an
    // orphan. Spec replay and interactive conversations both run through
    // this single path, so their histories are identical by construction.
    if let Some(sink) = shared.history.as_ref() {
        sink.record(TxnRecord {
            txn,
            label: label.clone(),
            reads: std::mem::take(&mut exec.observed),
            writes: std::mem::take(&mut exec.installed),
            outcome: outcome.clone(),
            completion_seq: 0,
        });
    }

    if let Some(tracer) = shared.tracer.as_ref() {
        let mut spans = std::mem::take(&mut exec.spans);
        spans.push(TraceEvent {
            txn,
            track: Track::Coordinator,
            label: "txn".to_string(),
            start_us: trace_start,
            dur_us: tracer.now_us().saturating_sub(trace_start),
            detail: format!("{label}: {outcome:?}"),
        });
        tracer.finish_txn(txn, started.elapsed(), spans);
    }

    let result = TxnResult {
        id: txn,
        label,
        outcome,
        reads: exec.reads.clone(),
        response_time: started.elapsed(),
        restarts: 0,
        messages: exec.messages,
    };
    shared.send(client, Msg::TxnDone { request, result });
}

/// The conversation loop: waits for the client's next command, executes it,
/// and answers — until a terminal command (commit/abort), an operation
/// failure, or the idle horizon ends the transaction.
fn drive_conversation(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
) -> TxnOutcome {
    // How long the coordinator lets an open conversation sit idle before
    // presuming the client gone and aborting. Deliberately the same horizon
    // the participant janitor uses, so a vanished client frees resources
    // everywhere on the same clock.
    let horizon = shared.stack.janitor_horizon();
    let mut last_activity = Instant::now();
    loop {
        if shared.shutdown.load(std::sync::atomic::Ordering::Relaxed) {
            abort_everywhere(shared, exec);
            return TxnOutcome::Aborted(AbortCause::SiteFailure { site: shared.id });
        }
        if last_activity.elapsed() >= horizon {
            abort_everywhere(shared, exec);
            return TxnOutcome::Aborted(AbortCause::ClientTimeout);
        }
        let envelope = match replies.recv_timeout(Duration::from_millis(50)) {
            Ok(envelope) => envelope,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                abort_everywhere(shared, exec);
                return TxnOutcome::Aborted(AbortCause::SiteFailure { site: shared.id });
            }
        };
        let client = envelope.from;
        let Msg::TxnOp { op, .. } = envelope.payload else {
            // Stale quorum replies / votes from an earlier operation.
            continue;
        };
        last_activity = Instant::now();
        match op {
            NextOp::Read { item } => {
                let op_start = trace_now(shared);
                let res = single_quorum(shared, exec, replies, &item, QuorumAccess::Read).and_then(
                    |collector| {
                        collector
                            .latest_value()
                            .ok_or_else(|| AbortCause::RcpTimeout { item: item.clone() })
                    },
                );
                push_span(
                    shared,
                    exec,
                    Track::Coordinator,
                    "op:read",
                    op_start,
                    || item.to_string(),
                );
                match res {
                    Ok((value, version)) => {
                        exec.observe_read(&item, &value, version);
                        exec.reads.insert(item.clone(), value.clone());
                        shared.send(
                            client,
                            Msg::TxnOpReply {
                                txn: exec.txn,
                                reply: OpReply::Value { item, value },
                            },
                        );
                    }
                    Err(cause) => {
                        abort_everywhere(shared, exec);
                        return TxnOutcome::Aborted(cause);
                    }
                }
            }
            NextOp::ReadMany { items } => {
                let op_start = trace_now(shared);
                let res = read_many(shared, exec, replies, &items);
                push_span(
                    shared,
                    exec,
                    Track::Coordinator,
                    "op:read-many",
                    op_start,
                    || format!("{} items", items.len()),
                );
                match res {
                    Ok(values) => shared.send(
                        client,
                        Msg::TxnOpReply {
                            txn: exec.txn,
                            reply: OpReply::Values { values },
                        },
                    ),
                    Err(cause) => {
                        abort_everywhere(shared, exec);
                        return TxnOutcome::Aborted(cause);
                    }
                }
            }
            NextOp::BufferWrite { item, value } => {
                exec.staged.push(StagedWrite::Deferred { item, value });
                shared.send(
                    client,
                    Msg::TxnOpReply {
                        txn: exec.txn,
                        reply: OpReply::Buffered,
                    },
                );
            }
            NextOp::Increment { item, delta } => {
                let op_start = trace_now(shared);
                let res = interactive_increment(shared, exec, replies, &item, delta);
                push_span(
                    shared,
                    exec,
                    Track::Coordinator,
                    "op:increment",
                    op_start,
                    || item.to_string(),
                );
                match res {
                    Ok(value) => shared.send(
                        client,
                        Msg::TxnOpReply {
                            txn: exec.txn,
                            reply: OpReply::Value { item, value },
                        },
                    ),
                    Err(cause) => {
                        abort_everywhere(shared, exec);
                        return TxnOutcome::Aborted(cause);
                    }
                }
            }
            NextOp::Commit => {
                let op_start = trace_now(shared);
                let outcome = match install_staged_writes(shared, exec, replies) {
                    Ok(()) => run_commit_protocol(shared, exec, replies),
                    Err(cause) => {
                        abort_everywhere(shared, exec);
                        TxnOutcome::Aborted(cause)
                    }
                };
                push_span(
                    shared,
                    exec,
                    Track::Coordinator,
                    "op:commit",
                    op_start,
                    || {
                        if outcome.is_committed() {
                            "committed".to_string()
                        } else {
                            "aborted".to_string()
                        }
                    },
                );
                return outcome;
            }
            NextOp::Abort => {
                abort_everywhere(shared, exec);
                return TxnOutcome::Aborted(AbortCause::UserAbort);
            }
        }
    }
}

/// Executes a batched multi-get: the read quorums of every item assemble
/// under the configured fan-out strategy (parallel by default, so the
/// batch's RCP latency is the slowest quorum instead of the sum), and the
/// observed values come back in request order.
fn read_many(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
    items: &[ItemId],
) -> Result<Vec<(ItemId, Value)>, AbortCause> {
    let collectors: Vec<QuorumCollector> = if shared.stack.parallel_quorums && items.len() > 1 {
        assemble_quorums_parallel(shared, exec, replies, items, QuorumAccess::Read)?
    } else {
        let mut collectors = Vec::with_capacity(items.len());
        for item in items {
            collectors.push(single_quorum(
                shared,
                exec,
                replies,
                item,
                QuorumAccess::Read,
            )?);
        }
        collectors
    };
    let mut values = Vec::with_capacity(items.len());
    for (item, collector) in items.iter().zip(collectors) {
        let (value, version) = collector
            .latest_value()
            .ok_or_else(|| AbortCause::RcpTimeout { item: item.clone() })?;
        exec.observe_read(item, &value, version);
        exec.reads.insert(item.clone(), value.clone());
        values.push((item.clone(), value));
    }
    Ok(values)
}

/// Executes a read-modify-write: one read-for-update quorum (write access up
/// front, so no shared→exclusive upgrade is needed later), the new value
/// staged in client order, the observed value returned.
fn interactive_increment(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
    item: &ItemId,
    delta: i64,
) -> Result<Value, AbortCause> {
    let collector = single_quorum(shared, exec, replies, item, QuorumAccess::ReadForUpdate)?;
    let (current, observed_version) = collector
        .latest_value()
        .ok_or_else(|| AbortCause::RcpTimeout { item: item.clone() })?;
    let new_value = current.add_int(delta).ok_or(AbortCause::UserAbort)?;
    exec.observe_read(item, &current, observed_version);
    exec.reads.insert(item.clone(), current.clone());
    let version = new_write_version(shared, exec, &collector);
    exec.staged.push(StagedWrite::Assembled {
        item: item.clone(),
        value: new_value,
        sites: collector.responders(),
        version,
    });
    Ok(current)
}

/// Runs the write quorums of every deferred write (fan-out strategy below)
/// and folds the staged updates — in client order — into the per-site write
/// sets the ACP will distribute.
///
/// Two fan-out strategies exist, controlled by the protocol-stack knob
/// `parallel_quorums`. The default **parallel fan-out** sends the copy
/// accesses of *all* deferred writes up front and drains replies under one
/// deadline, so the commit's RCP latency is the slowest quorum instead of
/// the sum of all quorums. The **sequential** path assembles one quorum at
/// a time, exactly as the paper describes the RCP loop; it is kept both as
/// an experiment baseline and as a differential-testing oracle.
fn install_staged_writes(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
) -> Result<(), AbortCause> {
    let deferred: Vec<ItemId> = exec
        .staged
        .iter()
        .filter_map(|w| match w {
            StagedWrite::Deferred { item, .. } => Some(item.clone()),
            StagedWrite::Assembled { .. } => None,
        })
        .collect();

    let collectors: Vec<QuorumCollector> = if deferred.is_empty() {
        Vec::new()
    } else if shared.stack.parallel_quorums && deferred.len() > 1 {
        assemble_quorums_parallel(shared, exec, replies, &deferred, QuorumAccess::Write)?
    } else {
        let mut collectors = Vec::with_capacity(deferred.len());
        for item in &deferred {
            collectors.push(single_quorum(
                shared,
                exec,
                replies,
                item,
                QuorumAccess::Write,
            )?);
        }
        collectors
    };

    let mut next_collector = collectors.into_iter();
    for staged in std::mem::take(&mut exec.staged) {
        match staged {
            StagedWrite::Deferred { item, value } => {
                let collector = next_collector
                    .next()
                    .expect("one collector per deferred write");
                let version = new_write_version(shared, exec, &collector);
                exec.observe_write(&item, &value, version);
                for site in collector.responders() {
                    exec.writes_per_site.entry(site).or_default().push((
                        item.clone(),
                        value.clone(),
                        version,
                    ));
                }
            }
            StagedWrite::Assembled {
                item,
                value,
                sites,
                version,
            } => {
                exec.observe_write(&item, &value, version);
                for site in sites {
                    exec.writes_per_site.entry(site).or_default().push((
                        item.clone(),
                        value.clone(),
                        version,
                    ));
                }
            }
        }
    }
    Ok(())
}

/// One quorum being assembled during parallel fan-out.
struct QuorumRound {
    item: ItemId,
    access: QuorumAccess,
    collector: QuorumCollector,
    assembled: bool,
    /// First CCP denial observed by *this* round (abort causes must stay
    /// per-quorum so layer attribution matches the sequential path).
    ccp_cause: Option<AbortCause>,
}

impl QuorumRound {
    /// Whether an incoming `CopyReply` from `site` belongs to this round:
    /// the item and the exact access kind must match, the site must be one
    /// this round actually contacted, and the round must not have heard
    /// from the site yet. The last rule makes duplicate operations on the
    /// same item each collect their own copy of every site's answer instead
    /// of the first round swallowing all of them; the target rule keeps a
    /// wider quorum's replies (e.g. a write fan-out) from being absorbed by
    /// a narrower one on the same item (e.g. a one-site ROWA read whose
    /// vote map nevertheless lists every holder).
    fn matches(&self, item: &ItemId, prewrite: bool, for_update: bool, site: SiteId) -> bool {
        !self.assembled
            && self.item == *item
            && (self.access == QuorumAccess::Write) == prewrite
            && (self.access == QuorumAccess::ReadForUpdate) == for_update
            && self.collector.is_target(site)
            && !self.collector.has_response(site)
            && !self.collector.has_failure(site)
    }
}

/// Parallel fan-out over a batch of same-kind quorums (a `ReadMany` batch
/// or the deferred writes at commit): send the copy accesses of every
/// quorum first, then drain replies for all of them under a single
/// deadline. Returns the assembled collectors in input order.
fn assemble_quorums_parallel(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
    items: &[ItemId],
    access: QuorumAccess,
) -> Result<Vec<QuorumCollector>, AbortCause> {
    // Phase 1: plan and send everything.
    let fanout_start = trace_now(shared);
    let mut rounds: Vec<QuorumRound> = Vec::with_capacity(items.len());
    for item in items {
        let collector = start_quorum(shared, exec, item, access, &mut |site, msg| {
            shared.send(NodeId::Site(site), msg)
        })?;
        // A plan that is unsatisfiable from the start (e.g. a tree-quorum
        // write while the tree root is down plans zero targets) must abort
        // now, not after the fan-out deadline expires.
        if collector.outcome() == QuorumOutcome::Impossible {
            return Err(collector.abort_cause());
        }
        let assembled = collector.is_assembled();
        if assembled {
            let responders = collector.responders().len();
            finish_quorum_span(shared, exec, access, item, fanout_start, responders);
        }
        rounds.push(QuorumRound {
            item: item.clone(),
            access,
            collector,
            assembled,
            ccp_cause: None,
        });
    }

    // Phase 2: one deadline for the whole fan-out.
    let deadline = Instant::now() + shared.stack.quorum_timeout;
    let mut outstanding = rounds.iter().filter(|r| !r.assembled).count();

    while outstanding > 0 {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            let slowest = rounds
                .iter()
                .find(|r| !r.assembled)
                .expect("outstanding > 0");
            return Err(slowest.ccp_cause.clone().unwrap_or(AbortCause::RcpTimeout {
                item: slowest.item.clone(),
            }));
        }
        let envelope = match replies.recv_timeout(remaining) {
            Ok(envelope) => envelope,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(AbortCause::SiteFailure { site: shared.id })
            }
        };
        let from = envelope.from;
        let Msg::CopyReply {
            item: reply_item,
            prewrite,
            for_update,
            result,
            ..
        } = envelope.payload
        else {
            // Late votes/acks from an earlier operation: ignore.
            continue;
        };
        let Some(site) = from.as_site() else { continue };
        // Route the reply to the first still-pending round it can serve.
        // Duplicate items each sent their own requests, so reply counts
        // line up even when keys collide.
        let Some(round) = rounds
            .iter_mut()
            .find(|r| r.matches(&reply_item, prewrite, for_update, site))
        else {
            continue; // stale reply for an already-assembled quorum
        };
        if from != shared.node {
            shared.net.counters().record_round_trip();
        }
        push_span(
            shared,
            exec,
            Track::Coordinator,
            "quorum:leg",
            fanout_start,
            || format!("site{} {reply_item}", site.0),
        );
        match result {
            CopyAccessResult::Granted { value, version } => {
                // The responder holds CCP resources on our behalf from this
                // moment, whether or not its quorum ends up assembling.
                exec.touched.insert(site);
                round.collector.record_response(QuorumResponse {
                    site,
                    version,
                    value,
                });
            }
            CopyAccessResult::Denied(cause) => {
                if round.ccp_cause.is_none() {
                    round.ccp_cause = Some(cause);
                }
                round.collector.record_failure(site);
            }
            CopyAccessResult::NoSuchCopy => {
                round.collector.record_failure(site);
            }
        }
        match round.collector.outcome() {
            QuorumOutcome::Assembled => {
                round.assembled = true;
                outstanding -= 1;
                let item = round.item.clone();
                let responders = round.collector.responders().len();
                finish_quorum_span(shared, exec, access, &item, fanout_start, responders);
            }
            QuorumOutcome::Impossible => {
                return Err(round
                    .ccp_cause
                    .clone()
                    .unwrap_or_else(|| round.collector.abort_cause()));
            }
            QuorumOutcome::Pending => {}
        }
    }

    // Every quorum assembled: all responders hold resources on our behalf.
    for round in &rounds {
        for site in round.collector.responders() {
            exec.touched.insert(site);
        }
    }
    Ok(rounds.into_iter().map(|r| r.collector).collect())
}

/// The replica version number a write must install.
///
/// Under 2PL, write quorums are serialized by exclusive locks, so
/// `max(version in quorum) + 1` is strictly increasing in commit order.
/// Under (MV)TSO, conflicting pre-writes are *not* serialized before commit
/// — two concurrent writers could both observe the same committed version
/// and install colliding numbers — so the version is derived from the
/// transaction's globally unique timestamp instead, which is exactly the
/// order those protocols serialize by.
fn new_write_version(
    shared: &Arc<SiteShared>,
    exec: &TxnExecution,
    collector: &QuorumCollector,
) -> Version {
    match shared.stack.ccp {
        rainbow_common::protocol::CcpKind::TwoPhaseLocking => collector.next_version(),
        rainbow_common::protocol::CcpKind::TimestampOrdering
        | rainbow_common::protocol::CcpKind::MultiversionTimestampOrdering => {
            // Encode (counter, site) into a single monotonic number; site ids
            // are far below 1024 in any Rainbow configuration.
            Version(exec.ts.counter * 1024 + u64::from(exec.ts.site % 1024))
        }
    }
}

/// The three copy-access patterns the coordinator issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QuorumAccess {
    /// Read quorum, shared access.
    Read,
    /// Write quorum, pre-write access (version numbers only).
    Write,
    /// Write quorum whose accesses also return the current value
    /// (read-modify-write operations).
    ReadForUpdate,
}

/// Plans one quorum and sends its copy-access requests to every target
/// site, returning the collector the replies feed into. Shared by the
/// sequential and the parallel fan-out paths, and by the reactor (which
/// passes an outbox-queueing `send` so same-tick requests to one site
/// coalesce into a single envelope; the threads path sends directly).
fn start_quorum(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    item: &ItemId,
    access: QuorumAccess,
    send: &mut dyn FnMut(SiteId, Msg),
) -> Result<QuorumCollector, AbortCause> {
    let schema = shared.schema.read();
    let placement = match schema.replication.placement(item) {
        Some(p) => p.clone(),
        None => {
            return Err(AbortCause::RcpQuorumUnavailable {
                item: item.clone(),
                collected: 0,
                required: 0,
            })
        }
    };
    drop(schema);

    // The fault controller's live site-status view: the planners route
    // around (reads), shrink their write sets to (available copies, primary
    // copy) or degrade their quorum trees around (tree quorum) the sites
    // known to be down. Partitioned-but-alive sites are deliberately *not*
    // in this list — treating them as down would let write sets shrink on
    // both sides of a partition and diverge; instead they stay targets and
    // the quorum times out, aborting the transaction.
    let suspected_down: Vec<SiteId> = shared.net.faults().crashed_sites();
    let plan = match access {
        QuorumAccess::Read => {
            shared
                .rcp
                .plan_read(item, &placement, Some(shared.id), &suspected_down)
        }
        QuorumAccess::Write | QuorumAccess::ReadForUpdate => {
            shared.rcp.plan_write(item, &placement, &suspected_down)
        }
    };
    let targets = plan.targets.clone();
    let collector = plan.collector();

    for target in &targets {
        let msg = match access {
            QuorumAccess::Write => Msg::CopyPrewrite {
                txn: exec.txn,
                ts: exec.ts,
                item: item.clone(),
            },
            QuorumAccess::Read => Msg::CopyRead {
                txn: exec.txn,
                ts: exec.ts,
                item: item.clone(),
                for_update: false,
            },
            QuorumAccess::ReadForUpdate => Msg::CopyRead {
                txn: exec.txn,
                ts: exec.ts,
                item: item.clone(),
                for_update: true,
            },
        };
        send(*target, msg);
        exec.contacted.insert(*target);
        if *target != shared.id {
            exec.messages += 1;
        }
    }
    Ok(collector)
}

/// Sends the copy-access requests for one quorum and collects responses
/// until the quorum is assembled, impossible, or the quorum timeout expires.
fn single_quorum(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
    item: &ItemId,
    access: QuorumAccess,
) -> Result<QuorumCollector, AbortCause> {
    // Only plain pre-writes come back flagged as pre-write replies;
    // read-for-update accesses reply like reads (they carry the value).
    let is_prewrite = access == QuorumAccess::Write;
    let fanout_start = trace_now(shared);
    let mut collector = start_quorum(shared, exec, item, access, &mut |site, msg| {
        shared.send(NodeId::Site(site), msg)
    })?;

    let deadline = Instant::now() + shared.stack.quorum_timeout;
    let mut first_ccp_cause: Option<AbortCause> = None;

    loop {
        match collector.outcome() {
            QuorumOutcome::Assembled => {
                // Every responder holds CCP resources on our behalf.
                for site in collector.responders() {
                    exec.touched.insert(site);
                }
                let responders = collector.responders().len();
                finish_quorum_span(shared, exec, access, item, fanout_start, responders);
                return Ok(collector);
            }
            QuorumOutcome::Impossible => {
                // Responders so far still hold resources and must be released
                // by the caller's abort path.
                for site in collector.responders() {
                    exec.touched.insert(site);
                }
                return Err(first_ccp_cause.unwrap_or_else(|| collector.abort_cause()));
            }
            QuorumOutcome::Pending => {}
        }

        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            for site in collector.responders() {
                exec.touched.insert(site);
            }
            return Err(first_ccp_cause.unwrap_or(AbortCause::RcpTimeout { item: item.clone() }));
        }
        match replies.recv_timeout(remaining) {
            Ok(envelope) => {
                let from_site = envelope.from.as_site();
                if let Msg::CopyReply {
                    item: reply_item,
                    prewrite,
                    for_update,
                    result,
                    ..
                } = envelope.payload
                {
                    if reply_item != *item
                        || prewrite != is_prewrite
                        || for_update != (access == QuorumAccess::ReadForUpdate)
                    {
                        continue; // stale reply from an earlier operation
                    }
                    let Some(site) = from_site else { continue };
                    if envelope.from != shared.node {
                        shared.net.counters().record_round_trip();
                    }
                    push_span(
                        shared,
                        exec,
                        Track::Coordinator,
                        "quorum:leg",
                        fanout_start,
                        || format!("site{} {reply_item}", site.0),
                    );
                    match result {
                        CopyAccessResult::Granted { value, version } => {
                            collector.record_response(QuorumResponse {
                                site,
                                version,
                                value,
                            });
                        }
                        CopyAccessResult::Denied(cause) => {
                            if first_ccp_cause.is_none() {
                                first_ccp_cause = Some(cause);
                            }
                            collector.record_failure(site);
                        }
                        CopyAccessResult::NoSuchCopy => {
                            collector.record_failure(site);
                        }
                    }
                }
                // Other message kinds (late votes/acks from a previous
                // operation set) are ignored.
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(AbortCause::SiteFailure { site: shared.id })
            }
        }
    }
}

/// Runs the atomic commit protocol over every touched site and returns the
/// final transaction outcome.
fn run_commit_protocol(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    replies: &Receiver<Envelope<Msg>>,
) -> TxnOutcome {
    let participants: Vec<SiteId> = exec.touched.iter().copied().collect();
    let mut coordinator = Coordinator::new(exec.txn, shared.stack.acp, participants.clone());
    let mut abort_cause: Option<AbortCause> = None;
    let acp_start = trace_now(shared);
    // Set when the decision goes out: closes the voting span, opens the
    // decision-distribution span.
    let mut decision_start: Option<u64> = None;

    let action = coordinator.start();
    if let CoordinatorAction::Complete(decision) = action {
        // No participants: a transaction that touched nothing commits
        // trivially.
        return match decision {
            Decision::Commit => TxnOutcome::Committed,
            Decision::Abort => TxnOutcome::Aborted(AbortCause::UserAbort),
        };
    }
    perform_action(shared, exec, action, &mut abort_cause);

    let mut deadline = Instant::now() + shared.stack.commit_timeout;
    loop {
        if coordinator.state() == rainbow_commit::CoordinatorState::Completed {
            break;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        let event = if remaining.is_zero() {
            None
        } else {
            match replies.recv_timeout(remaining) {
                Ok(envelope) => Some(envelope),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => None,
            }
        };
        let action = match event {
            Some(envelope) => {
                let from_site = envelope.from.as_site();
                match (envelope.payload, from_site) {
                    (Msg::AcpVote { vote, .. }, Some(site)) => {
                        if vote == Vote::No && abort_cause.is_none() {
                            abort_cause = Some(AbortCause::AcpVotedNo { participant: site });
                        }
                        coordinator.on_vote(site, vote)
                    }
                    (Msg::AcpPreCommitAck { .. }, Some(site)) => coordinator.on_precommit_ack(site),
                    (Msg::AcpAck { .. }, Some(site)) => coordinator.on_ack(site),
                    _ => CoordinatorAction::Wait,
                }
            }
            None => {
                if abort_cause.is_none() {
                    abort_cause = Some(AbortCause::AcpTimeout {
                        phase: match coordinator.state() {
                            rainbow_commit::CoordinatorState::CollectingVotes => "prepare".into(),
                            rainbow_commit::CoordinatorState::CollectingPreCommitAcks => {
                                "pre-commit".into()
                            }
                            _ => "ack".into(),
                        },
                    });
                }
                coordinator.on_timeout()
            }
        };
        // Phase transitions get a fresh timeout window.
        match action {
            CoordinatorAction::SendPreCommit(_) | CoordinatorAction::SendDecision(..) => {
                deadline = Instant::now() + shared.stack.commit_timeout;
            }
            _ => {}
        }
        if matches!(action, CoordinatorAction::SendDecision(..)) && decision_start.is_none() {
            push_span(
                shared,
                exec,
                Track::Coordinator,
                "acp:prepare",
                acp_start,
                || format!("{} participants", participants.len()),
            );
            decision_start = Some(trace_now(shared));
        }
        if perform_action(shared, exec, action, &mut abort_cause) {
            break;
        }
    }

    if let Some(start) = decision_start {
        push_span(
            shared,
            exec,
            Track::Coordinator,
            "acp:decision",
            start,
            || format!("{:?}", coordinator.decision()),
        );
    }

    match coordinator.decision() {
        Some(Decision::Commit) => TxnOutcome::Committed,
        Some(Decision::Abort) => {
            TxnOutcome::Aborted(abort_cause.unwrap_or(AbortCause::AcpTimeout {
                phase: "prepare".into(),
            }))
        }
        None => TxnOutcome::Orphaned,
    }
}

/// Performs one coordinator action (sending the corresponding messages).
/// Returns true when the protocol is complete.
fn perform_action(
    shared: &Arc<SiteShared>,
    exec: &mut TxnExecution,
    action: CoordinatorAction,
    _abort_cause: &mut Option<AbortCause>,
) -> bool {
    match action {
        CoordinatorAction::SendPrepare(targets) => {
            for target in targets {
                let writes = exec
                    .writes_per_site
                    .get(&target)
                    .cloned()
                    .unwrap_or_default();
                shared.send(
                    NodeId::Site(target),
                    Msg::AcpPrepare {
                        txn: exec.txn,
                        ts: exec.ts,
                        writes,
                    },
                );
                if target != shared.id {
                    exec.messages += 1;
                }
            }
            false
        }
        CoordinatorAction::SendPreCommit(targets) => {
            for target in targets {
                shared.send(NodeId::Site(target), Msg::AcpPreCommit { txn: exec.txn });
                if target != shared.id {
                    exec.messages += 1;
                }
            }
            false
        }
        CoordinatorAction::SendDecision(decision, targets) => {
            // Force the decision at the coordinator before telling anyone.
            shared.decided.lock().insert(exec.txn, decision);
            for target in targets {
                shared.send(
                    NodeId::Site(target),
                    Msg::AcpDecision {
                        txn: exec.txn,
                        decision,
                    },
                );
                if target != shared.id {
                    exec.messages += 1;
                }
            }
            false
        }
        CoordinatorAction::Complete(_) => true,
        CoordinatorAction::Wait => false,
    }
}

/// Sends a release notice (an abort decision) to every site that was
/// contacted but is not a commit-protocol participant. Such a site may have
/// granted a copy access *after* the quorum was already assembled (or after
/// it became impossible); it holds locks for this transaction but will never
/// hear from the commit protocol, so it is told to drop them now instead of
/// waiting for the janitor. Aborting at a non-participant is always safe:
/// the site has no staged writes for this transaction.
fn release_stragglers(shared: &Arc<SiteShared>, exec: &mut TxnExecution) {
    let stragglers: Vec<SiteId> = exec
        .contacted
        .iter()
        .filter(|site| !exec.touched.contains(site))
        .copied()
        .collect();
    for site in stragglers {
        shared.send(
            NodeId::Site(site),
            Msg::AcpDecision {
                txn: exec.txn,
                decision: Decision::Abort,
            },
        );
        if site != shared.id {
            exec.messages += 1;
        }
    }
}

/// Fire-and-forget abort distribution used when the transaction fails before
/// the commit protocol starts: every touched site must release the
/// transaction's CCP resources and discard staged state.
fn abort_everywhere(shared: &Arc<SiteShared>, exec: &mut TxnExecution) {
    shared.decided.lock().insert(exec.txn, Decision::Abort);
    for site in exec.touched.clone() {
        shared.send(
            NodeId::Site(site),
            Msg::AcpDecision {
                txn: exec.txn,
                decision: Decision::Abort,
            },
        );
        if site != shared.id {
            exec.messages += 1;
        }
    }
}
