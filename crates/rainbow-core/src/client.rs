//! The interactive client API: `Client` / `Txn` handles.
//!
//! The paper's Rainbow is an *interactive* teaching system — a session
//! configures the stack, then users drive transactions and watch each layer
//! react. This module is that interaction model as a first-class API:
//!
//! ```text
//! let mut client = cluster.client();
//! let mut txn = client.begin("transfer")?;
//! let balance = txn.read("checking")?;        // read quorum runs NOW
//! if balance.as_int().unwrap_or(0) >= 100 {
//!     txn.increment("checking", -100)?;       // read-for-update quorum
//!     txn.increment("savings", 100)?;
//! }
//! let receipt = txn.commit()?;                // write quorums + ACP
//! ```
//!
//! Every step can fail with a typed, layer-attributed [`TxnError`] (CCP
//! deadlock/conflict, RCP quorum unreachable, ACP termination), an
//! unfinished [`Txn`] **aborts on
//! drop** so CCP resources never linger, and [`Client::run`] packages the
//! abort-and-retry loop (fresh transaction, seeded exponential backoff,
//! rotating home site) that conversational workloads need under contention
//! and faults.
//!
//! One-shot [`TxnSpec`] submission (`Cluster::submit`, the Session API, the
//! workload runners) is a thin adapter that replays the spec through one of
//! these conversations — the coordinator has exactly one execution path.

use crate::messages::{Msg, NextOp, OpReply};
use crate::metrics::ProgressMonitor;
use crossbeam_channel::Receiver;
use parking_lot::Mutex;
use rainbow_common::txn::{AbortCause, TxnError, TxnOutcome, TxnReceipt, TxnResult, TxnSpec};
use rainbow_common::{ItemId, Operation, SiteId, TxnId, Value};
use rainbow_net::{Envelope, NetHandle, NodeId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The sentinel transaction id reported for conversations that never got an
/// id assigned (the home site never acknowledged the begin).
pub(crate) fn orphan_txn_id() -> TxnId {
    TxnId::new(SiteId(u32::MAX), 0)
}

/// The synthetic result recorded for a conversation whose fate stayed
/// unknown to the client (the paper's "orphan transactions" statistic).
pub(crate) fn orphan_result(id: TxnId, label: &str, elapsed: Duration) -> TxnResult {
    TxnResult {
        id,
        label: label.to_string(),
        outcome: TxnOutcome::Orphaned,
        reads: BTreeMap::new(),
        response_time: elapsed,
        restarts: 0,
        messages: 0,
    }
}

/// A client endpoint registered on the simulated network: its node identity,
/// its mailbox, and everything a conversation needs to reach the cluster.
/// Cores are pooled by the cluster so repeated `Cluster::client()` /
/// `Cluster::submit` calls do not grow the network registry without bound.
pub(crate) struct ClientCore {
    pub(crate) node: NodeId,
    pub(crate) mailbox: Receiver<Envelope<Msg>>,
    pub(crate) net: NetHandle<Msg>,
    pub(crate) monitor: Arc<ProgressMonitor>,
    pub(crate) sites: Vec<SiteId>,
    /// Round-robin cursor for home-site selection, shared with the cluster
    /// so interleaved clients spread load the way `Cluster::submit` always
    /// did.
    pub(crate) round_robin: Arc<AtomicU64>,
    /// Request-id source, shared across every client of the cluster.
    pub(crate) next_request: Arc<AtomicU64>,
    /// How long the client waits for any single conversation reply before
    /// declaring the transaction orphaned. The timeout now spans an open
    /// conversation: each round trip gets a fresh window.
    pub(crate) timeout: Duration,
}

impl ClientCore {
    /// Picks the next round-robin home site.
    fn pick_home(&self) -> SiteId {
        let index = self.round_robin.fetch_add(1, Ordering::Relaxed) as usize % self.sites.len();
        self.sites[index]
    }

    /// Opens a conversation: sends `TxnBegin` and waits for the home site to
    /// acknowledge with the assigned transaction id. Records the submission
    /// (and, on failure, the orphan) with the progress monitor.
    pub(crate) fn begin_conversation(
        &mut self,
        label: &str,
        home: Option<SiteId>,
    ) -> Result<Txn<'_>, TxnError> {
        let home = home.unwrap_or_else(|| self.pick_home());
        let request = self.next_request.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        self.monitor.record_submitted();

        let send = self.net.send(
            self.node,
            NodeId::Site(home),
            Msg::TxnBegin {
                request,
                label: label.to_string(),
            },
        );
        if send.is_err() {
            // The network is already torn down: nobody will ever answer.
            self.monitor
                .record_result(&orphan_result(orphan_txn_id(), label, started.elapsed()));
            return Err(TxnError::Orphaned { home });
        }

        let deadline = started + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.monitor.record_result(&orphan_result(
                    orphan_txn_id(),
                    label,
                    started.elapsed(),
                ));
                return Err(TxnError::Orphaned { home });
            }
            let Ok(envelope) = self.mailbox.recv_timeout(remaining) else {
                self.monitor.record_result(&orphan_result(
                    orphan_txn_id(),
                    label,
                    started.elapsed(),
                ));
                return Err(TxnError::Orphaned { home });
            };
            match envelope.payload {
                Msg::TxnBegan { request: r, txn } if r == request => {
                    return Ok(Txn {
                        core: self,
                        request,
                        id: txn,
                        home,
                        label: label.to_string(),
                        started,
                        finished: None,
                    });
                }
                // Anything else is a leftover of an earlier conversation on
                // this core (e.g. the TxnDone of a dropped handle): skip.
                _ => continue,
            }
        }
    }

    /// Replays a one-shot [`TxnSpec`] through an interactive conversation —
    /// the single adapter behind `Cluster::submit`, `Cluster::run_workload`
    /// and the Session API. Operation semantics match the conversation
    /// exactly: reads run their quorum immediately, writes buffer until
    /// commit, increments read-for-update; the first failing operation
    /// aborts the transaction.
    pub(crate) fn replay(&mut self, spec: &TxnSpec) -> TxnResult {
        let timeout = self.timeout;
        let mut txn = match self.begin_conversation(&spec.label, spec.home) {
            Ok(txn) => txn,
            // Already recorded as an orphan by `begin_conversation`.
            Err(_) => return orphan_result(orphan_txn_id(), &spec.label, timeout),
        };
        let ops = &spec.operations;
        let mut index = 0;
        while index < ops.len() {
            // Consecutive reads replay as one ReadMany batch, so a one-shot
            // spec keeps the parallel quorum fan-out it always had.
            let step = match &ops[index] {
                Operation::Read { .. } => {
                    let mut items = Vec::new();
                    while let Some(Operation::Read { item }) = ops.get(index) {
                        items.push(item.clone());
                        index += 1;
                    }
                    txn.read_many(items).map(|_| ())
                }
                Operation::Write { item, value } => {
                    index += 1;
                    txn.write(item.clone(), value.clone())
                }
                Operation::Increment { item, delta } => {
                    index += 1;
                    txn.increment(item.clone(), *delta).map(|_| ())
                }
            };
            if step.is_err() {
                return txn.into_result();
            }
        }
        let _ = txn.finish_commit();
        txn.into_result()
    }
}

/// Retry behaviour of [`Client::run`]: bounded attempts with seeded
/// exponential backoff, so abort-and-retry experiments stay reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum transaction attempts (including the first).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles every further attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The sleep before attempt number `attempt` (1-based for retries):
    /// exponential in the attempt, plus deterministic jitter so colliding
    /// retriers de-synchronize identically across runs with the same seed.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let jitter_space = self.base_backoff.as_micros() as u64;
        let jitter = if jitter_space == 0 {
            0
        } else {
            splitmix64(self.seed.wrapping_add(attempt as u64)) % jitter_space
        };
        (exp + Duration::from_micros(jitter)).min(self.max_backoff)
    }
}

/// SplitMix64: a tiny, dependency-free deterministic mixer for backoff
/// jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Shared pool of client endpoints, owned by the cluster. Checked-out cores
/// return here when their [`Client`] drops, so client nodes are reused
/// instead of accumulating in the network registry.
pub(crate) struct ClientPool {
    cores: Mutex<Vec<ClientCore>>,
}

impl ClientPool {
    pub(crate) fn new() -> Self {
        ClientPool {
            cores: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn take(&self) -> Option<ClientCore> {
        self.cores.lock().pop()
    }

    pub(crate) fn put(&self, core: ClientCore) {
        self.cores.lock().push(core);
    }
}

/// An interactive client of a running cluster. Obtained from
/// `Cluster::client()`; one client drives one transaction at a time
/// (enforced by the borrow checker: [`Txn`] borrows the client mutably).
pub struct Client<'a> {
    pool: &'a ClientPool,
    core: Option<ClientCore>,
    retry: RetryPolicy,
}

impl<'a> Client<'a> {
    pub(crate) fn new(pool: &'a ClientPool, core: ClientCore) -> Self {
        Client {
            pool,
            core: Some(core),
            retry: RetryPolicy::default(),
        }
    }

    fn core_mut(&mut self) -> &mut ClientCore {
        self.core.as_mut().expect("core present until drop")
    }

    /// Replaces the retry policy used by [`Client::run`].
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Begins an interactive transaction at a round-robin-chosen home site.
    pub fn begin(&mut self, label: impl Into<String>) -> Result<Txn<'_>, TxnError> {
        let label = label.into();
        self.core_mut().begin_conversation(&label, None)
    }

    /// Begins an interactive transaction pinned to a home site, like the
    /// manual workload panel does.
    pub fn begin_at(
        &mut self,
        label: impl Into<String>,
        home: SiteId,
    ) -> Result<Txn<'_>, TxnError> {
        let label = label.into();
        self.core_mut().begin_conversation(&label, Some(home))
    }

    /// Runs `body` inside a transaction, committing when it returns `Ok` —
    /// and retrying the whole conversation (fresh transaction, rotated home
    /// site, seeded exponential backoff) when the attempt fails with a
    /// retryable [`TxnError`]. This is the abort-and-retry combinator for
    /// conversational workloads: deadlock victims, quorum timeouts and
    /// orphaned conversations are retried; deliberate aborts are not.
    ///
    /// On success, returns the body's value together with the commit
    /// receipt; `receipt.restarts` counts the aborted attempts.
    pub fn run<T>(
        &mut self,
        label: impl Into<String>,
        mut body: impl FnMut(&mut Txn) -> Result<T, TxnError>,
    ) -> Result<(T, TxnReceipt), TxnError> {
        let label = label.into();
        let retry = self.retry.clone();
        let mut last_error: Option<TxnError> = None;
        for attempt in 0..retry.max_attempts {
            if attempt > 0 {
                std::thread::sleep(retry.backoff(attempt));
            }
            let mut txn = match self.begin(label.clone()) {
                Ok(txn) => txn,
                Err(error) if error.is_retryable() => {
                    last_error = Some(error);
                    continue;
                }
                Err(error) => return Err(error),
            };
            match body(&mut txn) {
                Ok(value) => match txn.commit() {
                    Ok(mut receipt) => {
                        receipt.restarts = attempt;
                        return Ok((value, receipt));
                    }
                    Err(error) if error.is_retryable() => {
                        last_error = Some(error);
                        continue;
                    }
                    Err(error) => return Err(error),
                },
                Err(error) => {
                    txn.abort();
                    if error.is_retryable() {
                        last_error = Some(error);
                        continue;
                    }
                    return Err(error);
                }
            }
        }
        Err(last_error.unwrap_or(TxnError::Finished))
    }

    /// Replays a one-shot [`TxnSpec`] through an interactive conversation
    /// and returns its full result — the adapter `Cluster::submit` and the
    /// Session layer are built on.
    pub fn replay_spec(&mut self, spec: &TxnSpec) -> TxnResult {
        self.core_mut().replay(spec)
    }
}

impl Drop for Client<'_> {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            self.pool.put(core);
        }
    }
}

/// An open interactive transaction. Operations run through the protocol
/// stack as they are issued: reads assemble their read quorum immediately
/// and return the observed value, writes buffer until [`Txn::commit`]
/// installs them through write quorums and the ACP, increments assemble a
/// read-for-update quorum immediately. Dropping an unfinished handle aborts
/// the transaction so no CCP resource outlives the conversation.
pub struct Txn<'c> {
    core: &'c mut ClientCore,
    request: u64,
    id: TxnId,
    home: SiteId,
    label: String,
    started: Instant,
    /// The final result, once the conversation terminated (set exactly once;
    /// also recorded with the progress monitor exactly once).
    finished: Option<TxnResult>,
}

/// What the conversation heard back after sending one command; produced by
/// the single shared send/receive loop (`Txn::send_and_await`).
enum ConversationEvent {
    /// A non-terminal reply from the coordinator.
    Reply(OpReply),
    /// The terminal result: the transaction is over.
    Done(TxnResult),
    /// No coordinator is driving the transaction any more.
    Gone,
    /// Nothing within the client timeout (or the network is down).
    NoAnswer,
}

impl Txn<'_> {
    /// The transaction id the home site assigned.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The home site coordinating this transaction.
    pub fn home(&self) -> SiteId {
        self.home
    }

    /// The label the transaction was begun with.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Terminates the conversation with `result`, recording it with the
    /// progress monitor (each conversation records exactly one result).
    fn finish(&mut self, result: TxnResult) {
        if self.finished.is_none() {
            self.core.monitor.record_result(&result);
            self.finished = Some(result);
        }
    }

    /// Terminates with a client-synthesized outcome (orphan, drop-abort).
    fn finish_synthetic(&mut self, outcome: TxnOutcome) {
        let result = TxnResult {
            id: self.id,
            label: self.label.clone(),
            outcome,
            reads: BTreeMap::new(),
            response_time: self.started.elapsed(),
            restarts: 0,
            messages: 0,
        };
        self.finish(result);
    }

    /// Sends one command and waits for the conversation's next relevant
    /// event: the coordinator's reply, the terminal `TxnDone`, a `Gone`
    /// notice, or no answer within the client timeout. This is the single
    /// send/receive loop every operation shares; callers differ only in how
    /// they map the event to their outcome.
    fn send_and_await(&mut self, op: NextOp) -> ConversationEvent {
        let send = self.core.net.send(
            self.core.node,
            NodeId::Site(self.home),
            Msg::TxnOp { txn: self.id, op },
        );
        if send.is_err() {
            return ConversationEvent::NoAnswer;
        }
        let deadline = Instant::now() + self.core.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return ConversationEvent::NoAnswer;
            }
            let Ok(envelope) = self.core.mailbox.recv_timeout(remaining) else {
                return ConversationEvent::NoAnswer;
            };
            match envelope.payload {
                Msg::TxnOpReply {
                    txn,
                    reply: OpReply::Gone,
                } if txn == self.id => return ConversationEvent::Gone,
                Msg::TxnOpReply { txn, reply } if txn == self.id => {
                    return ConversationEvent::Reply(reply)
                }
                Msg::TxnDone { request, result } if request == self.request => {
                    return ConversationEvent::Done(result)
                }
                // Leftovers of earlier conversations on this core: skip.
                _ => continue,
            }
        }
    }

    /// Sends one non-terminal command and returns its reply. Terminal
    /// events (a `TxnDone`, a vanished coordinator, a client timeout)
    /// finish the handle and surface as errors.
    fn command(&mut self, op: NextOp) -> Result<OpReply, TxnError> {
        if self.finished.is_some() {
            return Err(TxnError::Finished);
        }
        match self.send_and_await(op) {
            ConversationEvent::Reply(reply) => Ok(reply),
            ConversationEvent::Done(result) => {
                let error = match &result.outcome {
                    TxnOutcome::Aborted(cause) => TxnError::Aborted(cause.clone()),
                    TxnOutcome::Orphaned => TxnError::Orphaned { home: self.home },
                    // A commit decision can only answer a Commit command,
                    // which is handled by `finish_commit`.
                    TxnOutcome::Committed => TxnError::Finished,
                };
                self.finish(result);
                Err(error)
            }
            ConversationEvent::Gone => {
                // The coordinator no longer knows the transaction: its fate
                // never became visible to this client.
                self.finish_synthetic(TxnOutcome::Orphaned);
                Err(TxnError::Expired)
            }
            ConversationEvent::NoAnswer => {
                self.finish_synthetic(TxnOutcome::Orphaned);
                Err(TxnError::Orphaned { home: self.home })
            }
        }
    }

    /// Reads `item`: the read quorum runs immediately and the observed
    /// (highest-versioned in-quorum) value is returned mid-transaction.
    pub fn read(&mut self, item: impl Into<ItemId>) -> Result<Value, TxnError> {
        let item = item.into();
        match self.command(NextOp::Read { item })? {
            OpReply::Value { value, .. } => Ok(value),
            _ => Err(TxnError::Expired),
        }
    }

    /// Reads several items as one batch: their read quorums assemble
    /// together (parallel fan-out when enabled, so the batch costs one
    /// slowest-quorum latency instead of the sum) and the observed values
    /// come back in request order. The multi-get of the interactive API.
    pub fn read_many(
        &mut self,
        items: impl IntoIterator<Item = impl Into<ItemId>>,
    ) -> Result<Vec<(ItemId, Value)>, TxnError> {
        let items: Vec<ItemId> = items.into_iter().map(Into::into).collect();
        if items.is_empty() {
            return Ok(Vec::new());
        }
        match self.command(NextOp::ReadMany { items })? {
            OpReply::Values { values } => Ok(values),
            _ => Err(TxnError::Expired),
        }
    }

    /// Buffers a write of `value` into `item`. The write quorum runs when
    /// the transaction commits; the value is installed through the ACP.
    pub fn write(
        &mut self,
        item: impl Into<ItemId>,
        value: impl Into<Value>,
    ) -> Result<(), TxnError> {
        let item = item.into();
        let value = value.into();
        match self.command(NextOp::BufferWrite { item, value })? {
            OpReply::Buffered => Ok(()),
            _ => Err(TxnError::Expired),
        }
    }

    /// Read-modify-write: adds `delta` to the integer value of `item` and
    /// returns the observed pre-increment value. The write access is taken
    /// up front (read-for-update), so no shared→exclusive upgrade is needed
    /// later.
    pub fn increment(&mut self, item: impl Into<ItemId>, delta: i64) -> Result<Value, TxnError> {
        let item = item.into();
        match self.command(NextOp::Increment { item, delta })? {
            OpReply::Value { value, .. } => Ok(value),
            _ => Err(TxnError::Expired),
        }
    }

    /// Drives the commit and stores the final result; shared by
    /// [`Txn::commit`] and the spec-replay adapter.
    fn finish_commit(&mut self) -> Result<(), TxnError> {
        if self.finished.is_some() {
            return Err(TxnError::Finished);
        }
        match self.send_and_await(NextOp::Commit) {
            ConversationEvent::Done(result) => {
                let outcome = match &result.outcome {
                    TxnOutcome::Committed => Ok(()),
                    TxnOutcome::Aborted(cause) => Err(TxnError::Aborted(cause.clone())),
                    TxnOutcome::Orphaned => Err(TxnError::Orphaned { home: self.home }),
                };
                self.finish(result);
                outcome
            }
            // A Commit command is only ever answered with TxnDone or Gone;
            // any other event means the coordinator is unreachable or lost.
            ConversationEvent::Gone | ConversationEvent::Reply(_) => {
                self.finish_synthetic(TxnOutcome::Orphaned);
                Err(TxnError::Expired)
            }
            ConversationEvent::NoAnswer => {
                self.finish_synthetic(TxnOutcome::Orphaned);
                Err(TxnError::Orphaned { home: self.home })
            }
        }
    }

    /// Commits: the buffered writes are installed through their write
    /// quorums, then the atomic commit protocol decides. Consumes the
    /// handle; on success the receipt carries everything the conversation
    /// observed and cost.
    pub fn commit(mut self) -> Result<TxnReceipt, TxnError> {
        self.finish_commit()?;
        let result = self
            .finished
            .as_ref()
            .expect("finish_commit set the result");
        Ok(TxnReceipt::from_result(result).expect("finish_commit Ok means committed"))
    }

    /// Aborts the transaction, waiting for the coordinator to confirm that
    /// every CCP resource is released (best effort: a vanished coordinator
    /// is recorded as an abort anyway and its sites are cleaned by the
    /// janitor).
    pub fn abort(mut self) {
        self.finish_abort();
    }

    fn finish_abort(&mut self) {
        if self.finished.is_some() {
            return;
        }
        match self.send_and_await(NextOp::Abort) {
            ConversationEvent::Done(result) => self.finish(result),
            // No confirmation: the abort was still initiated (or the
            // coordinator is already gone and the janitor cleans up), so the
            // conversation is truthfully an abort.
            ConversationEvent::Gone | ConversationEvent::Reply(_) | ConversationEvent::NoAnswer => {
                self.finish_synthetic(TxnOutcome::Aborted(AbortCause::UserAbort))
            }
        }
    }

    /// The final result of the conversation, consuming the handle. An
    /// unfinished handle is aborted first (like drop, but returning the
    /// synthesized result). Used by the spec-replay adapter.
    pub(crate) fn into_result(mut self) -> TxnResult {
        if self.finished.is_none() {
            self.abandon();
        }
        // Clone instead of take: drop glue still runs on `self`, and it must
        // keep seeing a finished handle (a taken result would make it record
        // a second, synthetic abort for the same conversation).
        self.finished.clone().expect("terminal after abandon")
    }

    /// Fire-and-forget abort used by drop paths: the coordinator releases
    /// CCP resources as soon as the command arrives; nobody waits on a
    /// dropped handle.
    fn abandon(&mut self) {
        let _ = self.core.net.send(
            self.core.node,
            NodeId::Site(self.home),
            Msg::TxnOp {
                txn: self.id,
                op: NextOp::Abort,
            },
        );
        self.finish_synthetic(TxnOutcome::Aborted(AbortCause::UserAbort));
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if self.finished.is_none() {
            self.abandon();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let policy = RetryPolicy::default();
        let a1 = policy.backoff(1);
        let a2 = policy.backoff(2);
        assert_eq!(a1, policy.backoff(1), "same seed, same jitter");
        assert!(a2 >= a1, "backoff grows with the attempt");
        for attempt in 1..64 {
            assert!(policy.backoff(attempt) <= policy.max_backoff);
        }
        let other_seed = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        // Different seeds may produce different jitter (not asserted equal).
        let _ = other_seed.backoff(1);
    }

    #[test]
    fn splitmix_spreads_consecutive_seeds() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff, "low bits differ too");
    }

    #[test]
    fn orphan_result_shape() {
        let r = orphan_result(orphan_txn_id(), "t", Duration::from_millis(3));
        assert!(r.outcome.is_orphaned());
        assert_eq!(r.id.home, SiteId(u32::MAX));
        assert_eq!(r.label, "t");
        assert_eq!(r.messages, 0);
    }
}
