//! Deterministic randomness helpers shared by the workload generator and the
//! network simulator.
//!
//! Experiments must be repeatable ("configuration data can be saved for reuse
//! in another session"), so every random choice in the workspace flows
//! through a seedable RNG. This module wraps `rand` with the distributions
//! the experiments need: uniform item selection, Zipf-skewed selection and
//! the classic "hot spot" (x% of accesses to y% of the items) model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Creates a seeded RNG. All Rainbow components accept a seed and derive
/// their RNGs through this function so that an experiment is reproducible
/// end-to-end.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a sub-seed for a named component from a master seed, so that two
/// components seeded from the same master seed do not consume the same
/// stream.
pub fn derive_seed(master: u64, component: &str) -> u64 {
    // FNV-1a over the component name, mixed with the master seed.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in component.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ master.rotate_left(17)
}

/// How the workload generator picks the items a transaction accesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AccessDistribution {
    /// Every item equally likely.
    #[default]
    Uniform,
    /// Zipf-distributed ranks with the given exponent (`theta` ≈ 0.8–1.2 are
    /// common contention settings).
    Zipf {
        /// Skew exponent; 0 degenerates to uniform.
        theta: f64,
    },
    /// A fraction `access_fraction` of accesses goes to the first
    /// `item_fraction` of the items (e.g. the classic 80/20 hot spot).
    HotSpot {
        /// Fraction of accesses that target the hot set (0..=1).
        access_fraction: f64,
        /// Fraction of items forming the hot set (0..=1, > 0).
        item_fraction: f64,
    },
}

/// A sampler over `0..n` item indices following an [`AccessDistribution`].
#[derive(Debug, Clone)]
pub struct ItemSampler {
    n: usize,
    distribution: AccessDistribution,
    /// Cumulative probabilities for the Zipf case (empty otherwise).
    zipf_cdf: Vec<f64>,
}

impl ItemSampler {
    /// Creates a sampler over `n` items (`n` must be at least 1).
    pub fn new(n: usize, distribution: AccessDistribution) -> Self {
        assert!(n > 0, "ItemSampler needs at least one item");
        let zipf_cdf = match distribution {
            AccessDistribution::Zipf { theta } => {
                let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
                let total: f64 = weights.iter().sum();
                let mut cdf = Vec::with_capacity(n);
                let mut acc = 0.0;
                for w in weights {
                    acc += w / total;
                    cdf.push(acc);
                }
                if let Some(last) = cdf.last_mut() {
                    *last = 1.0;
                }
                cdf
            }
            _ => Vec::new(),
        };
        ItemSampler {
            n,
            distribution,
            zipf_cdf,
        }
    }

    /// Number of items the sampler draws from.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: a sampler cannot be built over zero items.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one item index in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        match self.distribution {
            AccessDistribution::Uniform => rng.gen_range(0..self.n),
            AccessDistribution::Zipf { .. } => {
                let u: f64 = rng.gen();
                match self
                    .zipf_cdf
                    .binary_search_by(|p| p.partial_cmp(&u).unwrap())
                {
                    Ok(idx) => idx.min(self.n - 1),
                    Err(idx) => idx.min(self.n - 1),
                }
            }
            AccessDistribution::HotSpot {
                access_fraction,
                item_fraction,
            } => {
                let hot_items = ((self.n as f64) * item_fraction).ceil().max(1.0) as usize;
                let hot_items = hot_items.min(self.n);
                if rng.gen::<f64>() < access_fraction {
                    rng.gen_range(0..hot_items)
                } else if hot_items < self.n {
                    rng.gen_range(hot_items..self.n)
                } else {
                    rng.gen_range(0..self.n)
                }
            }
        }
    }

    /// Draws `count` distinct item indices (or all of them when `count >= n`).
    pub fn sample_distinct(&self, rng: &mut impl Rng, count: usize) -> Vec<usize> {
        let count = count.min(self.n);
        let mut chosen = Vec::with_capacity(count);
        let mut guard = 0usize;
        while chosen.len() < count {
            let candidate = self.sample(rng);
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            guard += 1;
            // Fall back to a deterministic sweep if the distribution is so
            // skewed that rejection sampling stalls.
            if guard > count * 64 {
                for idx in 0..self.n {
                    if chosen.len() >= count {
                        break;
                    }
                    if !chosen.contains(&idx) {
                        chosen.push(idx);
                    }
                }
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_differs_by_component_and_master() {
        let a = derive_seed(1, "wlg");
        let b = derive_seed(1, "net");
        let c = derive_seed(2, "wlg");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, "wlg"));
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn uniform_sampler_covers_the_range() {
        let sampler = ItemSampler::new(10, AccessDistribution::Uniform);
        let mut rng = seeded_rng(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let idx = sampler.sample(&mut rng);
            assert!(idx < 10);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampling missed an item");
        assert_eq!(sampler.len(), 10);
        assert!(!sampler.is_empty());
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let sampler = ItemSampler::new(100, AccessDistribution::Zipf { theta: 1.0 });
        let mut rng = seeded_rng(11);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[90..].iter().sum();
        assert!(
            head > tail * 5,
            "zipf head ({head}) should dominate tail ({tail})"
        );
    }

    #[test]
    fn zipf_with_zero_theta_is_roughly_uniform() {
        let sampler = ItemSampler::new(10, AccessDistribution::Zipf { theta: 0.0 });
        let mut rng = seeded_rng(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "theta=0 should be close to uniform");
    }

    #[test]
    fn hotspot_sampler_concentrates_accesses() {
        let sampler = ItemSampler::new(
            100,
            AccessDistribution::HotSpot {
                access_fraction: 0.8,
                item_fraction: 0.2,
            },
        );
        let mut rng = seeded_rng(5);
        let mut hot = 0u32;
        let trials = 10_000;
        for _ in 0..trials {
            if sampler.sample(&mut rng) < 20 {
                hot += 1;
            }
        }
        let frac = hot as f64 / trials as f64;
        assert!((frac - 0.8).abs() < 0.05, "hot fraction was {frac}");
    }

    #[test]
    fn hotspot_with_full_item_fraction_is_uniform_over_all() {
        let sampler = ItemSampler::new(
            10,
            AccessDistribution::HotSpot {
                access_fraction: 0.5,
                item_fraction: 1.0,
            },
        );
        let mut rng = seeded_rng(9);
        for _ in 0..100 {
            assert!(sampler.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn sample_distinct_returns_unique_indices() {
        let sampler = ItemSampler::new(20, AccessDistribution::Zipf { theta: 1.2 });
        let mut rng = seeded_rng(13);
        for _ in 0..50 {
            let picks = sampler.sample_distinct(&mut rng, 8);
            assert_eq!(picks.len(), 8);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8);
        }
    }

    #[test]
    fn sample_distinct_caps_at_population() {
        let sampler = ItemSampler::new(5, AccessDistribution::Uniform);
        let mut rng = seeded_rng(1);
        let picks = sampler.sample_distinct(&mut rng, 50);
        assert_eq!(picks.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn sampler_rejects_empty_population() {
        let _ = ItemSampler::new(0, AccessDistribution::Uniform);
    }
}
