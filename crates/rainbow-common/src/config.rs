//! Database, replication and distribution schema types.
//!
//! The Rainbow name server "stores metadata of all Rainbow sites, such as the
//! id and end point specifications. Also maintained in the name server are
//! the database fragmentation, replication and distribution schema." These
//! types are that metadata; the name server in `rainbow-core` serves them to
//! sites, and the Session API in `rainbow-control` builds them from user
//! configuration (mirroring the GUI's "Database Replication Configuration"
//! panel, Figure A-1).

use crate::error::{RainbowError, RainbowResult};
use crate::ids::{HostId, ItemId, SiteId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Static description of one Rainbow site: which simulated host it lives on
/// and how many transaction-processing worker threads it runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// The site's id.
    pub id: SiteId,
    /// The host the site lives on (several sites may share a host, as in
    /// Figure 2 of the paper).
    pub host: HostId,
    /// Maximum number of transactions the site processes concurrently
    /// ("any site has the capability to concurrently process multiple
    /// transactions").
    pub worker_threads: usize,
}

impl SiteSpec {
    /// Creates a site spec with the default of 8 worker threads.
    pub fn new(id: SiteId, host: HostId) -> Self {
        SiteSpec {
            id,
            host,
            worker_threads: 8,
        }
    }

    /// Builder-style worker-thread override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.worker_threads = workers.max(1);
        self
    }
}

/// Declaration of one logical database item and its initial value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemSpec {
    /// The item's id (name).
    pub id: ItemId,
    /// Initial value installed at every copy when the database is created.
    pub initial: Value,
}

impl ItemSpec {
    /// Creates an item spec.
    pub fn new(id: impl Into<ItemId>, initial: impl Into<Value>) -> Self {
        ItemSpec {
            id: id.into(),
            initial: initial.into(),
        }
    }
}

/// Where the copies of one item live and how they vote.
///
/// Quorum consensus assigns each copy a (positive) number of votes and
/// defines read/write thresholds such that `read + write > total` and
/// `2 * write > total`; ROWA ignores the vote assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemPlacement {
    /// Copy-holder sites with their vote weights.
    pub copies: BTreeMap<SiteId, u32>,
    /// Read-quorum threshold (sum of votes needed to read).
    pub read_quorum: u32,
    /// Write-quorum threshold (sum of votes needed to write).
    pub write_quorum: u32,
}

impl ItemPlacement {
    /// Uniform placement: one vote per copy, majority read and write quorums.
    pub fn majority(sites: impl IntoIterator<Item = SiteId>) -> Self {
        let copies: BTreeMap<SiteId, u32> = sites.into_iter().map(|s| (s, 1)).collect();
        let total: u32 = copies.values().sum();
        let write = total / 2 + 1;
        // Smallest read quorum that still intersects every write quorum.
        let read = total + 1 - write;
        ItemPlacement {
            copies,
            read_quorum: read,
            write_quorum: write,
        }
    }

    /// Read-one-write-all placement: one vote per copy, read quorum 1, write
    /// quorum = all votes. (Quorum consensus configured this way degenerates
    /// to ROWA, which is a useful cross-check in tests.)
    pub fn read_one_write_all(sites: impl IntoIterator<Item = SiteId>) -> Self {
        let copies: BTreeMap<SiteId, u32> = sites.into_iter().map(|s| (s, 1)).collect();
        let total: u32 = copies.values().sum();
        ItemPlacement {
            copies,
            read_quorum: 1,
            write_quorum: total,
        }
    }

    /// Weighted placement with explicit thresholds.
    pub fn weighted(copies: BTreeMap<SiteId, u32>, read_quorum: u32, write_quorum: u32) -> Self {
        ItemPlacement {
            copies,
            read_quorum,
            write_quorum,
        }
    }

    /// Total number of votes across all copies.
    pub fn total_votes(&self) -> u32 {
        self.copies.values().sum()
    }

    /// Number of copies (replication degree).
    pub fn replication_degree(&self) -> usize {
        self.copies.len()
    }

    /// The sites holding copies of this item.
    pub fn holders(&self) -> Vec<SiteId> {
        self.copies.keys().copied().collect()
    }

    /// Whether `site` holds a copy.
    pub fn holds_copy(&self, site: SiteId) -> bool {
        self.copies.contains_key(&site)
    }

    /// Validates quorum intersection: `read + write > total` (read quorums
    /// intersect write quorums) and `2 * write > total` (write quorums
    /// intersect each other), plus non-empty placement and positive votes.
    pub fn validate(&self, item: &ItemId) -> RainbowResult<()> {
        if self.copies.is_empty() {
            return Err(RainbowError::InvalidConfig(format!(
                "item {item} has no copy holders"
            )));
        }
        if self.copies.values().any(|&v| v == 0) {
            return Err(RainbowError::InvalidConfig(format!(
                "item {item} assigns a zero vote weight to a copy"
            )));
        }
        let total = self.total_votes();
        if self.read_quorum == 0 || self.write_quorum == 0 {
            return Err(RainbowError::InvalidConfig(format!(
                "item {item} has a zero quorum threshold"
            )));
        }
        if self.read_quorum > total || self.write_quorum > total {
            return Err(RainbowError::InvalidConfig(format!(
                "item {item}: quorum threshold exceeds total votes {total}"
            )));
        }
        if self.read_quorum + self.write_quorum <= total {
            return Err(RainbowError::InvalidConfig(format!(
                "item {item}: read ({}) + write ({}) quorums do not intersect (total {total})",
                self.read_quorum, self.write_quorum
            )));
        }
        if 2 * self.write_quorum <= total {
            return Err(RainbowError::InvalidConfig(format!(
                "item {item}: write quorum {} does not intersect itself (total {total})",
                self.write_quorum
            )));
        }
        Ok(())
    }
}

/// The replication scheme: an [`ItemPlacement`] per item.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationScheme {
    /// Placement per item.
    pub placements: BTreeMap<ItemId, ItemPlacement>,
}

impl ReplicationScheme {
    /// Creates an empty scheme.
    pub fn new() -> Self {
        ReplicationScheme::default()
    }

    /// Adds or replaces the placement of an item.
    pub fn place(&mut self, item: impl Into<ItemId>, placement: ItemPlacement) {
        self.placements.insert(item.into(), placement);
    }

    /// The placement of an item, if declared.
    pub fn placement(&self, item: &ItemId) -> Option<&ItemPlacement> {
        self.placements.get(item)
    }

    /// All sites that hold at least one copy.
    pub fn copy_holders(&self) -> BTreeSet<SiteId> {
        self.placements
            .values()
            .flat_map(|p| p.copies.keys().copied())
            .collect()
    }

    /// Items stored (fully or partially) at `site`.
    pub fn items_at(&self, site: SiteId) -> Vec<ItemId> {
        self.placements
            .iter()
            .filter(|(_, p)| p.holds_copy(site))
            .map(|(item, _)| item.clone())
            .collect()
    }

    /// Validates every placement.
    pub fn validate(&self) -> RainbowResult<()> {
        for (item, placement) in &self.placements {
            placement.validate(item)?;
        }
        Ok(())
    }
}

/// The complete database schema: item declarations plus the replication
/// scheme.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatabaseSchema {
    /// Item declarations.
    pub items: Vec<ItemSpec>,
    /// Replication scheme.
    pub replication: ReplicationScheme,
}

impl DatabaseSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        DatabaseSchema::default()
    }

    /// Declares an item with its initial value and placement.
    pub fn declare(
        &mut self,
        item: impl Into<ItemId>,
        initial: impl Into<Value>,
        placement: ItemPlacement,
    ) {
        let id = item.into();
        self.items.push(ItemSpec::new(id.clone(), initial));
        self.replication.place(id, placement);
    }

    /// Convenience constructor used by tests, examples and the workload
    /// generator: `n_items` integer items named `x0..x{n-1}`, each valued
    /// `initial` and replicated on `degree` sites chosen round-robin from
    /// `sites`, with majority quorums.
    pub fn uniform(
        n_items: usize,
        initial: i64,
        sites: &[SiteId],
        degree: usize,
    ) -> RainbowResult<Self> {
        if sites.is_empty() {
            return Err(RainbowError::InvalidConfig(
                "uniform schema needs at least one site".into(),
            ));
        }
        let degree = degree.clamp(1, sites.len());
        let mut schema = DatabaseSchema::new();
        for i in 0..n_items {
            let holders: Vec<SiteId> = (0..degree).map(|k| sites[(i + k) % sites.len()]).collect();
            schema.declare(format!("x{i}"), initial, ItemPlacement::majority(holders));
        }
        Ok(schema)
    }

    /// Looks up the spec of an item.
    pub fn item(&self, id: &ItemId) -> Option<&ItemSpec> {
        self.items.iter().find(|spec| &spec.id == id)
    }

    /// All declared item ids, in declaration order.
    pub fn item_ids(&self) -> Vec<ItemId> {
        self.items.iter().map(|spec| spec.id.clone()).collect()
    }

    /// Number of declared items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no item is declared.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Validates the schema: every item must have a valid placement and every
    /// placement must refer to a declared item.
    pub fn validate(&self) -> RainbowResult<()> {
        let declared: BTreeSet<&ItemId> = self.items.iter().map(|s| &s.id).collect();
        for spec in &self.items {
            match self.replication.placement(&spec.id) {
                None => {
                    return Err(RainbowError::InvalidConfig(format!(
                        "item {} has no placement in the replication scheme",
                        spec.id
                    )))
                }
                Some(p) => p.validate(&spec.id)?,
            }
        }
        for item in self.replication.placements.keys() {
            if !declared.contains(item) {
                return Err(RainbowError::InvalidConfig(format!(
                    "replication scheme places undeclared item {item}"
                )));
            }
        }
        Ok(())
    }
}

/// The distribution schema: which sites exist and on which hosts they live.
/// Together with [`DatabaseSchema`] this is the metadata the name server
/// serves.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributionSchema {
    /// Site declarations.
    pub sites: Vec<SiteSpec>,
}

impl DistributionSchema {
    /// Creates an empty distribution schema.
    pub fn new() -> Self {
        DistributionSchema::default()
    }

    /// `n` sites, one per host, default worker threads.
    pub fn one_site_per_host(n: usize) -> Self {
        DistributionSchema {
            sites: (0..n as u32)
                .map(|i| SiteSpec::new(SiteId(i), HostId(i)))
                .collect(),
        }
    }

    /// Adds a site.
    pub fn add(&mut self, spec: SiteSpec) {
        self.sites.push(spec);
    }

    /// All site ids.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.iter().map(|s| s.id).collect()
    }

    /// All host ids (deduplicated).
    pub fn host_ids(&self) -> Vec<HostId> {
        let set: BTreeSet<HostId> = self.sites.iter().map(|s| s.host).collect();
        set.into_iter().collect()
    }

    /// The spec of a site.
    pub fn site(&self, id: SiteId) -> Option<&SiteSpec> {
        self.sites.iter().find(|s| s.id == id)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when there is no site.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Validates that site ids are unique and each site has at least one
    /// worker.
    pub fn validate(&self) -> RainbowResult<()> {
        let mut seen = BTreeSet::new();
        for spec in &self.sites {
            if !seen.insert(spec.id) {
                return Err(RainbowError::InvalidConfig(format!(
                    "duplicate site id {}",
                    spec.id
                )));
            }
            if spec.worker_threads == 0 {
                return Err(RainbowError::InvalidConfig(format!(
                    "site {} has zero worker threads",
                    spec.id
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(n: u32) -> Vec<SiteId> {
        (0..n).map(SiteId).collect()
    }

    #[test]
    fn majority_placement_thresholds() {
        let p = ItemPlacement::majority(sites(5));
        assert_eq!(p.total_votes(), 5);
        assert_eq!(p.write_quorum, 3);
        assert_eq!(p.read_quorum, 3);
        p.validate(&ItemId::new("x")).unwrap();

        let p = ItemPlacement::majority(sites(4));
        assert_eq!(p.write_quorum, 3);
        assert_eq!(p.read_quorum, 2);
        p.validate(&ItemId::new("x")).unwrap();

        let p = ItemPlacement::majority(sites(1));
        assert_eq!(p.write_quorum, 1);
        assert_eq!(p.read_quorum, 1);
        p.validate(&ItemId::new("x")).unwrap();
    }

    #[test]
    fn rowa_placement_thresholds() {
        let p = ItemPlacement::read_one_write_all(sites(4));
        assert_eq!(p.read_quorum, 1);
        assert_eq!(p.write_quorum, 4);
        p.validate(&ItemId::new("x")).unwrap();
    }

    #[test]
    fn invalid_quorums_are_rejected() {
        let item = ItemId::new("x");
        // Non-intersecting read/write quorums.
        let p = ItemPlacement::weighted(sites(4).into_iter().map(|s| (s, 1)).collect(), 1, 3);
        assert!(p.validate(&item).is_err());
        // Write quorum not intersecting itself.
        let p = ItemPlacement::weighted(sites(4).into_iter().map(|s| (s, 1)).collect(), 3, 2);
        assert!(p.validate(&item).is_err());
        // Zero votes.
        let mut copies: BTreeMap<SiteId, u32> = sites(2).into_iter().map(|s| (s, 1)).collect();
        copies.insert(SiteId(0), 0);
        let p = ItemPlacement::weighted(copies, 1, 2);
        assert!(p.validate(&item).is_err());
        // Empty placement.
        let p = ItemPlacement::weighted(BTreeMap::new(), 1, 1);
        assert!(p.validate(&item).is_err());
        // Threshold above total.
        let p = ItemPlacement::weighted(sites(2).into_iter().map(|s| (s, 1)).collect(), 3, 2);
        assert!(p.validate(&item).is_err());
        // Zero threshold.
        let p = ItemPlacement::weighted(sites(2).into_iter().map(|s| (s, 1)).collect(), 0, 2);
        assert!(p.validate(&item).is_err());
    }

    #[test]
    fn weighted_votes_count_toward_totals() {
        let copies: BTreeMap<SiteId, u32> = vec![(SiteId(0), 3), (SiteId(1), 1), (SiteId(2), 1)]
            .into_iter()
            .collect();
        let p = ItemPlacement::weighted(copies, 3, 3);
        assert_eq!(p.total_votes(), 5);
        assert_eq!(p.replication_degree(), 3);
        p.validate(&ItemId::new("x")).unwrap();
    }

    #[test]
    fn replication_scheme_queries() {
        let mut scheme = ReplicationScheme::new();
        scheme.place("x", ItemPlacement::majority(sites(3)));
        scheme.place("y", ItemPlacement::majority(vec![SiteId(1), SiteId(2)]));
        assert!(scheme.placement(&ItemId::new("x")).is_some());
        assert!(scheme.placement(&ItemId::new("z")).is_none());
        assert_eq!(scheme.copy_holders().len(), 3);
        assert_eq!(scheme.items_at(SiteId(0)), vec![ItemId::new("x")]);
        let at1 = scheme.items_at(SiteId(1));
        assert!(at1.contains(&ItemId::new("x")) && at1.contains(&ItemId::new("y")));
        scheme.validate().unwrap();
    }

    #[test]
    fn uniform_schema_round_robins_placements() {
        let s = sites(4);
        let schema = DatabaseSchema::uniform(8, 100, &s, 3).unwrap();
        assert_eq!(schema.len(), 8);
        assert!(!schema.is_empty());
        schema.validate().unwrap();
        for spec in &schema.items {
            let p = schema.replication.placement(&spec.id).unwrap();
            assert_eq!(p.replication_degree(), 3);
            assert_eq!(spec.initial, Value::Int(100));
        }
        // Every site ends up holding something.
        for site in &s {
            assert!(!schema.replication.items_at(*site).is_empty());
        }
    }

    #[test]
    fn uniform_schema_clamps_degree_and_rejects_empty_sites() {
        assert!(DatabaseSchema::uniform(4, 0, &[], 2).is_err());
        let schema = DatabaseSchema::uniform(4, 0, &sites(2), 10).unwrap();
        for spec in &schema.items {
            assert_eq!(
                schema
                    .replication
                    .placement(&spec.id)
                    .unwrap()
                    .replication_degree(),
                2
            );
        }
    }

    #[test]
    fn schema_validation_catches_mismatches() {
        let mut schema = DatabaseSchema::new();
        schema.items.push(ItemSpec::new("x", 1i64));
        // No placement for x.
        assert!(schema.validate().is_err());
        // Placement for an undeclared item.
        let mut schema = DatabaseSchema::new();
        schema
            .replication
            .place("ghost", ItemPlacement::majority(sites(2)));
        assert!(schema.validate().is_err());
    }

    #[test]
    fn schema_item_lookup() {
        let schema = DatabaseSchema::uniform(3, 7, &sites(2), 2).unwrap();
        assert!(schema.item(&ItemId::new("x1")).is_some());
        assert!(schema.item(&ItemId::new("nope")).is_none());
        assert_eq!(schema.item_ids().len(), 3);
    }

    #[test]
    fn distribution_schema_basics() {
        let dist = DistributionSchema::one_site_per_host(3);
        assert_eq!(dist.len(), 3);
        assert!(!dist.is_empty());
        assert_eq!(dist.site_ids(), sites(3));
        assert_eq!(dist.host_ids().len(), 3);
        assert!(dist.site(SiteId(1)).is_some());
        assert!(dist.site(SiteId(9)).is_none());
        dist.validate().unwrap();
    }

    #[test]
    fn distribution_schema_rejects_duplicates_and_zero_workers() {
        let mut dist = DistributionSchema::new();
        dist.add(SiteSpec::new(SiteId(0), HostId(0)));
        dist.add(SiteSpec::new(SiteId(0), HostId(1)));
        assert!(dist.validate().is_err());

        let mut dist = DistributionSchema::new();
        let mut spec = SiteSpec::new(SiteId(0), HostId(0));
        spec.worker_threads = 0;
        dist.add(spec);
        assert!(dist.validate().is_err());
    }

    #[test]
    fn site_spec_with_workers_floors_at_one() {
        let spec = SiteSpec::new(SiteId(0), HostId(0)).with_workers(0);
        assert_eq!(spec.worker_threads, 1);
        let spec = SiteSpec::new(SiteId(0), HostId(0)).with_workers(16);
        assert_eq!(spec.worker_threads, 16);
    }

    #[test]
    fn schema_serde_round_trip() {
        let schema = DatabaseSchema::uniform(4, 10, &sites(3), 2).unwrap();
        let json = serde_json::to_string(&schema).unwrap();
        let back: DatabaseSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(schema, back);
    }
}
