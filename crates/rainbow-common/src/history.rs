//! Transaction histories for the chaos laboratory.
//!
//! The paper positions Rainbow as a vehicle for *experimental research on
//! protocol behavior under faults*. Asserting "it still works" after a fault
//! sweep needs more than spot checks: it needs the complete observable
//! history of the run — what every transaction read (item, value, version),
//! what it wrote, and how it ended — in a form a serializability checker
//! (the `rainbow-check` crate) can pass judgment on.
//!
//! This module defines that vocabulary. A [`TxnRecord`] is the footprint of
//! one transaction as seen by its coordinator (the authoritative observer:
//! it knows the real outcome even when the driving client timed out and
//! reported an orphan). A [`History`] is the cluster-wide collection of
//! records plus the initial database state. The [`HistorySink`] is the
//! collector the cluster owns and every coordinator appends to; recording is
//! off by default so the bench hot path never pays for it.

use crate::ids::{ItemId, TxnId, Version};
use crate::txn::TxnOutcome;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One read as a transaction observed it: the item, the value the read
/// quorum returned and the (highest in-quorum) version that value carried.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadObservation {
    /// The item read.
    pub item: ItemId,
    /// The observed value.
    pub value: Value,
    /// The version the observed value carried. [`Version::INITIAL`] means
    /// the read saw the initial database state.
    pub version: Version,
}

/// One write as a transaction installed (or attempted to install) it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteRecord {
    /// The item written.
    pub item: ItemId,
    /// The value written.
    pub value: Value,
    /// The version the write installs at every participating copy.
    pub version: Version,
}

/// The complete footprint of one transaction, recorded by its coordinator
/// when the conversation terminates.
///
/// For an [`TxnOutcome::Aborted`] record the `writes` list holds the writes
/// the transaction *attempted* (its quorums assembled) but which were never
/// installed — useful for debugging, ignored by the checker. For an
/// [`TxnOutcome::Orphaned`] record (the commit protocol never reached a
/// decision visible to the coordinator) the writes *may* have been installed
/// at participants; the checker treats such transactions as committed
/// exactly when some committed transaction observed one of their versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnRecord {
    /// The transaction id assigned by its home site.
    pub txn: TxnId,
    /// The label the transaction was submitted with.
    pub label: String,
    /// Every read the transaction performed, in execution order (repeated
    /// reads of the same item each appear).
    pub reads: Vec<ReadObservation>,
    /// Every write the transaction staged for installation, in client order.
    pub writes: Vec<WriteRecord>,
    /// How the transaction ended, as decided at the coordinator.
    pub outcome: TxnOutcome,
    /// Order in which the record reached the sink (a cluster-wide sequence,
    /// not a serialization order — it is *completion* order).
    pub completion_seq: u64,
}

impl TxnRecord {
    /// A record with no reads or writes and an unset completion sequence;
    /// builder-style helpers below fill it in. Used by tests and the
    /// `rainbow-check` fixture histories.
    pub fn new(txn: TxnId, label: impl Into<String>, outcome: TxnOutcome) -> Self {
        TxnRecord {
            txn,
            label: label.into(),
            reads: Vec::new(),
            writes: Vec::new(),
            outcome,
            completion_seq: 0,
        }
    }

    /// Builder-style read observation.
    pub fn with_read(
        mut self,
        item: impl Into<ItemId>,
        value: impl Into<Value>,
        version: u64,
    ) -> Self {
        self.reads.push(ReadObservation {
            item: item.into(),
            value: value.into(),
            version: Version(version),
        });
        self
    }

    /// Builder-style write record.
    pub fn with_write(
        mut self,
        item: impl Into<ItemId>,
        value: impl Into<Value>,
        version: u64,
    ) -> Self {
        self.writes.push(WriteRecord {
            item: item.into(),
            value: value.into(),
            version: Version(version),
        });
        self
    }

    /// True when the coordinator decided commit.
    pub fn committed(&self) -> bool {
        self.outcome.is_committed()
    }
}

/// The cluster-wide transaction history of one run: the initial database
/// state plus every transaction footprint, in completion order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// Initial value of every item (all copies start at
    /// [`Version::INITIAL`]).
    pub initial: BTreeMap<ItemId, Value>,
    /// Transaction records in completion order.
    pub records: Vec<TxnRecord>,
}

impl History {
    /// An empty history over the given initial database state. Fixture and
    /// test histories start here and push records.
    pub fn with_initial(initial: impl IntoIterator<Item = (ItemId, Value)>) -> Self {
        History {
            initial: initial.into_iter().collect(),
            records: Vec::new(),
        }
    }

    /// Appends a record, assigning the next completion sequence.
    pub fn push(&mut self, mut record: TxnRecord) -> &mut Self {
        record.completion_seq = self.records.len() as u64;
        self.records.push(record);
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no transaction was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The committed records.
    pub fn committed(&self) -> impl Iterator<Item = &TxnRecord> {
        self.records.iter().filter(|r| r.committed())
    }

    /// Counts per outcome class: `(committed, aborted, orphaned)`.
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for record in &self.records {
            match record.outcome {
                TxnOutcome::Committed => counts.0 += 1,
                TxnOutcome::Aborted(_) => counts.1 += 1,
                TxnOutcome::Orphaned => counts.2 += 1,
            }
        }
        counts
    }
}

/// The collector every coordinator appends its [`TxnRecord`] to.
///
/// The sink is owned by the cluster and shared (behind an `Arc`) with every
/// site; when history recording is disabled the cluster simply owns no sink
/// and coordinators skip all bookkeeping, keeping the bench hot path free of
/// the cost. `begun`/`recorded` counters make quiescence observable: a
/// chaos run knows all in-flight conversations have terminated exactly when
/// the two agree.
#[derive(Debug, Default)]
pub struct HistorySink {
    begun: AtomicU64,
    records: Mutex<Vec<TxnRecord>>,
    next_seq: AtomicU64,
}

impl HistorySink {
    /// An empty sink.
    pub fn new() -> Self {
        HistorySink::default()
    }

    /// Announces that a conversation started; its record will arrive later.
    pub fn begin(&self) {
        self.begun.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends the final record of a conversation.
    pub fn record(&self, mut record: TxnRecord) {
        record.completion_seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.records
            .lock()
            .expect("history sink poisoned")
            .push(record);
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("history sink poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Conversations begun but not yet recorded. Zero means the history is
    /// complete (no coordinator is still driving a transaction).
    pub fn in_flight(&self) -> u64 {
        self.begun.load(Ordering::Relaxed) - self.len() as u64
    }

    /// Snapshots the collected records into a [`History`] over the given
    /// initial database state, sorted by completion order.
    pub fn snapshot(&self, initial: impl IntoIterator<Item = (ItemId, Value)>) -> History {
        let mut records = self.records.lock().expect("history sink poisoned").clone();
        records.sort_by_key(|r| r.completion_seq);
        History {
            initial: initial.into_iter().collect(),
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;
    use crate::txn::AbortCause;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    #[test]
    fn record_builder_assembles_footprints() {
        let record = TxnRecord::new(txn(1), "t1", TxnOutcome::Committed)
            .with_read("x", 100i64, 0)
            .with_write("x", 110i64, 1);
        assert!(record.committed());
        assert_eq!(record.reads.len(), 1);
        assert_eq!(record.reads[0].version, Version(0));
        assert_eq!(record.writes[0].version, Version(1));
        assert_eq!(record.label, "t1");
    }

    #[test]
    fn history_push_assigns_completion_order() {
        let mut history = History::with_initial([(ItemId::new("x"), Value::Int(100))]);
        history.push(TxnRecord::new(txn(1), "a", TxnOutcome::Committed));
        history.push(TxnRecord::new(
            txn(2),
            "b",
            TxnOutcome::Aborted(AbortCause::UserAbort),
        ));
        history.push(TxnRecord::new(txn(3), "c", TxnOutcome::Orphaned));
        assert_eq!(history.len(), 3);
        assert!(!history.is_empty());
        assert_eq!(history.records[2].completion_seq, 2);
        assert_eq!(history.committed().count(), 1);
        assert_eq!(history.outcome_counts(), (1, 1, 1));
    }

    #[test]
    fn sink_tracks_in_flight_conversations() {
        let sink = HistorySink::new();
        assert!(sink.is_empty());
        sink.begin();
        sink.begin();
        assert_eq!(sink.in_flight(), 2);
        sink.record(TxnRecord::new(txn(1), "t", TxnOutcome::Committed));
        assert_eq!(sink.in_flight(), 1);
        sink.record(TxnRecord::new(txn(2), "u", TxnOutcome::Orphaned));
        assert_eq!(sink.in_flight(), 0);
        assert_eq!(sink.len(), 2);

        let history = sink.snapshot([(ItemId::new("x"), Value::Int(5))]);
        assert_eq!(history.len(), 2);
        assert_eq!(history.records[0].label, "t");
        assert_eq!(history.records[1].completion_seq, 1);
        assert_eq!(history.initial.get(&ItemId::new("x")), Some(&Value::Int(5)));
    }

    #[test]
    fn history_serializes_for_artifact_upload() {
        let mut history = History::with_initial([(ItemId::new("x"), Value::Int(1))]);
        history.push(
            TxnRecord::new(txn(1), "t", TxnOutcome::Committed)
                .with_read("x", 1i64, 0)
                .with_write("x", 2i64, 1),
        );
        let json = serde_json::to_string(&history).unwrap();
        let back: History = serde_json::from_str(&json).unwrap();
        assert_eq!(history, back);
    }
}
