//! Statistics types: the "extensible set of output statistics" of Section 3.
//!
//! The paper lists, among others: number of committed transactions, number of
//! aborted transactions (and rate) due to RCP, ACP and CCP, transaction
//! commit rate, abort rates per abort type, total number of messages
//! generated per time unit, transaction throughput and response time, number
//! of orphan transactions, round-trip messages and load balance/imbalance
//! indicators. The collectors here are deliberately simple and lock-free
//! where possible so they can be embedded in every layer.

use crate::txn::{AbortLayer, TxnOutcome};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// **The** definition of a *finished* transaction, shared by every metric in
/// the workspace: a transaction is finished exactly when it reached a
/// client-visible decision — committed or aborted. Orphans never finished
/// (their fate stayed unknown to the client), so they appear in neither
/// commit-rate denominators nor throughput numerators. `StatsSnapshot`,
/// `WorkloadReport` and the sweep tables all derive their rates from this
/// single predicate so they can never disagree about the denominator again.
pub fn is_finished(outcome: &TxnOutcome) -> bool {
    matches!(outcome, TxnOutcome::Committed | TxnOutcome::Aborted(_))
}

/// Latency distribution summary (response times, commit latencies, ...).
///
/// Samples are recorded in microseconds; the summary exposes count, mean,
/// min, max and selected percentiles computed from the retained samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Minimum latency in microseconds.
    pub min_us: u64,
    /// Maximum latency in microseconds.
    pub max_us: u64,
    /// Median (50th percentile) in microseconds.
    pub p50_us: u64,
    /// 95th percentile in microseconds.
    pub p95_us: u64,
    /// 99th percentile in microseconds.
    pub p99_us: u64,
    /// 99.9th percentile in microseconds.
    pub p999_us: u64,
    /// Standard deviation in microseconds (population stddev).
    pub stddev_us: f64,
}

impl LatencyStats {
    /// Builds a summary from raw duration samples.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut micros: Vec<u64> = samples
            .iter()
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .collect();
        micros.sort_unstable();
        let count = micros.len() as u64;
        let sum: u128 = micros.iter().map(|&v| v as u128).sum();
        let mean = sum as f64 / count as f64;
        let variance = micros
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        // Nearest-rank percentile: the smallest sample such that at least
        // p·n samples are ≤ it, i.e. the sample at rank ⌈p·n⌉ (1-based).
        let pct = |p: f64| -> u64 {
            let rank = (p * micros.len() as f64).ceil().max(1.0) as usize;
            micros[rank.min(micros.len()) - 1]
        };
        LatencyStats {
            count,
            mean_us: mean,
            min_us: micros[0],
            max_us: *micros.last().unwrap(),
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
            stddev_us: variance.sqrt(),
        }
    }

    /// Mean latency as a [`Duration`].
    pub fn mean(&self) -> Duration {
        Duration::from_micros(self.mean_us as u64)
    }
}

/// Abort counts broken down by responsible protocol layer and by detailed
/// cause label.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbortBreakdown {
    /// Aborts attributed to each layer.
    pub by_layer: BTreeMap<AbortLayer, u64>,
    /// Aborts per human-readable cause label (e.g. "CCP: deadlock victim").
    pub by_cause: BTreeMap<String, u64>,
}

impl AbortBreakdown {
    /// Records one abort.
    pub fn record(&mut self, layer: AbortLayer, cause_label: impl Into<String>) {
        *self.by_layer.entry(layer).or_insert(0) += 1;
        *self.by_cause.entry(cause_label.into()).or_insert(0) += 1;
    }

    /// Total number of aborts recorded.
    pub fn total(&self) -> u64 {
        self.by_layer.values().sum()
    }

    /// Aborts attributed to `layer`.
    pub fn layer(&self, layer: AbortLayer) -> u64 {
        self.by_layer.get(&layer).copied().unwrap_or(0)
    }

    /// Merges another breakdown into this one (used when aggregating per-site
    /// statistics into the global progress-monitor view).
    pub fn merge(&mut self, other: &AbortBreakdown) {
        for (layer, count) in &other.by_layer {
            *self.by_layer.entry(*layer).or_insert(0) += count;
        }
        for (cause, count) in &other.by_cause {
            *self.by_cause.entry(cause.clone()).or_insert(0) += count;
        }
    }
}

/// Message traffic counters, per message kind and in total.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Total messages sent.
    pub sent: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Messages dropped by the network simulator (loss, partition, crash).
    pub dropped: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Messages per kind label (e.g. "QC_READ_REQ", "2PC_PREPARE").
    pub by_kind: BTreeMap<String, u64>,
    /// Request/response round trips completed.
    pub round_trips: u64,
}

impl MessageStats {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &MessageStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.bytes += other.bytes;
        self.round_trips += other.round_trips;
        for (kind, count) in &other.by_kind {
            *self.by_kind.entry(kind.clone()).or_insert(0) += count;
        }
    }

    /// Count for one message kind.
    pub fn kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

/// Per-site share of the work, used for the paper's "load balance/imbalance
/// indicators".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadBalance {
    /// Transactions whose home was each site.
    pub home_transactions: BTreeMap<u32, u64>,
    /// Remote copy-access requests served by each site.
    pub served_requests: BTreeMap<u32, u64>,
}

impl LoadBalance {
    /// Coefficient of variation (stddev / mean) of the per-site served
    /// request counts: 0 means perfectly balanced, larger means more
    /// imbalanced. Returns 0 when fewer than two sites are present.
    pub fn imbalance(&self) -> f64 {
        let counts: Vec<f64> = self.served_requests.values().map(|&v| v as f64).collect();
        if counts.len() < 2 {
            return 0.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        var.sqrt() / mean
    }
}

/// A full snapshot of the statistics panel (Figure 5 of the paper): what the
/// progress monitor hands to the GUI / Session at any point in time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Transactions submitted to the system.
    pub submitted: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions (all causes).
    pub aborted: u64,
    /// Orphan transactions (no decision reached because of failures).
    pub orphans: u64,
    /// Transactions restarted at least once before their final outcome.
    pub restarted: u64,
    /// Abort breakdown by layer and cause.
    pub aborts: AbortBreakdown,
    /// Message traffic counters.
    pub messages: MessageStats,
    /// Response-time distribution of finished transactions.
    pub response_time: LatencyStats,
    /// Wall-clock measurement window in seconds.
    pub elapsed_secs: f64,
    /// Load balance indicators.
    pub load: LoadBalance,
    /// Per-phase latency breakdown (lock wait, quorum read RTT, prepare,
    /// commit apply, WAL force, network queue delay), keyed by the phase
    /// name. Populated only when tracing is enabled; empty otherwise.
    pub phases: BTreeMap<String, LatencyStats>,
}

impl StatsSnapshot {
    /// Transactions that finished per [`is_finished`]: committed + aborted,
    /// orphans excluded. Every rate below divides by this count.
    pub fn finished(&self) -> u64 {
        self.committed + self.aborted
    }

    /// Fraction of finished transactions that committed (`0.0` when nothing
    /// finished). This is the paper's "transaction commit rate".
    pub fn commit_rate(&self) -> f64 {
        let finished = self.finished();
        if finished == 0 {
            0.0
        } else {
            self.committed as f64 / finished as f64
        }
    }

    /// Fraction of finished transactions that aborted.
    pub fn abort_rate(&self) -> f64 {
        let finished = self.finished();
        if finished == 0 {
            0.0
        } else {
            self.aborted as f64 / finished as f64
        }
    }

    /// Abort rate attributed to one protocol layer.
    pub fn abort_rate_for(&self, layer: AbortLayer) -> f64 {
        let finished = self.finished();
        if finished == 0 {
            0.0
        } else {
            self.aborts.layer(layer) as f64 / finished as f64
        }
    }

    /// Committed transactions per second over the measurement window.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / self.elapsed_secs
        }
    }

    /// Messages per second over the measurement window ("total number of
    /// messages generated per time unit").
    pub fn messages_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.messages.sent as f64 / self.elapsed_secs
        }
    }

    /// Messages sent per finished transaction; the key metric of the quorum
    /// message-traffic experiment (ref \[3\] of the paper).
    pub fn messages_per_txn(&self) -> f64 {
        let finished = self.finished();
        if finished == 0 {
            0.0
        } else {
            self.messages.sent as f64 / finished as f64
        }
    }

    /// Merges another snapshot into this one (latency distributions are
    /// merged approximately by weighting their means; detailed percentiles
    /// are kept from the larger sample).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.submitted += other.submitted;
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.orphans += other.orphans;
        self.restarted += other.restarted;
        self.aborts.merge(&other.aborts);
        self.messages.merge(&other.messages);
        self.elapsed_secs = self.elapsed_secs.max(other.elapsed_secs);
        merge_latency_approx(&mut self.response_time, &other.response_time);
        for (phase, stats) in &other.phases {
            match self.phases.get_mut(phase) {
                Some(mine) => merge_latency_approx(mine, stats),
                None => {
                    self.phases.insert(phase.clone(), stats.clone());
                }
            }
        }
        for (site, count) in &other.load.home_transactions {
            *self.load.home_transactions.entry(*site).or_insert(0) += count;
        }
        for (site, count) in &other.load.served_requests {
            *self.load.served_requests.entry(*site).or_insert(0) += count;
        }
    }
}

/// Approximate merge of two latency summaries: weighted mean, envelope
/// min/max, percentiles and stddev kept from the larger population. Exact
/// merging needs the underlying histograms (see `rainbow-trace`); snapshot
/// consumers only ever merge already-summarized views.
fn merge_latency_approx(into: &mut LatencyStats, other: &LatencyStats) {
    let total = into.count + other.count;
    if total == 0 {
        return;
    }
    let weighted_mean =
        (into.mean_us * into.count as f64 + other.mean_us * other.count as f64) / total as f64;
    let larger = if other.count > into.count {
        other.clone()
    } else {
        into.clone()
    };
    *into = LatencyStats {
        count: total,
        mean_us: weighted_mean,
        min_us: if into.count == 0 {
            other.min_us
        } else if other.count == 0 {
            into.min_us
        } else {
            into.min_us.min(other.min_us)
        },
        max_us: into.max_us.max(other.max_us),
        p50_us: larger.p50_us,
        p95_us: larger.p95_us,
        p99_us: larger.p99_us,
        p999_us: larger.p999_us,
        stddev_us: larger.stddev_us,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn latency_stats_from_empty_samples_is_default() {
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn latency_stats_summary_values() {
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.min_us, 1_000);
        assert_eq!(stats.max_us, 100_000);
        assert!((stats.mean_us - 50_500.0).abs() < 1.0);
        assert!(stats.p50_us >= 49_000 && stats.p50_us <= 52_000);
        assert!(stats.p95_us >= 94_000 && stats.p95_us <= 97_000);
        assert!(stats.p99_us >= 98_000);
        assert_eq!(stats.mean().as_micros() as f64, stats.mean_us.trunc());
    }

    #[test]
    fn latency_stats_single_sample() {
        let stats = LatencyStats::from_samples(&[ms(7)]);
        assert_eq!(stats.count, 1);
        assert_eq!(stats.min_us, 7_000);
        assert_eq!(stats.max_us, 7_000);
        assert_eq!(stats.p99_us, 7_000);
        assert_eq!(stats.p999_us, 7_000);
        assert_eq!(stats.stddev_us, 0.0);
    }

    #[test]
    fn percentiles_are_proper_nearest_rank() {
        // With n = 100 uniform samples the nearest-rank percentile is the
        // ⌈p·n⌉-th smallest sample — no interpolation, no rounding up past
        // the rank. The old rounded-index formula gave p95 = 96ms here.
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.p50_us, 50_000);
        assert_eq!(stats.p95_us, 95_000);
        assert_eq!(stats.p99_us, 99_000);
        assert_eq!(stats.p999_us, 100_000);
        // Population stddev of 1..=100 ms is √((100² − 1)/12) ≈ 28.866 ms.
        assert!((stats.stddev_us - 28_866.0).abs() < 10.0);
    }

    #[test]
    fn snapshot_merge_combines_phase_breakdowns() {
        let mut a = StatsSnapshot::default();
        a.phases
            .insert("lock-wait".into(), LatencyStats::from_samples(&[ms(2)]));
        let mut b = StatsSnapshot::default();
        b.phases.insert(
            "lock-wait".into(),
            LatencyStats::from_samples(&[ms(4), ms(6)]),
        );
        b.phases
            .insert("wal-force".into(), LatencyStats::from_samples(&[ms(1)]));
        a.merge(&b);
        let lock = &a.phases["lock-wait"];
        assert_eq!(lock.count, 3);
        assert_eq!(lock.min_us, 2_000);
        assert_eq!(lock.max_us, 6_000);
        assert!((lock.mean_us - 4_000.0).abs() < 1.0);
        assert_eq!(a.phases["wal-force"].count, 1);
    }

    #[test]
    fn abort_breakdown_records_and_merges() {
        let mut a = AbortBreakdown::default();
        a.record(AbortLayer::Ccp, "deadlock");
        a.record(AbortLayer::Ccp, "deadlock");
        a.record(AbortLayer::Rcp, "quorum");
        assert_eq!(a.total(), 3);
        assert_eq!(a.layer(AbortLayer::Ccp), 2);
        assert_eq!(a.layer(AbortLayer::Acp), 0);

        let mut b = AbortBreakdown::default();
        b.record(AbortLayer::Acp, "timeout");
        b.record(AbortLayer::Ccp, "conflict");
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.layer(AbortLayer::Ccp), 3);
        assert_eq!(a.by_cause.get("deadlock"), Some(&2));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn message_stats_merge_and_kind_lookup() {
        let mut a = MessageStats::default();
        a.sent = 10;
        a.delivered = 9;
        a.dropped = 1;
        a.bytes = 512;
        a.round_trips = 4;
        a.by_kind.insert("2PC_PREPARE".into(), 3);

        let mut b = MessageStats::default();
        b.sent = 5;
        b.by_kind.insert("2PC_PREPARE".into(), 2);
        b.by_kind.insert("QC_READ".into(), 5);

        a.merge(&b);
        assert_eq!(a.sent, 15);
        assert_eq!(a.kind("2PC_PREPARE"), 5);
        assert_eq!(a.kind("QC_READ"), 5);
        assert_eq!(a.kind("missing"), 0);
    }

    #[test]
    fn load_imbalance_zero_for_balanced_and_degenerate_cases() {
        let mut lb = LoadBalance::default();
        assert_eq!(lb.imbalance(), 0.0);
        lb.served_requests.insert(0, 100);
        assert_eq!(lb.imbalance(), 0.0); // single site
        lb.served_requests.insert(1, 100);
        lb.served_requests.insert(2, 100);
        assert!(lb.imbalance().abs() < 1e-9);
    }

    #[test]
    fn load_imbalance_positive_when_skewed() {
        let mut lb = LoadBalance::default();
        lb.served_requests.insert(0, 1000);
        lb.served_requests.insert(1, 10);
        lb.served_requests.insert(2, 10);
        assert!(lb.imbalance() > 0.5);
    }

    #[test]
    fn finished_is_the_single_shared_definition() {
        use crate::txn::{AbortCause, TxnOutcome};
        assert!(is_finished(&TxnOutcome::Committed));
        assert!(is_finished(&TxnOutcome::Aborted(AbortCause::UserAbort)));
        assert!(!is_finished(&TxnOutcome::Orphaned));

        let snap = StatsSnapshot {
            submitted: 10,
            committed: 6,
            aborted: 2,
            orphans: 2,
            ..Default::default()
        };
        // Orphans are excluded from the denominator of every rate.
        assert_eq!(snap.finished(), 8);
        assert!((snap.commit_rate() - 0.75).abs() < 1e-9);
        assert!((snap.abort_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn snapshot_rates() {
        let mut snap = StatsSnapshot::default();
        assert_eq!(snap.commit_rate(), 0.0);
        assert_eq!(snap.throughput(), 0.0);
        assert_eq!(snap.messages_per_txn(), 0.0);

        snap.submitted = 10;
        snap.committed = 8;
        snap.aborted = 2;
        snap.aborts.record(AbortLayer::Ccp, "deadlock");
        snap.aborts.record(AbortLayer::Rcp, "quorum");
        snap.messages.sent = 100;
        snap.elapsed_secs = 4.0;

        assert!((snap.commit_rate() - 0.8).abs() < 1e-9);
        assert!((snap.abort_rate() - 0.2).abs() < 1e-9);
        assert!((snap.abort_rate_for(AbortLayer::Ccp) - 0.1).abs() < 1e-9);
        assert!((snap.throughput() - 2.0).abs() < 1e-9);
        assert!((snap.messages_per_sec() - 25.0).abs() < 1e-9);
        assert!((snap.messages_per_txn() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let mut a = StatsSnapshot {
            submitted: 5,
            committed: 4,
            aborted: 1,
            elapsed_secs: 2.0,
            response_time: LatencyStats::from_samples(&[ms(10), ms(20)]),
            ..Default::default()
        };
        a.load.home_transactions.insert(0, 5);
        let mut b = StatsSnapshot {
            submitted: 7,
            committed: 6,
            aborted: 1,
            orphans: 1,
            elapsed_secs: 3.0,
            response_time: LatencyStats::from_samples(&[ms(30), ms(40), ms(50)]),
            ..Default::default()
        };
        b.load.home_transactions.insert(0, 3);
        b.load.home_transactions.insert(1, 4);

        a.merge(&b);
        assert_eq!(a.submitted, 12);
        assert_eq!(a.committed, 10);
        assert_eq!(a.aborted, 2);
        assert_eq!(a.orphans, 1);
        assert_eq!(a.elapsed_secs, 3.0);
        assert_eq!(a.response_time.count, 5);
        assert_eq!(a.load.home_transactions.get(&0), Some(&8));
        assert_eq!(a.load.home_transactions.get(&1), Some(&4));
        // Weighted mean of 15ms (n=2) and 40ms (n=3) = 30ms.
        assert!((a.response_time.mean_us - 30_000.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_merge_with_empty_latency_keeps_other() {
        let mut a = StatsSnapshot::default();
        let b = StatsSnapshot {
            response_time: LatencyStats::from_samples(&[ms(5)]),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.response_time.count, 1);
        assert_eq!(a.response_time.min_us, 5_000);
    }
}
