//! Protocol selection, mirroring the paper's "Protocols Configuration"
//! window (Figure 4).
//!
//! Rainbow supports, per Section 2.1:
//!
//! 1. replication control protocols (RCP): Read-One-Write-All and Quorum
//!    Consensus (the default);
//! 2. concurrency control protocols (CCP): Two-Phase Locking and Timestamp
//!    Ordering (we also provide multi-version timestamp ordering, listed in
//!    Section 5 as a term-project extension);
//! 3. the atomic commit protocol (ACP): Two-Phase Commit (we also provide
//!    Three-Phase Commit, another suggested extension).

use crate::error::RainbowError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Replication control protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RcpKind {
    /// Read-One-Write-All: reads touch any single copy, writes touch every
    /// copy. Cheap reads, but a single unavailable copy blocks writes.
    Rowa,
    /// Quorum Consensus (the Rainbow default): every copy carries a vote and
    /// a version number; reads and writes assemble intersecting quorums.
    #[default]
    QuorumConsensus,
    /// Available Copies: reads touch any single copy, writes touch every
    /// copy the fault controller believes is up. Keeps both reads and
    /// writes available under site crashes, at the price of needing a
    /// copier/catch-up protocol when a crashed holder recovers.
    AvailableCopies,
    /// Tree Quorum: the copy sites form a logical tree; reads take the root
    /// (degrading to a majority of children, recursively, when the root is
    /// down) and writes take the root plus a majority of children at every
    /// selected level. Reads stay one-copy cheap while write quorums shrink
    /// below write-all.
    TreeQuorum,
    /// Primary Copy: all reads and writes are routed through a per-item
    /// primary site, with lease-based failover to the next live copy holder
    /// when the primary crashes; writes are propagated synchronously to
    /// every available backup.
    PrimaryCopy,
}

impl RcpKind {
    /// Every replication protocol, in presentation order — used by sweeps,
    /// tests and the CLI-style config parser.
    pub const ALL: [RcpKind; 5] = [
        RcpKind::Rowa,
        RcpKind::QuorumConsensus,
        RcpKind::AvailableCopies,
        RcpKind::TreeQuorum,
        RcpKind::PrimaryCopy,
    ];

    /// The long configuration name (`Display` prints the short one).
    pub fn config_name(&self) -> &'static str {
        match self {
            RcpKind::Rowa => "read-one-write-all",
            RcpKind::QuorumConsensus => "quorum-consensus",
            RcpKind::AvailableCopies => "available-copies",
            RcpKind::TreeQuorum => "tree-quorum",
            RcpKind::PrimaryCopy => "primary-copy",
        }
    }
}

// Adding an `RcpKind` variant must extend `ALL` (and with it `FromStr`,
// which parses by iterating `ALL`): this exhaustive match (deliberately no
// wildcard arm) breaks the build until the new variant is indexed, and the
// length assertion breaks it until `ALL` actually lists it.
const _: () = {
    const fn ordinal(kind: RcpKind) -> usize {
        match kind {
            RcpKind::Rowa => 0,
            RcpKind::QuorumConsensus => 1,
            RcpKind::AvailableCopies => 2,
            RcpKind::TreeQuorum => 3,
            RcpKind::PrimaryCopy => 4,
        }
    }
    assert!(RcpKind::ALL.len() == ordinal(RcpKind::PrimaryCopy) + 1);
};

impl fmt::Display for RcpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcpKind::Rowa => write!(f, "ROWA"),
            RcpKind::QuorumConsensus => write!(f, "QC"),
            RcpKind::AvailableCopies => write!(f, "AC"),
            RcpKind::TreeQuorum => write!(f, "TQ"),
            RcpKind::PrimaryCopy => write!(f, "PC"),
        }
    }
}

impl FromStr for RcpKind {
    type Err = RainbowError;

    /// Parses either the short display name (`QC`) or the long config name
    /// (`quorum-consensus`), case-insensitively. Parsing is driven off
    /// [`RcpKind::ALL`] + [`fmt::Display`], so the round-trip
    /// `kind.to_string().parse()` holds for every variant by construction.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let wanted = s.trim();
        RcpKind::ALL
            .into_iter()
            .find(|kind| {
                wanted.eq_ignore_ascii_case(&kind.to_string())
                    || wanted.eq_ignore_ascii_case(kind.config_name())
            })
            .ok_or_else(|| {
                RainbowError::InvalidConfig(format!(
                    "unknown replication protocol {wanted:?} (expected one of {})",
                    RcpKind::ALL
                        .iter()
                        .map(|k| k.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }
}

/// Concurrency control protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CcpKind {
    /// Strict two-phase locking with deadlock handling.
    #[default]
    TwoPhaseLocking,
    /// Basic timestamp ordering.
    TimestampOrdering,
    /// Multi-version timestamp ordering (term-project extension from
    /// Section 5 of the paper).
    MultiversionTimestampOrdering,
}

impl fmt::Display for CcpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcpKind::TwoPhaseLocking => write!(f, "2PL"),
            CcpKind::TimestampOrdering => write!(f, "TSO"),
            CcpKind::MultiversionTimestampOrdering => write!(f, "MVTO"),
        }
    }
}

/// Atomic commitment protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AcpKind {
    /// Two-phase commit (the Rainbow default).
    #[default]
    TwoPhaseCommit,
    /// Three-phase commit (non-blocking extension, Section 5).
    ThreePhaseCommit,
}

impl fmt::Display for AcpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcpKind::TwoPhaseCommit => write!(f, "2PC"),
            AcpKind::ThreePhaseCommit => write!(f, "3PC"),
        }
    }
}

/// Deadlock handling policy for the two-phase-locking CCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DeadlockPolicy {
    /// Maintain a wait-for graph and abort a victim when a cycle appears.
    #[default]
    WaitForGraph,
    /// Wait-die: an older transaction may wait for a younger one; a younger
    /// requester is aborted ("dies") instead of waiting.
    WaitDie,
    /// Wound-wait: an older requester aborts ("wounds") the younger holder; a
    /// younger requester waits.
    WoundWait,
    /// No detection — rely purely on lock-wait timeouts.
    TimeoutOnly,
}

impl fmt::Display for DeadlockPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlockPolicy::WaitForGraph => write!(f, "wait-for-graph"),
            DeadlockPolicy::WaitDie => write!(f, "wait-die"),
            DeadlockPolicy::WoundWait => write!(f, "wound-wait"),
            DeadlockPolicy::TimeoutOnly => write!(f, "timeout-only"),
        }
    }
}

/// Which coordinator runtime drives interactive conversations at a site.
///
/// The paper's design — and the oracle the differential tests trust — is
/// one thread per conversation, blocking on a per-transaction reply
/// channel. The reactor is the production-shaped alternative: a small
/// pool of sharded event loops, each owning the transactions pinned to it
/// by `TxnId` hash and batching its outbound messages and commit-time log
/// forces per tick. Both run the same protocol stack and must produce the
/// same histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CoordinatorMode {
    /// One thread per interactive conversation (the paper's design).
    #[default]
    Threads,
    /// Sharded event-loop pool with per-tick message + group-commit
    /// batching.
    Reactor,
}

impl CoordinatorMode {
    /// Both modes, in presentation order — what matrices sweep over.
    pub const ALL: [CoordinatorMode; 2] = [CoordinatorMode::Threads, CoordinatorMode::Reactor];

    /// Stable lowercase name (matches the `RAINBOW_COORDINATOR` values).
    pub fn name(&self) -> &'static str {
        match self {
            CoordinatorMode::Threads => "threads",
            CoordinatorMode::Reactor => "reactor",
        }
    }
}

impl fmt::Display for CoordinatorMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The complete protocol stack of one Rainbow instance, as selected in the
/// protocols configuration panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolStack {
    /// Replication control protocol.
    pub rcp: RcpKind,
    /// Concurrency control protocol.
    pub ccp: CcpKind,
    /// Atomic commitment protocol.
    pub acp: AcpKind,
    /// Deadlock policy (only meaningful when `ccp` is 2PL).
    pub deadlock: DeadlockPolicy,
    /// How long a transaction waits for a lock / quorum / vote before the
    /// corresponding layer declares a timeout abort.
    pub lock_wait_timeout: Duration,
    /// Timeout used by the commit coordinator when collecting votes/acks.
    pub commit_timeout: Duration,
    /// Timeout used by the RCP when collecting copies/votes from copy
    /// holders.
    pub quorum_timeout: Duration,
    /// When true (the default) the coordinator fans out the copy-access
    /// requests of **all** of a transaction's operations concurrently and
    /// collects the replies under one deadline; when false it assembles one
    /// quorum at a time (the paper's strictly sequential RCP loop, kept for
    /// comparison experiments and differential tests).
    pub parallel_quorums: bool,
    /// Which coordinator runtime drives interactive conversations: one
    /// thread per conversation (the paper's design, the default and the
    /// differential oracle) or the sharded reactor event-loop pool.
    pub coordinator: CoordinatorMode,
}

impl Default for ProtocolStack {
    fn default() -> Self {
        ProtocolStack {
            rcp: RcpKind::default(),
            ccp: CcpKind::default(),
            acp: AcpKind::default(),
            deadlock: DeadlockPolicy::default(),
            lock_wait_timeout: Duration::from_millis(500),
            commit_timeout: Duration::from_millis(1000),
            quorum_timeout: Duration::from_millis(1000),
            parallel_quorums: true,
            coordinator: CoordinatorMode::default(),
        }
    }
}

impl ProtocolStack {
    /// The paper's default stack: QC + 2PL + 2PC.
    pub fn rainbow_default() -> Self {
        ProtocolStack::default()
    }

    /// Builder-style RCP selection.
    pub fn with_rcp(mut self, rcp: RcpKind) -> Self {
        self.rcp = rcp;
        self
    }

    /// Builder-style CCP selection.
    pub fn with_ccp(mut self, ccp: CcpKind) -> Self {
        self.ccp = ccp;
        self
    }

    /// Builder-style ACP selection.
    pub fn with_acp(mut self, acp: AcpKind) -> Self {
        self.acp = acp;
        self
    }

    /// Builder-style deadlock-policy selection.
    pub fn with_deadlock_policy(mut self, policy: DeadlockPolicy) -> Self {
        self.deadlock = policy;
        self
    }

    /// Builder-style lock-wait timeout.
    pub fn with_lock_wait_timeout(mut self, timeout: Duration) -> Self {
        self.lock_wait_timeout = timeout;
        self
    }

    /// Builder-style commit timeout.
    pub fn with_commit_timeout(mut self, timeout: Duration) -> Self {
        self.commit_timeout = timeout;
        self
    }

    /// Builder-style quorum timeout.
    pub fn with_quorum_timeout(mut self, timeout: Duration) -> Self {
        self.quorum_timeout = timeout;
        self
    }

    /// Builder-style quorum fan-out selection (`true` = all operations'
    /// quorums are requested concurrently, `false` = one at a time).
    pub fn with_parallel_quorums(mut self, parallel: bool) -> Self {
        self.parallel_quorums = parallel;
        self
    }

    /// Applies the `RAINBOW_PARALLEL_QUORUMS` environment variable, when
    /// set, to the quorum fan-out knob: `0`, `false`, `off`, `no`,
    /// `sequential` or `seq` select the sequential path, anything else the
    /// parallel one. An unset variable leaves the stack unchanged.
    ///
    /// The integration tests build their stacks through this helper so CI
    /// can run the whole suite under both fan-out paths as matrix legs.
    pub fn with_parallel_quorums_from_env(mut self) -> Self {
        if let Ok(raw) = std::env::var("RAINBOW_PARALLEL_QUORUMS") {
            let value = raw.trim().to_ascii_lowercase();
            self.parallel_quorums = !matches!(
                value.as_str(),
                "0" | "false" | "off" | "no" | "sequential" | "seq"
            );
        }
        self
    }

    /// Builder-style coordinator-runtime selection.
    pub fn with_coordinator(mut self, mode: CoordinatorMode) -> Self {
        self.coordinator = mode;
        self
    }

    /// Applies the `RAINBOW_COORDINATOR` environment variable, when set,
    /// to the coordinator-runtime knob: `reactor` selects the sharded
    /// event-loop pool, `threads` the thread-per-conversation path;
    /// anything else (or unset) leaves the stack unchanged.
    ///
    /// Like [`ProtocolStack::with_parallel_quorums_from_env`], the
    /// integration tests build their stacks through this helper so CI can
    /// run the whole suite under both coordinator runtimes as matrix legs.
    pub fn with_coordinator_from_env(mut self) -> Self {
        if let Ok(raw) = std::env::var("RAINBOW_COORDINATOR") {
            match raw.trim().to_ascii_lowercase().as_str() {
                "reactor" => self.coordinator = CoordinatorMode::Reactor,
                "threads" => self.coordinator = CoordinatorMode::Threads,
                _ => {}
            }
        }
        self
    }

    /// How long a participant entry — or an idle interactive conversation —
    /// may sit without activity before a site presumes its driver dead and
    /// aborts it: three full protocol-timeout windows. The site janitor,
    /// the coordinator's conversation loop and the chaos harness's
    /// quiescence deadline all share this one definition, so a vanished
    /// client frees resources everywhere on the same clock and the harness
    /// never declares a run stuck while a coordinator is still legitimately
    /// waiting out the horizon.
    pub fn janitor_horizon(&self) -> Duration {
        (self.commit_timeout + self.quorum_timeout + self.lock_wait_timeout) * 3
    }

    /// A compact label such as `QC+2PL+2PC`, used in reports and bench
    /// output so series are easy to identify.
    pub fn label(&self) -> String {
        format!("{}+{}+{}", self.rcp, self.ccp, self.acp)
    }
}

impl fmt::Display for ProtocolStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let stack = ProtocolStack::rainbow_default();
        assert_eq!(stack.rcp, RcpKind::QuorumConsensus);
        assert_eq!(stack.ccp, CcpKind::TwoPhaseLocking);
        assert_eq!(stack.acp, AcpKind::TwoPhaseCommit);
        assert_eq!(stack.label(), "QC+2PL+2PC");
    }

    #[test]
    fn builders_override_each_layer_independently() {
        let stack = ProtocolStack::default()
            .with_rcp(RcpKind::Rowa)
            .with_ccp(CcpKind::TimestampOrdering)
            .with_acp(AcpKind::ThreePhaseCommit)
            .with_deadlock_policy(DeadlockPolicy::WoundWait);
        assert_eq!(stack.rcp, RcpKind::Rowa);
        assert_eq!(stack.ccp, CcpKind::TimestampOrdering);
        assert_eq!(stack.acp, AcpKind::ThreePhaseCommit);
        assert_eq!(stack.deadlock, DeadlockPolicy::WoundWait);
        assert_eq!(stack.label(), "ROWA+TSO+3PC");
    }

    #[test]
    fn timeout_builders() {
        let stack = ProtocolStack::default()
            .with_lock_wait_timeout(Duration::from_millis(10))
            .with_commit_timeout(Duration::from_millis(20))
            .with_quorum_timeout(Duration::from_millis(30));
        assert_eq!(stack.lock_wait_timeout, Duration::from_millis(10));
        assert_eq!(stack.commit_timeout, Duration::from_millis(20));
        assert_eq!(stack.quorum_timeout, Duration::from_millis(30));
    }

    #[test]
    fn rcp_kind_round_trips_through_from_str() {
        for kind in RcpKind::ALL {
            // Short display name.
            assert_eq!(kind.to_string().parse::<RcpKind>().unwrap(), kind);
            // Long config name, case-insensitively and with padding.
            let sloppy = format!("  {}  ", kind.config_name().to_ascii_uppercase());
            assert_eq!(sloppy.parse::<RcpKind>().unwrap(), kind);
        }
        assert!("paxos".parse::<RcpKind>().is_err());
        assert!("".parse::<RcpKind>().is_err());
    }

    #[test]
    fn rcp_kind_all_has_no_duplicates() {
        for (i, a) in RcpKind::ALL.iter().enumerate() {
            for b in RcpKind::ALL.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn parallel_quorums_env_knob_overrides_the_default() {
        // No other test in this binary reads this variable, so mutating the
        // process environment here cannot race with parallel test threads.
        std::env::set_var("RAINBOW_PARALLEL_QUORUMS", "sequential");
        let stack = ProtocolStack::default().with_parallel_quorums_from_env();
        assert!(!stack.parallel_quorums);
        std::env::set_var("RAINBOW_PARALLEL_QUORUMS", "1");
        let stack = ProtocolStack::default().with_parallel_quorums_from_env();
        assert!(stack.parallel_quorums);
        std::env::remove_var("RAINBOW_PARALLEL_QUORUMS");
        let stack = ProtocolStack::default()
            .with_parallel_quorums(false)
            .with_parallel_quorums_from_env();
        assert!(!stack.parallel_quorums, "unset env leaves the knob alone");
    }

    #[test]
    fn coordinator_env_knob_overrides_the_default() {
        // No other test in this binary reads this variable, so mutating the
        // process environment here cannot race with parallel test threads.
        std::env::set_var("RAINBOW_COORDINATOR", "reactor");
        let stack = ProtocolStack::default().with_coordinator_from_env();
        assert_eq!(stack.coordinator, CoordinatorMode::Reactor);
        std::env::set_var("RAINBOW_COORDINATOR", "THREADS");
        let stack = ProtocolStack::default()
            .with_coordinator(CoordinatorMode::Reactor)
            .with_coordinator_from_env();
        assert_eq!(stack.coordinator, CoordinatorMode::Threads);
        std::env::set_var("RAINBOW_COORDINATOR", "garbage");
        let stack = ProtocolStack::default()
            .with_coordinator(CoordinatorMode::Reactor)
            .with_coordinator_from_env();
        assert_eq!(
            stack.coordinator,
            CoordinatorMode::Reactor,
            "unknown values leave the knob alone"
        );
        std::env::remove_var("RAINBOW_COORDINATOR");
        let stack = ProtocolStack::default().with_coordinator_from_env();
        assert_eq!(stack.coordinator, CoordinatorMode::Threads);
    }

    #[test]
    fn coordinator_mode_names_are_stable_and_round_trip() {
        assert_eq!(CoordinatorMode::Threads.to_string(), "threads");
        assert_eq!(CoordinatorMode::Reactor.to_string(), "reactor");
        assert_eq!(CoordinatorMode::ALL.len(), 2);
        let stack = ProtocolStack::default().with_coordinator(CoordinatorMode::Reactor);
        let json = serde_json::to_string(&stack).unwrap();
        let back: ProtocolStack = serde_json::from_str(&json).unwrap();
        assert_eq!(back.coordinator, CoordinatorMode::Reactor);
    }

    #[test]
    fn display_names_match_the_literature() {
        assert_eq!(RcpKind::Rowa.to_string(), "ROWA");
        assert_eq!(RcpKind::QuorumConsensus.to_string(), "QC");
        assert_eq!(RcpKind::AvailableCopies.to_string(), "AC");
        assert_eq!(RcpKind::TreeQuorum.to_string(), "TQ");
        assert_eq!(RcpKind::PrimaryCopy.to_string(), "PC");
        assert_eq!(CcpKind::TwoPhaseLocking.to_string(), "2PL");
        assert_eq!(CcpKind::TimestampOrdering.to_string(), "TSO");
        assert_eq!(CcpKind::MultiversionTimestampOrdering.to_string(), "MVTO");
        assert_eq!(AcpKind::TwoPhaseCommit.to_string(), "2PC");
        assert_eq!(AcpKind::ThreePhaseCommit.to_string(), "3PC");
        assert_eq!(DeadlockPolicy::WaitDie.to_string(), "wait-die");
    }

    #[test]
    fn protocol_stack_serde_round_trip() {
        let stack = ProtocolStack::default().with_ccp(CcpKind::MultiversionTimestampOrdering);
        let json = serde_json::to_string(&stack).unwrap();
        let back: ProtocolStack = serde_json::from_str(&json).unwrap();
        assert_eq!(stack, back);
    }
}
