//! Transaction specifications, outcomes and abort classification.
//!
//! Section 3 of the paper lists, among the output statistics, the "number of
//! aborted transactions (and rate) due to RCP, ACP, and CCP" — aborts are
//! attributed to the protocol layer that caused them. [`AbortCause`]
//! captures that classification and is threaded through every layer of this
//! reproduction so the progress monitor can reproduce the same breakdown.

use crate::ids::{ItemId, SiteId, Timestamp, TxnId};
use crate::op::Operation;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A transaction as submitted by a user or the workload generator: an
/// ordered list of operations, plus optional metadata used for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Human-readable label ("T1", "transfer", ...) used in reports; does not
    /// need to be unique.
    pub label: String,
    /// The operations, executed in order.
    pub operations: Vec<Operation>,
    /// Preferred home site; `None` lets the dispatcher choose (round-robin or
    /// random, mirroring the GUI's automatic dispatch).
    pub home: Option<SiteId>,
}

impl TxnSpec {
    /// Creates a transaction from its operations.
    pub fn new(label: impl Into<String>, operations: Vec<Operation>) -> Self {
        TxnSpec {
            label: label.into(),
            operations,
            home: None,
        }
    }

    /// Builder-style helper pinning the transaction to a home site, like the
    /// manual workload panel (Figure A-2) does.
    pub fn at_site(mut self, site: SiteId) -> Self {
        self.home = Some(site);
        self
    }

    /// Items read by the transaction (including read-modify-write items).
    pub fn read_set(&self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self
            .operations
            .iter()
            .filter(|op| op.is_read())
            .map(|op| op.item().clone())
            .collect();
        items.sort();
        items.dedup();
        items
    }

    /// Items written by the transaction (including read-modify-write items).
    pub fn write_set(&self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self
            .operations
            .iter()
            .filter(|op| op.is_update())
            .map(|op| op.item().clone())
            .collect();
        items.sort();
        items.dedup();
        items
    }

    /// True when the transaction contains no update operation.
    pub fn is_read_only(&self) -> bool {
        self.operations.iter().all(|op| !op.is_update())
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// True when the transaction has no operations.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }
}

/// Why a transaction aborted, attributed to the protocol layer responsible.
///
/// The breakdown mirrors the paper's statistics list: "abort rates for each
/// type of aborts" due to RCP, CCP and ACP.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortCause {
    /// Replication control could not assemble a read or write quorum (not
    /// enough live copy holders / votes).
    RcpQuorumUnavailable {
        /// Item for which the quorum failed.
        item: ItemId,
        /// Votes collected.
        collected: u32,
        /// Votes required.
        required: u32,
    },
    /// Replication control timed out waiting for copy-holder responses.
    RcpTimeout {
        /// Item for which responses were missing.
        item: ItemId,
    },
    /// Concurrency control: lock request denied or timed out (2PL).
    CcpLockConflict {
        /// Item on which the conflict occurred.
        item: ItemId,
        /// Holder of the conflicting lock, when known.
        holder: Option<TxnId>,
    },
    /// Concurrency control: deadlock victim (2PL with wait-for-graph
    /// detection, or wound-wait/wait-die policy).
    CcpDeadlock {
        /// Item the victim was waiting for.
        item: ItemId,
    },
    /// Concurrency control: timestamp-ordering rejection (operation arrived
    /// too late with respect to the item's read/write timestamps).
    CcpTimestampViolation {
        /// Item on which the violation occurred.
        item: ItemId,
        /// Timestamp of the rejected transaction.
        rejected: Timestamp,
    },
    /// Atomic commit: a participant voted NO in phase one.
    AcpVotedNo {
        /// The participant that voted no.
        participant: SiteId,
    },
    /// Atomic commit: coordinator timed out collecting votes or acks.
    AcpTimeout {
        /// Phase in which the timeout happened ("prepare", "commit", ...).
        phase: String,
    },
    /// The site or network failed in a way that orphaned the transaction
    /// (home site crash, unreachable coordinator).
    SiteFailure {
        /// The failed site.
        site: SiteId,
    },
    /// An interactive client stopped driving an open conversation: the
    /// coordinator aborted the transaction after its idle horizon expired so
    /// the CCP resources it held could not linger.
    ClientTimeout,
    /// Aborted explicitly by the user / workload generator.
    UserAbort,
}

impl AbortCause {
    /// The protocol layer charged with the abort, for the statistics
    /// breakdown. `None` groups failures and user aborts under "other".
    pub fn layer(&self) -> AbortLayer {
        match self {
            AbortCause::RcpQuorumUnavailable { .. } | AbortCause::RcpTimeout { .. } => {
                AbortLayer::Rcp
            }
            AbortCause::CcpLockConflict { .. }
            | AbortCause::CcpDeadlock { .. }
            | AbortCause::CcpTimestampViolation { .. } => AbortLayer::Ccp,
            AbortCause::AcpVotedNo { .. } | AbortCause::AcpTimeout { .. } => AbortLayer::Acp,
            AbortCause::SiteFailure { .. } | AbortCause::ClientTimeout | AbortCause::UserAbort => {
                AbortLayer::Other
            }
        }
    }

    /// True when a fresh attempt of the same transaction has a plausible
    /// chance of succeeding: concurrency-control conflicts, quorum timeouts
    /// and commit-protocol timeouts are transient, while a user abort or an
    /// abandoned conversation is deliberate. The interactive retry
    /// combinator ([`TxnError::is_retryable`]) is built on this.
    pub fn is_transient(&self) -> bool {
        !matches!(self, AbortCause::UserAbort | AbortCause::ClientTimeout)
    }
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCause::RcpQuorumUnavailable {
                item,
                collected,
                required,
            } => write!(
                f,
                "RCP: quorum unavailable for {item} ({collected}/{required} votes)"
            ),
            AbortCause::RcpTimeout { item } => {
                write!(f, "RCP: timeout collecting copies of {item}")
            }
            AbortCause::CcpLockConflict { item, holder } => match holder {
                Some(h) => write!(f, "CCP: lock conflict on {item} held by {h}"),
                None => write!(f, "CCP: lock conflict on {item}"),
            },
            AbortCause::CcpDeadlock { item } => {
                write!(f, "CCP: deadlock victim waiting for {item}")
            }
            AbortCause::CcpTimestampViolation { item, rejected } => {
                write!(f, "CCP: timestamp violation on {item} (ts {rejected})")
            }
            AbortCause::AcpVotedNo { participant } => {
                write!(f, "ACP: participant {participant} voted NO")
            }
            AbortCause::AcpTimeout { phase } => write!(f, "ACP: timeout during {phase}"),
            AbortCause::SiteFailure { site } => write!(f, "site failure at {site}"),
            AbortCause::ClientTimeout => write!(f, "client abandoned the conversation"),
            AbortCause::UserAbort => write!(f, "user abort"),
        }
    }
}

/// The protocol layer an abort is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AbortLayer {
    /// Replication control protocol.
    Rcp,
    /// Concurrency control protocol.
    Ccp,
    /// Atomic commitment protocol.
    Acp,
    /// Failures and user aborts.
    Other,
}

impl fmt::Display for AbortLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortLayer::Rcp => write!(f, "RCP"),
            AbortLayer::Ccp => write!(f, "CCP"),
            AbortLayer::Acp => write!(f, "ACP"),
            AbortLayer::Other => write!(f, "other"),
        }
    }
}

/// Final outcome of a transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// The transaction committed.
    Committed,
    /// The transaction aborted for the given reason.
    Aborted(AbortCause),
    /// The transaction never reached a decision visible to the client — its
    /// home site or coordinator crashed mid-flight. Section 3 calls these
    /// "orphan transactions".
    Orphaned,
}

impl TxnOutcome {
    /// True if committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }

    /// True if aborted (not orphaned).
    pub fn is_aborted(&self) -> bool {
        matches!(self, TxnOutcome::Aborted(_))
    }

    /// True if orphaned.
    pub fn is_orphaned(&self) -> bool {
        matches!(self, TxnOutcome::Orphaned)
    }

    /// The abort cause, if aborted.
    pub fn abort_cause(&self) -> Option<&AbortCause> {
        match self {
            TxnOutcome::Aborted(cause) => Some(cause),
            _ => None,
        }
    }
}

/// The complete result of processing one transaction, as fed back to the GUI
/// ("the results of transaction processing are feeding back to the user in
/// real time").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnResult {
    /// The transaction id assigned by the home site.
    pub id: TxnId,
    /// The label from the submitted [`TxnSpec`].
    pub label: String,
    /// Outcome.
    pub outcome: TxnOutcome,
    /// Values observed by the read operations, keyed by item. Present only
    /// for committed transactions.
    pub reads: BTreeMap<ItemId, Value>,
    /// Wall-clock response time (submission to decision).
    pub response_time: Duration,
    /// Number of restarts the transaction went through before reaching this
    /// outcome (a transaction aborted by CCP may be resubmitted by the
    /// workload generator).
    pub restarts: u32,
    /// Messages exchanged on behalf of this transaction, as counted by the
    /// network simulator.
    pub messages: u64,
}

impl TxnResult {
    /// Shorthand used by tests and reports.
    pub fn committed(&self) -> bool {
        self.outcome.is_committed()
    }
}

/// Error surfaced by the interactive transaction API (`Client` / `Txn`
/// handles): every way a conversation can fail, carrying the protocol layer
/// responsible so an interactive user sees the same abort attribution the
/// statistics panel reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TxnError {
    /// The transaction aborted; the cause names the responsible layer
    /// (CCP deadlock/conflict, RCP quorum unreachable, ACP termination, ...).
    Aborted(AbortCause),
    /// The conversation got no reply from the home site within the client
    /// timeout: the transaction's fate is unknown (the paper's "orphan").
    Orphaned {
        /// The home site that stopped answering.
        home: SiteId,
    },
    /// The coordinator no longer recognizes the transaction — the
    /// conversation idled past the coordinator's horizon and was aborted, or
    /// the home site lost its volatile state in a crash.
    Expired,
    /// The handle was already finished by an earlier error; no further
    /// operations are possible on it.
    Finished,
}

impl TxnError {
    /// The protocol layer charged with the failure, mirroring
    /// [`AbortCause::layer`]. Orphans and handle-state errors fall under
    /// "other", like site failures do.
    pub fn layer(&self) -> AbortLayer {
        match self {
            TxnError::Aborted(cause) => cause.layer(),
            TxnError::Orphaned { .. } | TxnError::Expired | TxnError::Finished => AbortLayer::Other,
        }
    }

    /// The abort cause, when the error is an abort.
    pub fn abort_cause(&self) -> Option<&AbortCause> {
        match self {
            TxnError::Aborted(cause) => Some(cause),
            _ => None,
        }
    }

    /// True when beginning a fresh transaction and replaying the
    /// conversation may succeed: transient aborts (lock conflicts,
    /// deadlock victims, quorum/commit timeouts), orphaned conversations
    /// (retry at another home site) and expired handles. Deliberate aborts
    /// and handle misuse are not retryable.
    pub fn is_retryable(&self) -> bool {
        match self {
            TxnError::Aborted(cause) => cause.is_transient(),
            TxnError::Orphaned { .. } | TxnError::Expired => true,
            TxnError::Finished => false,
        }
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Aborted(cause) => write!(f, "transaction aborted: {cause}"),
            TxnError::Orphaned { home } => {
                write!(f, "transaction orphaned: home site {home} never answered")
            }
            TxnError::Expired => write!(f, "the coordinator no longer knows this transaction"),
            TxnError::Finished => write!(f, "the transaction handle is already finished"),
        }
    }
}

impl std::error::Error for TxnError {}

/// Proof of a committed interactive transaction, returned by `Txn::commit`:
/// the identity the home site assigned plus everything the conversation
/// observed and cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnReceipt {
    /// The transaction id assigned by the home site.
    pub id: TxnId,
    /// The label the transaction was begun with.
    pub label: String,
    /// Values observed by the conversation's read operations.
    pub reads: BTreeMap<ItemId, Value>,
    /// Wall-clock span of the conversation (begin to commit decision).
    pub response_time: Duration,
    /// Messages exchanged on behalf of the transaction by the protocol
    /// layers (client conversation round trips excluded, as in the paper's
    /// accounting).
    pub messages: u64,
    /// Aborted attempts the retry combinator went through before this
    /// commit (0 for a first-try success).
    pub restarts: u32,
}

impl TxnReceipt {
    /// Builds a receipt from a committed [`TxnResult`]. Returns `None` when
    /// the result did not commit.
    pub fn from_result(result: &TxnResult) -> Option<Self> {
        result.committed().then(|| TxnReceipt {
            id: result.id,
            label: result.label.clone(),
            reads: result.reads.clone(),
            response_time: result.response_time,
            messages: result.messages,
            restarts: result.restarts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operation;

    fn transfer() -> TxnSpec {
        TxnSpec::new(
            "transfer",
            vec![
                Operation::read("a"),
                Operation::read("b"),
                Operation::write("a", 10i64),
                Operation::write("b", 20i64),
            ],
        )
    }

    #[test]
    fn read_and_write_sets_are_sorted_and_deduplicated() {
        let t = TxnSpec::new(
            "t",
            vec![
                Operation::read("x"),
                Operation::increment("x", 1),
                Operation::write("a", 1i64),
                Operation::write("a", 2i64),
            ],
        );
        assert_eq!(t.read_set(), vec![ItemId::new("x")]);
        assert_eq!(t.write_set(), vec![ItemId::new("a"), ItemId::new("x")]);
    }

    #[test]
    fn read_only_detection() {
        let ro = TxnSpec::new("ro", vec![Operation::read("x"), Operation::read("y")]);
        assert!(ro.is_read_only());
        assert!(!transfer().is_read_only());
    }

    #[test]
    fn at_site_sets_home() {
        let t = transfer().at_site(SiteId(3));
        assert_eq!(t.home, Some(SiteId(3)));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_spec_is_empty() {
        let t = TxnSpec::new("noop", vec![]);
        assert!(t.is_empty());
        assert!(t.is_read_only());
        assert_eq!(t.read_set(), vec![]);
        assert_eq!(t.write_set(), vec![]);
    }

    #[test]
    fn abort_causes_map_to_layers() {
        let rcp = AbortCause::RcpQuorumUnavailable {
            item: ItemId::new("x"),
            collected: 1,
            required: 2,
        };
        let rcp2 = AbortCause::RcpTimeout {
            item: ItemId::new("x"),
        };
        let ccp = AbortCause::CcpLockConflict {
            item: ItemId::new("x"),
            holder: None,
        };
        let ccp2 = AbortCause::CcpDeadlock {
            item: ItemId::new("x"),
        };
        let ccp3 = AbortCause::CcpTimestampViolation {
            item: ItemId::new("x"),
            rejected: Timestamp::new(1, 1),
        };
        let acp = AbortCause::AcpVotedNo {
            participant: SiteId(1),
        };
        let acp2 = AbortCause::AcpTimeout {
            phase: "prepare".into(),
        };
        let other = AbortCause::SiteFailure { site: SiteId(0) };
        assert_eq!(rcp.layer(), AbortLayer::Rcp);
        assert_eq!(rcp2.layer(), AbortLayer::Rcp);
        assert_eq!(ccp.layer(), AbortLayer::Ccp);
        assert_eq!(ccp2.layer(), AbortLayer::Ccp);
        assert_eq!(ccp3.layer(), AbortLayer::Ccp);
        assert_eq!(acp.layer(), AbortLayer::Acp);
        assert_eq!(acp2.layer(), AbortLayer::Acp);
        assert_eq!(other.layer(), AbortLayer::Other);
        assert_eq!(AbortCause::UserAbort.layer(), AbortLayer::Other);
    }

    #[test]
    fn outcome_predicates() {
        assert!(TxnOutcome::Committed.is_committed());
        assert!(!TxnOutcome::Committed.is_aborted());
        let aborted = TxnOutcome::Aborted(AbortCause::UserAbort);
        assert!(aborted.is_aborted());
        assert!(aborted.abort_cause().is_some());
        assert!(TxnOutcome::Orphaned.is_orphaned());
        assert!(TxnOutcome::Committed.abort_cause().is_none());
    }

    #[test]
    fn abort_cause_display_mentions_layer() {
        let c = AbortCause::CcpDeadlock {
            item: ItemId::new("x"),
        };
        assert!(c.to_string().contains("CCP"));
        let c = AbortCause::AcpTimeout {
            phase: "prepare".into(),
        };
        assert!(c.to_string().contains("ACP"));
        let c = AbortCause::RcpTimeout {
            item: ItemId::new("x"),
        };
        assert!(c.to_string().contains("RCP"));
        assert_eq!(AbortLayer::Rcp.to_string(), "RCP");
        assert_eq!(AbortLayer::Other.to_string(), "other");
    }

    #[test]
    fn txn_error_layers_and_retryability() {
        let ccp = TxnError::Aborted(AbortCause::CcpDeadlock {
            item: ItemId::new("x"),
        });
        assert_eq!(ccp.layer(), AbortLayer::Ccp);
        assert!(ccp.is_retryable());
        assert!(ccp.abort_cause().is_some());
        assert!(ccp.to_string().contains("CCP"));

        let user = TxnError::Aborted(AbortCause::UserAbort);
        assert!(!user.is_retryable(), "deliberate aborts are not retried");
        let idle = TxnError::Aborted(AbortCause::ClientTimeout);
        assert!(!idle.is_retryable(), "abandoned conversations are final");
        assert_eq!(idle.layer(), AbortLayer::Other);

        let orphan = TxnError::Orphaned { home: SiteId(2) };
        assert!(orphan.is_retryable(), "retry at another home site");
        assert_eq!(orphan.layer(), AbortLayer::Other);
        assert!(orphan.to_string().contains("site2"));
        assert!(TxnError::Expired.is_retryable());
        assert!(!TxnError::Finished.is_retryable());
        assert!(TxnError::Finished.abort_cause().is_none());
    }

    #[test]
    fn receipt_only_from_committed_results() {
        let mut result = TxnResult {
            id: TxnId::new(SiteId(0), 1),
            label: "t".into(),
            outcome: TxnOutcome::Committed,
            reads: BTreeMap::new(),
            response_time: Duration::from_millis(5),
            restarts: 1,
            messages: 12,
        };
        let receipt = TxnReceipt::from_result(&result).expect("committed result");
        assert_eq!(receipt.id, result.id);
        assert_eq!(receipt.messages, 12);
        assert_eq!(receipt.restarts, 1);
        result.outcome = TxnOutcome::Aborted(AbortCause::UserAbort);
        assert!(TxnReceipt::from_result(&result).is_none());
        result.outcome = TxnOutcome::Orphaned;
        assert!(TxnReceipt::from_result(&result).is_none());
    }

    #[test]
    fn txn_result_committed_shorthand() {
        let res = TxnResult {
            id: TxnId::new(SiteId(0), 1),
            label: "t".into(),
            outcome: TxnOutcome::Committed,
            reads: BTreeMap::new(),
            response_time: Duration::from_millis(5),
            restarts: 0,
            messages: 12,
        };
        assert!(res.committed());
    }
}
