//! A fast, non-cryptographic hasher for the data-plane hot path.
//!
//! The std `HashMap` default (SipHash-1-3) is keyed and DoS-resistant but
//! costs tens of nanoseconds even for tiny keys. Rainbow's hot maps are
//! keyed by [`crate::ItemId`] (which hashes as one precomputed `u64`) and
//! by [`crate::TxnId`] (two small integers) inside a closed simulation — no
//! attacker-controlled keys — so a multiply-xor hasher in the FxHash family
//! is both safe and several times faster.

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (golden-ratio derived, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor hasher (FxHash family).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_word(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_word(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_word(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_word(value as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_insert_and_look_up() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(map.get(&i), Some(&((i * 2) as u32)));
        }
    }

    #[test]
    fn distinct_words_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(i);
            seen.insert(hasher.finish());
        }
        assert_eq!(seen.len(), 10_000, "64-bit outputs must not collide here");
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut a = FxHasher::default();
        a.write(b"hello world!!"); // 13 bytes: one full chunk + remainder
        let mut b = FxHasher::default();
        b.write(b"hello world!?");
        assert_ne!(a.finish(), b.finish());
    }
}
