//! # rainbow-common
//!
//! Shared vocabulary types for the Rainbow distributed database system, a
//! Rust reproduction of *"Rainbow: Distributed Database System for Classroom
//! Education and Experimental Research"* (Helal & Li, VLDB 2000).
//!
//! Every other crate in the workspace builds on the definitions collected
//! here:
//!
//! * [`ids`] — strongly-typed identifiers (sites, hosts, transactions, data
//!   items, copies, messages) and version numbers;
//! * [`value`] — the value domain stored in database items;
//! * [`op`] — read/write operations that make up a transaction;
//! * [`txn`] — transaction specifications, outcomes and abort causes
//!   (classified by the protocol layer that caused them: RCP, CCP or ACP);
//! * [`protocol`] — the protocol selection enums the paper exposes in its
//!   "Protocols Configuration" GUI panel (Figure 4): replication control,
//!   concurrency control and atomic commitment;
//! * [`config`] — database schema, replication scheme and site placement
//!   descriptions maintained by the Rainbow name server;
//! * [`clock`] — logical clocks and site-unique timestamp generation used by
//!   timestamp-ordering concurrency control and the progress monitor;
//! * [`stats`] — the extensible statistics set of Section 3 of the paper
//!   (commit/abort counts and rates, message counts, response times,
//!   throughput, load balance indicators);
//! * [`history`] — transaction-history types for the chaos laboratory: what
//!   every transaction read (item, value, version), wrote, and how it ended,
//!   collected cluster-wide for the `rainbow-check` serializability checker;
//! * [`error`] — the crate-wide error type;
//! * [`rng`] — deterministic random number helpers (Zipf, hot-spot and
//!   uniform access distributions) used by the workload generator and the
//!   network simulator.
//!
//! The crate is intentionally free of any I/O, threading or protocol logic:
//! it only defines data. This mirrors the paper's goal that protocols be
//! implemented "with minimum interdependencies and assumptions in order to
//! facilitate their replacement (e.g., by students) with minimum system-wide
//! modifications".

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod config;
pub mod error;
pub mod fxhash;
pub mod history;
pub mod ids;
pub mod op;
pub mod protocol;
pub mod rng;
pub mod stats;
pub mod txn;
pub mod value;

pub use clock::{LamportClock, TimestampGenerator};
pub use config::{DatabaseSchema, DistributionSchema, ItemSpec, ReplicationScheme, SiteSpec};
pub use error::{RainbowError, RainbowResult};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use history::{History, HistorySink, ReadObservation, TxnRecord, WriteRecord};
pub use ids::{CopyId, HostId, ItemId, MessageId, SiteId, Timestamp, TxnId, Version};
pub use op::{Operation, OperationKind};
pub use protocol::{AcpKind, CcpKind, CoordinatorMode, ProtocolStack, RcpKind};
pub use stats::{AbortBreakdown, LatencyStats, StatsSnapshot};
pub use txn::{AbortCause, TxnError, TxnOutcome, TxnReceipt, TxnResult, TxnSpec};
pub use value::Value;
