//! The crate-wide error type.

use crate::ids::{ItemId, SiteId, TxnId};
use crate::txn::AbortCause;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Convenient result alias used across the workspace.
pub type RainbowResult<T> = Result<T, RainbowError>;

/// Errors surfaced by the Rainbow crates.
///
/// Transaction aborts are *not* errors in the `Result` sense — they are a
/// normal outcome reported through [`crate::txn::TxnOutcome`] — but lower
/// layers use [`RainbowError::Abort`] internally to unwind a transaction
/// with its cause attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RainbowError {
    /// A configuration (schema, placement, protocol, network) was invalid.
    InvalidConfig(String),
    /// A referenced site is unknown to the name server.
    UnknownSite(SiteId),
    /// A referenced item is not declared in the database schema.
    UnknownItem(ItemId),
    /// A referenced transaction is not active at this site.
    UnknownTxn(TxnId),
    /// The target site is down or unreachable (crashed or partitioned away).
    SiteUnavailable(SiteId),
    /// A communication send/receive failed (channel closed, simulator shut
    /// down).
    Network(String),
    /// The operation timed out.
    Timeout(String),
    /// The transaction must abort for the given cause; the transaction
    /// manager converts this into a [`crate::txn::TxnOutcome::Aborted`].
    Abort(AbortCause),
    /// The component is shutting down.
    Shutdown,
    /// Persistence (WAL / checkpoint) failure.
    Storage(String),
    /// A durable log segment holds a corrupt record that is *not* a
    /// recoverable torn tail: the damage sits in the middle of the log (or
    /// the record decodes as garbage despite a valid checksum), so replay
    /// cannot safely continue past it. Recovery surfaces this instead of
    /// guessing; the operator (or the catch-up copier) must restore the
    /// site from its peers.
    CorruptLog {
        /// Sequence number of the damaged segment file.
        segment: u64,
        /// Byte offset of the bad frame within the segment.
        offset: u64,
        /// What the scanner found (bad CRC, undecodable payload, ...).
        reason: String,
    },
    /// Serialization / deserialization of configuration failed.
    Serialization(String),
    /// Catch-all internal invariant violation; indicates a bug.
    Internal(String),
}

impl RainbowError {
    /// Shorthand for an abort error.
    pub fn abort(cause: AbortCause) -> Self {
        RainbowError::Abort(cause)
    }

    /// Returns the abort cause when this error is an abort.
    pub fn abort_cause(&self) -> Option<&AbortCause> {
        match self {
            RainbowError::Abort(cause) => Some(cause),
            _ => None,
        }
    }

    /// True when the error signals that the transaction should be retried
    /// (workload generators restart transactions aborted by concurrency
    /// control, but not those failed by configuration errors).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RainbowError::Abort(_) | RainbowError::Timeout(_) | RainbowError::SiteUnavailable(_)
        )
    }
}

impl fmt::Display for RainbowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RainbowError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RainbowError::UnknownSite(site) => write!(f, "unknown site {site}"),
            RainbowError::UnknownItem(item) => write!(f, "unknown item {item}"),
            RainbowError::UnknownTxn(txn) => write!(f, "unknown transaction {txn}"),
            RainbowError::SiteUnavailable(site) => write!(f, "site {site} unavailable"),
            RainbowError::Network(msg) => write!(f, "network error: {msg}"),
            RainbowError::Timeout(msg) => write!(f, "timeout: {msg}"),
            RainbowError::Abort(cause) => write!(f, "transaction aborted: {cause}"),
            RainbowError::Shutdown => write!(f, "component is shutting down"),
            RainbowError::Storage(msg) => write!(f, "storage error: {msg}"),
            RainbowError::CorruptLog {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corrupt log: segment {segment} offset {offset}: {reason}"
            ),
            RainbowError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            RainbowError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for RainbowError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ItemId;

    #[test]
    fn abort_helpers() {
        let err = RainbowError::abort(AbortCause::UserAbort);
        assert_eq!(err.abort_cause(), Some(&AbortCause::UserAbort));
        assert!(err.is_retryable());
        assert!(RainbowError::Timeout("t".into()).is_retryable());
        assert!(RainbowError::SiteUnavailable(SiteId(0)).is_retryable());
        assert!(!RainbowError::InvalidConfig("x".into()).is_retryable());
        assert!(RainbowError::InvalidConfig("x".into())
            .abort_cause()
            .is_none());
    }

    #[test]
    fn display_messages_are_informative() {
        let err = RainbowError::UnknownItem(ItemId::new("balance"));
        assert!(err.to_string().contains("balance"));
        let err = RainbowError::UnknownSite(SiteId(4));
        assert!(err.to_string().contains("site4"));
        let err = RainbowError::Abort(AbortCause::UserAbort);
        assert!(err.to_string().contains("aborted"));
        let err = RainbowError::Shutdown;
        assert!(err.to_string().contains("shutting down"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_error(_e: &dyn std::error::Error) {}
        takes_error(&RainbowError::Internal("boom".into()));
    }
}
