//! Logical clocks and timestamp generation.
//!
//! Timestamp-ordering concurrency control needs site-unique, totally ordered
//! transaction timestamps; the progress monitor needs a cheap monotonic
//! counter for windowed statistics. Both are provided here. The Lamport
//! clock also lets sites keep their counters loosely synchronized by merging
//! the counters piggybacked on messages.

use crate::ids::{SiteId, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};

/// A Lamport logical clock.
///
/// `tick` advances local time; `observe` merges a remote timestamp so the
/// local clock never falls behind timestamps it has seen.
#[derive(Debug, Default)]
pub struct LamportClock {
    counter: AtomicU64,
}

impl LamportClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        LamportClock {
            counter: AtomicU64::new(0),
        }
    }

    /// A clock starting at `start`.
    pub fn starting_at(start: u64) -> Self {
        LamportClock {
            counter: AtomicU64::new(start),
        }
    }

    /// Advances the clock and returns the new value.
    pub fn tick(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current value without advancing.
    pub fn now(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Merges a remote counter value: the local clock jumps to
    /// `max(local, remote) + 1` and the new value is returned.
    pub fn observe(&self, remote: u64) -> u64 {
        let mut current = self.counter.load(Ordering::Relaxed);
        loop {
            let next = current.max(remote) + 1;
            match self.counter.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(observed) => current = observed,
            }
        }
    }
}

/// Generates site-unique [`Timestamp`]s for transactions.
///
/// Two generators at different sites can never produce equal timestamps
/// because the site id is part of the timestamp and breaks ties.
#[derive(Debug)]
pub struct TimestampGenerator {
    site: SiteId,
    clock: LamportClock,
}

impl TimestampGenerator {
    /// Creates a generator for `site`.
    pub fn new(site: SiteId) -> Self {
        TimestampGenerator {
            site,
            clock: LamportClock::new(),
        }
    }

    /// The site this generator belongs to.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Issues the next timestamp.
    pub fn next(&self) -> Timestamp {
        Timestamp::new(self.clock.tick(), self.site.0)
    }

    /// Merges a timestamp observed on an incoming message, keeping this
    /// site's clock ahead of everything it has seen.
    pub fn observe(&self, remote: Timestamp) {
        self.clock.observe(remote.counter);
    }

    /// Current local logical time (no timestamp is issued).
    pub fn now(&self) -> u64 {
        self.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn tick_is_strictly_increasing() {
        let clock = LamportClock::new();
        let a = clock.tick();
        let b = clock.tick();
        let c = clock.tick();
        assert!(a < b && b < c);
        assert_eq!(clock.now(), c);
    }

    #[test]
    fn starting_at_offsets_the_counter() {
        let clock = LamportClock::starting_at(100);
        assert_eq!(clock.now(), 100);
        assert_eq!(clock.tick(), 101);
    }

    #[test]
    fn observe_jumps_ahead_of_remote() {
        let clock = LamportClock::new();
        clock.tick();
        let after = clock.observe(50);
        assert_eq!(after, 51);
        // Observing something older than local time still advances by one.
        let after = clock.observe(10);
        assert_eq!(after, 52);
    }

    #[test]
    fn generator_issues_increasing_site_tagged_timestamps() {
        let gen = TimestampGenerator::new(SiteId(3));
        let a = gen.next();
        let b = gen.next();
        assert!(a < b);
        assert_eq!(a.site, 3);
        assert_eq!(gen.site(), SiteId(3));
        assert!(gen.now() >= 2);
    }

    #[test]
    fn generators_at_different_sites_never_collide() {
        let g1 = TimestampGenerator::new(SiteId(1));
        let g2 = TimestampGenerator::new(SiteId(2));
        let t1 = g1.next();
        let t2 = g2.next();
        assert_ne!(t1, t2);
    }

    #[test]
    fn observe_keeps_generator_ahead() {
        let gen = TimestampGenerator::new(SiteId(1));
        gen.observe(Timestamp::new(500, 2));
        let t = gen.next();
        assert!(t.counter > 500);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let clock = Arc::new(LamportClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = Arc::clone(&clock);
            handles.push(thread::spawn(move || {
                (0..1000).map(|_| clock.tick()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "duplicate tick values observed");
        assert_eq!(clock.now(), 4000);
    }
}
