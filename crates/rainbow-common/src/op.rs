//! Transaction operations.
//!
//! A Rainbow transaction is a sequence of read and write operations on
//! logical database items (Section 2.1 of the paper: "QC starts by building
//! a quorum (read or write) for the first operation of the transaction ...
//! When a quorum is built for an operation, the next operation is
//! considered").

use crate::ids::ItemId;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an operation, without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperationKind {
    /// A read of a logical item.
    Read,
    /// A blind write of a logical item.
    Write,
    /// A read-modify-write (increment) of an integer item. The workload
    /// generator uses this for debit/credit style transactions; at the
    /// protocol level it behaves as a read followed by a write of the same
    /// item.
    Increment,
}

impl OperationKind {
    /// Whether the operation needs a write quorum / exclusive lock.
    pub fn is_update(self) -> bool {
        matches!(self, OperationKind::Write | OperationKind::Increment)
    }

    /// Whether the operation observes the current value of the item.
    pub fn is_read(self) -> bool {
        matches!(self, OperationKind::Read | OperationKind::Increment)
    }
}

/// One operation of a transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operation {
    /// Read the current value of `item`.
    Read {
        /// Target logical item.
        item: ItemId,
    },
    /// Write `value` into `item`.
    Write {
        /// Target logical item.
        item: ItemId,
        /// New value.
        value: Value,
    },
    /// Add `delta` to the integer value of `item` (read-modify-write).
    Increment {
        /// Target logical item.
        item: ItemId,
        /// Signed amount to add.
        delta: i64,
    },
}

impl Operation {
    /// Convenience constructor for a read.
    pub fn read(item: impl Into<ItemId>) -> Self {
        Operation::Read { item: item.into() }
    }

    /// Convenience constructor for a write.
    pub fn write(item: impl Into<ItemId>, value: impl Into<Value>) -> Self {
        Operation::Write {
            item: item.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for an increment.
    pub fn increment(item: impl Into<ItemId>, delta: i64) -> Self {
        Operation::Increment {
            item: item.into(),
            delta,
        }
    }

    /// The logical item this operation touches.
    pub fn item(&self) -> &ItemId {
        match self {
            Operation::Read { item } => item,
            Operation::Write { item, .. } => item,
            Operation::Increment { item, .. } => item,
        }
    }

    /// The kind of the operation.
    pub fn kind(&self) -> OperationKind {
        match self {
            Operation::Read { .. } => OperationKind::Read,
            Operation::Write { .. } => OperationKind::Write,
            Operation::Increment { .. } => OperationKind::Increment,
        }
    }

    /// Whether the operation updates the item (needs a write quorum and an
    /// exclusive lock).
    pub fn is_update(&self) -> bool {
        self.kind().is_update()
    }

    /// Whether the operation needs to observe the current value.
    pub fn is_read(&self) -> bool {
        self.kind().is_read()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Read { item } => write!(f, "r({item})"),
            Operation::Write { item, value } => write!(f, "w({item}={value})"),
            Operation::Increment { item, delta } => write!(f, "inc({item},{delta:+})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_variants() {
        let r = Operation::read("x");
        let w = Operation::write("y", 7i64);
        let i = Operation::increment("z", -2);
        assert_eq!(r.kind(), OperationKind::Read);
        assert_eq!(w.kind(), OperationKind::Write);
        assert_eq!(i.kind(), OperationKind::Increment);
        assert_eq!(r.item().name(), "x");
        assert_eq!(w.item().name(), "y");
        assert_eq!(i.item().name(), "z");
    }

    #[test]
    fn update_and_read_classification() {
        assert!(!Operation::read("x").is_update());
        assert!(Operation::read("x").is_read());
        assert!(Operation::write("x", 1i64).is_update());
        assert!(!Operation::write("x", 1i64).is_read());
        assert!(Operation::increment("x", 1).is_update());
        assert!(Operation::increment("x", 1).is_read());
    }

    #[test]
    fn kind_classification_matches_operation_classification() {
        for kind in [
            OperationKind::Read,
            OperationKind::Write,
            OperationKind::Increment,
        ] {
            // Increment is both a read and an update; Read only a read; Write
            // only an update.
            match kind {
                OperationKind::Read => {
                    assert!(kind.is_read());
                    assert!(!kind.is_update());
                }
                OperationKind::Write => {
                    assert!(!kind.is_read());
                    assert!(kind.is_update());
                }
                OperationKind::Increment => {
                    assert!(kind.is_read());
                    assert!(kind.is_update());
                }
            }
        }
    }

    #[test]
    fn display_matches_textbook_notation() {
        assert_eq!(Operation::read("x").to_string(), "r(x)");
        assert_eq!(Operation::write("x", 3i64).to_string(), "w(x=3)");
        assert_eq!(Operation::increment("x", 5).to_string(), "inc(x,+5)");
        assert_eq!(Operation::increment("x", -5).to_string(), "inc(x,-5)");
    }
}
