//! The value domain of Rainbow database items.
//!
//! The original system stores simple scalar values in its demonstration
//! database; we support integers, floats, text and raw bytes plus a `Null`
//! marker so that classroom exercises (bank accounts, seat counts, string
//! catalogues) can all be expressed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value stored in (one copy of) a database item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absence of a value; the state of an item that was declared but never
    /// written.
    #[default]
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Opaque bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the integer content if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float content if this is an [`Value::Float`] (or the
    /// integer content widened to a float).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the textual content if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(v) => Some(v),
            _ => None,
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Adds `delta` to an integer value, used by the workload generator's
    /// "debit/credit" style transactions. Null is treated as zero so that a
    /// fresh item can be incremented.
    ///
    /// Returns `None` when the value is not numeric.
    pub fn add_int(&self, delta: i64) -> Option<Value> {
        match self {
            Value::Int(v) => Some(Value::Int(v.wrapping_add(delta))),
            Value::Null => Some(Value::Int(delta)),
            _ => None,
        }
    }

    /// Approximate size in bytes of the value payload, used by the network
    /// simulator to account message sizes.
    pub fn payload_size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Text(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v:?}"),
            Value::Bytes(v) => write!(f, "<{} bytes>", v.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Text("hi".into()).as_text(), Some("hi"));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn add_int_handles_null_and_non_numeric() {
        assert_eq!(Value::Int(10).add_int(5), Some(Value::Int(15)));
        assert_eq!(Value::Null.add_int(5), Some(Value::Int(5)));
        assert_eq!(Value::Text("x".into()).add_int(5), None);
    }

    #[test]
    fn add_int_wraps_rather_than_panicking() {
        assert_eq!(Value::Int(i64::MAX).add_int(1), Some(Value::Int(i64::MIN)));
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Value::Null.payload_size(), 0);
        assert_eq!(Value::Int(1).payload_size(), 8);
        assert_eq!(Value::Float(1.0).payload_size(), 8);
        assert_eq!(Value::Text("abcd".into()).payload_size(), 4);
        assert_eq!(Value::Bytes(vec![0; 16]).payload_size(), 16);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(0.5f64), Value::Float(0.5));
        assert_eq!(Value::from("a"), Value::Text("a".into()));
        assert_eq!(Value::from(vec![1u8, 2]), Value::Bytes(vec![1, 2]));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Text("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Value::Bytes(vec![1, 2, 3]).to_string(), "<3 bytes>");
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }
}
