//! Strongly-typed identifiers used throughout the Rainbow system.
//!
//! The paper's name server stores "metadata of all Rainbow sites, such as the
//! id and end point specifications". We model those ids (and the ids of every
//! other entity that flows between sites) as dedicated newtypes so that the
//! compiler rejects accidental mix-ups such as passing a transaction id where
//! a site id is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical (simulated) host in the Rainbow host domain.
///
/// In the paper a host is a machine running the "ServletRunner"; several
/// Rainbow sites and/or the name server may live on one host (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Identifier of a Rainbow site (a node of the distributed database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// Identifier of a logical database item (the unit of fragmentation,
/// replication and distribution in the name-server schema).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub String);

/// Identifier of one physical copy of an item: the item plus the site that
/// stores the copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CopyId {
    /// The logical item this copy replicates.
    pub item: ItemId,
    /// The site holding the copy.
    pub site: SiteId,
}

/// Globally unique transaction identifier.
///
/// A transaction id is minted by its *home site* (the site it arrives at) and
/// combines that site id with a locally increasing sequence number, mirroring
/// how Rainbow sites each "concurrently process multiple transactions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId {
    /// Site at which the transaction was submitted.
    pub home: SiteId,
    /// Per-home-site sequence number.
    pub seq: u64,
}

/// Identifier of a message exchanged through the network simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// A logical timestamp: `(counter, site)` pairs ordered lexicographically.
///
/// Timestamps are site-unique (ties on the counter are broken by the site id)
/// which is exactly what basic and multi-version timestamp ordering require.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp {
    /// Monotonic counter component (Lamport time at the issuing site).
    pub counter: u64,
    /// Issuing site, used as a tie breaker so no two sites issue equal
    /// timestamps.
    pub site: u32,
}

/// Version number of a replicated copy, as used by quorum consensus: reads
/// return the value of the highest-versioned copy in the read quorum, writes
/// install `max(version in write quorum) + 1`.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl HostId {
    /// Numeric value of the id.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl SiteId {
    /// Numeric value of the id.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl ItemId {
    /// Creates an item id from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        ItemId(name.into())
    }

    /// Borrowed name of the item.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl CopyId {
    /// Creates a copy id.
    pub fn new(item: ItemId, site: SiteId) -> Self {
        CopyId { item, site }
    }
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(home: SiteId, seq: u64) -> Self {
        TxnId { home, seq }
    }
}

impl Timestamp {
    /// The zero timestamp, smaller than every timestamp a site can issue.
    pub const ZERO: Timestamp = Timestamp { counter: 0, site: 0 };

    /// Creates a timestamp.
    pub fn new(counter: u64, site: u32) -> Self {
        Timestamp { counter, site }
    }

    /// Returns the larger of `self` and `other`.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Version {
    /// The initial version of a freshly created copy.
    pub const INITIAL: Version = Version(0);

    /// The version that follows this one.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for CopyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.item, self.site)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.home.0, self.seq)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.counter, self.site)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<&str> for ItemId {
    fn from(s: &str) -> Self {
        ItemId::new(s)
    }
}

impl From<String> for ItemId {
    fn from(s: String) -> Self {
        ItemId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_is_lexicographic() {
        let a = Timestamp::new(1, 5);
        let b = Timestamp::new(2, 0);
        let c = Timestamp::new(2, 1);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
        assert_eq!(b.max(c), c);
        assert_eq!(c.max(b), c);
    }

    #[test]
    fn timestamps_from_distinct_sites_never_compare_equal_unless_identical() {
        let a = Timestamp::new(7, 1);
        let b = Timestamp::new(7, 2);
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn zero_timestamp_is_minimal() {
        assert!(Timestamp::ZERO <= Timestamp::new(0, 0));
        assert!(Timestamp::ZERO < Timestamp::new(0, 1));
        assert!(Timestamp::ZERO < Timestamp::new(1, 0));
    }

    #[test]
    fn version_next_increments() {
        assert_eq!(Version::INITIAL.next(), Version(1));
        assert_eq!(Version(41).next(), Version(42));
        assert!(Version(41) < Version(42));
    }

    #[test]
    fn txn_id_orders_by_home_then_sequence() {
        let a = TxnId::new(SiteId(0), 10);
        let b = TxnId::new(SiteId(0), 11);
        let c = TxnId::new(SiteId(1), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn item_id_round_trips_through_strings() {
        let id: ItemId = "accounts.balance[7]".into();
        assert_eq!(id.name(), "accounts.balance[7]");
        assert_eq!(format!("{id}"), "accounts.balance[7]");
    }

    #[test]
    fn copy_id_display_includes_site() {
        let c = CopyId::new(ItemId::new("x"), SiteId(3));
        assert_eq!(format!("{c}"), "x@site3");
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(format!("{}", HostId(2)), "host2");
        assert_eq!(format!("{}", SiteId(4)), "site4");
        assert_eq!(format!("{}", TxnId::new(SiteId(4), 9)), "T4.9");
        assert_eq!(format!("{}", MessageId(77)), "m77");
        assert_eq!(format!("{}", Timestamp::new(3, 1)), "3:1");
        assert_eq!(format!("{}", Version(5)), "v5");
    }

    #[test]
    fn serde_round_trip() {
        let t = TxnId::new(SiteId(2), 99);
        let json = serde_json::to_string(&t).unwrap();
        let back: TxnId = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);

        let ts = Timestamp::new(8, 3);
        let json = serde_json::to_string(&ts).unwrap();
        let back: Timestamp = serde_json::from_str(&json).unwrap();
        assert_eq!(ts, back);
    }
}
