//! Strongly-typed identifiers used throughout the Rainbow system.
//!
//! The paper's name server stores "metadata of all Rainbow sites, such as the
//! id and end point specifications". We model those ids (and the ids of every
//! other entity that flows between sites) as dedicated newtypes so that the
//! compiler rejects accidental mix-ups such as passing a transaction id where
//! a site id is expected.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Identifier of a physical (simulated) host in the Rainbow host domain.
///
/// In the paper a host is a machine running the "ServletRunner"; several
/// Rainbow sites and/or the name server may live on one host (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Identifier of a Rainbow site (a node of the distributed database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// One entry of the global item-name intern pool: the name plus its
/// precomputed FNV-1a hash (so hashing an [`ItemId`] never rescans the
/// name bytes on the hot path).
#[derive(Debug)]
struct InternedName {
    hash: u64,
    name: Box<str>,
}

/// Pool entry wrapper so the intern set can be probed by `&str` without
/// allocating.
#[derive(Debug)]
struct PoolEntry(Arc<InternedName>);

impl std::borrow::Borrow<str> for PoolEntry {
    fn borrow(&self) -> &str {
        &self.0.name
    }
}

impl PartialEq for PoolEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.name == other.0.name
    }
}

impl Eq for PoolEntry {}

impl Hash for PoolEntry {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `<str as Hash>` so `HashSet::get::<str>` finds entries.
        (*self.0.name).hash(state)
    }
}

/// Number of intern-pool shards (hashes spread construction across locks).
const INTERN_SHARDS: usize = 32;

type InternPool = [Mutex<std::collections::HashSet<PoolEntry>>; INTERN_SHARDS];

fn intern_pool() -> &'static InternPool {
    static POOL: OnceLock<InternPool> = OnceLock::new();
    POOL.get_or_init(|| std::array::from_fn(|_| Mutex::new(std::collections::HashSet::new())))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Identifier of a logical database item (the unit of fragmentation,
/// replication and distribution in the name-server schema).
///
/// Item ids are **interned**: every `ItemId` with the same name shares one
/// allocation in a process-wide pool, so cloning is an atomic increment
/// (instead of a heap `String` copy), equality is a pointer comparison, and
/// hashing reuses the name's precomputed hash. These properties carry the
/// whole data plane — lock tables, timestamp-ordering maps, store indexes
/// and WAL records all key on `ItemId` — which is why the id must be cheap.
///
/// Ordering remains lexicographic on the name, so sorted containers and
/// snapshots keep their human-readable order.
#[derive(Clone)]
pub struct ItemId(Arc<InternedName>);

/// Identifier of one physical copy of an item: the item plus the site that
/// stores the copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CopyId {
    /// The logical item this copy replicates.
    pub item: ItemId,
    /// The site holding the copy.
    pub site: SiteId,
}

/// Globally unique transaction identifier.
///
/// A transaction id is minted by its *home site* (the site it arrives at) and
/// combines that site id with a locally increasing sequence number, mirroring
/// how Rainbow sites each "concurrently process multiple transactions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId {
    /// Site at which the transaction was submitted.
    pub home: SiteId,
    /// Per-home-site sequence number.
    pub seq: u64,
}

/// Identifier of a message exchanged through the network simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// A logical timestamp: `(counter, site)` pairs ordered lexicographically.
///
/// Timestamps are site-unique (ties on the counter are broken by the site id)
/// which is exactly what basic and multi-version timestamp ordering require.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp {
    /// Monotonic counter component (Lamport time at the issuing site).
    pub counter: u64,
    /// Issuing site, used as a tie breaker so no two sites issue equal
    /// timestamps.
    pub site: u32,
}

/// Version number of a replicated copy, as used by quorum consensus: reads
/// return the value of the highest-versioned copy in the read quorum, writes
/// install `max(version in write quorum) + 1`.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl HostId {
    /// Numeric value of the id.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl SiteId {
    /// Numeric value of the id.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// When a pool shard exceeds this many entries, inserting sweeps out names
/// no live `ItemId` references any more (pool-only `Arc`s), bounding the
/// pool for long-lived processes that keep minting fresh names.
const INTERN_SWEEP_THRESHOLD: usize = 4096;

impl ItemId {
    /// Creates (or looks up) the interned item id for `name`.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let hash = fnv1a(name.as_bytes());
        let shard = &intern_pool()[(hash as usize) % INTERN_SHARDS];
        let mut pool = shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = pool.get(name) {
            return ItemId(Arc::clone(&entry.0));
        }
        if pool.len() >= INTERN_SWEEP_THRESHOLD {
            // Drop names whose only remaining reference is the pool's own.
            pool.retain(|entry| Arc::strong_count(&entry.0) > 1);
        }
        let interned = Arc::new(InternedName {
            hash,
            name: Box::from(name),
        });
        pool.insert(PoolEntry(Arc::clone(&interned)));
        ItemId(interned)
    }

    /// Borrowed name of the item.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Borrowed name of the item (serde-style alias).
    pub fn as_str(&self) -> &str {
        &self.0.name
    }

    /// The precomputed 64-bit hash of the name. Deterministic across runs
    /// and processes — the sharded lock table keys its shard choice on this.
    pub fn token(&self) -> u64 {
        self.0.hash
    }
}

// Every `ItemId` is minted through the intern pool, so two ids with equal
// names always share one allocation: equality is pointer equality and the
// hash is the precomputed name hash (consistent because equal names imply
// equal hashes).
impl PartialEq for ItemId {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for ItemId {}

impl Hash for ItemId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for ItemId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ItemId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.name.cmp(&other.0.name)
        }
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ItemId").field(&self.name()).finish()
    }
}

impl Serialize for ItemId {
    fn to_content(&self) -> Content {
        Content::Str(self.name().to_string())
    }
}

impl Deserialize for ItemId {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content.as_str() {
            Some(name) => Ok(ItemId::new(name)),
            None => Err(DeError::custom(format!(
                "expected item name string, found {}",
                content.kind()
            ))),
        }
    }
}

impl CopyId {
    /// Creates a copy id.
    pub fn new(item: ItemId, site: SiteId) -> Self {
        CopyId { item, site }
    }
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(home: SiteId, seq: u64) -> Self {
        TxnId { home, seq }
    }
}

impl Timestamp {
    /// The zero timestamp, smaller than every timestamp a site can issue.
    pub const ZERO: Timestamp = Timestamp {
        counter: 0,
        site: 0,
    };

    /// Creates a timestamp.
    pub fn new(counter: u64, site: u32) -> Self {
        Timestamp { counter, site }
    }

    /// Returns the larger of `self` and `other`.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Version {
    /// The initial version of a freshly created copy.
    pub const INITIAL: Version = Version(0);

    /// The version that follows this one.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for CopyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.item, self.site)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.home.0, self.seq)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.counter, self.site)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<&str> for ItemId {
    fn from(s: &str) -> Self {
        ItemId::new(s)
    }
}

impl From<String> for ItemId {
    fn from(s: String) -> Self {
        ItemId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_is_lexicographic() {
        let a = Timestamp::new(1, 5);
        let b = Timestamp::new(2, 0);
        let c = Timestamp::new(2, 1);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
        assert_eq!(b.max(c), c);
        assert_eq!(c.max(b), c);
    }

    #[test]
    fn timestamps_from_distinct_sites_never_compare_equal_unless_identical() {
        let a = Timestamp::new(7, 1);
        let b = Timestamp::new(7, 2);
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn zero_timestamp_is_minimal() {
        assert!(Timestamp::ZERO <= Timestamp::new(0, 0));
        assert!(Timestamp::ZERO < Timestamp::new(0, 1));
        assert!(Timestamp::ZERO < Timestamp::new(1, 0));
    }

    #[test]
    fn version_next_increments() {
        assert_eq!(Version::INITIAL.next(), Version(1));
        assert_eq!(Version(41).next(), Version(42));
        assert!(Version(41) < Version(42));
    }

    #[test]
    fn txn_id_orders_by_home_then_sequence() {
        let a = TxnId::new(SiteId(0), 10);
        let b = TxnId::new(SiteId(0), 11);
        let c = TxnId::new(SiteId(1), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn item_id_round_trips_through_strings() {
        let id: ItemId = "accounts.balance[7]".into();
        assert_eq!(id.name(), "accounts.balance[7]");
        assert_eq!(format!("{id}"), "accounts.balance[7]");
    }

    #[test]
    fn item_ids_with_equal_names_share_one_interned_allocation() {
        let a = ItemId::new("interned.x");
        let b = ItemId::new(String::from("interned.x"));
        let c = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(std::ptr::eq(a.name(), b.name()), "same backing allocation");
        assert!(std::ptr::eq(a.name(), c.name()));
        assert_ne!(a, ItemId::new("interned.y"));
    }

    #[test]
    fn item_id_ordering_is_lexicographic_on_names() {
        let mut ids = [
            ItemId::new("zeta"),
            ItemId::new("alpha"),
            ItemId::new("mid"),
        ];
        ids.sort();
        let names: Vec<&str> = ids.iter().map(ItemId::name).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn item_id_token_is_stable_and_name_derived() {
        let a = ItemId::new("tok");
        let b = ItemId::new("tok");
        assert_eq!(a.token(), b.token());
        assert_ne!(a.token(), ItemId::new("tok2").token());
    }

    #[test]
    fn item_id_serializes_as_its_plain_name() {
        let id = ItemId::new("serde.item");
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"serde.item\"");
        let back: ItemId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn item_ids_key_hash_and_btree_maps_interchangeably() {
        let mut hashed = std::collections::HashMap::new();
        let mut sorted = std::collections::BTreeMap::new();
        for i in 0..32 {
            let id = ItemId::new(format!("map.{i}"));
            hashed.insert(id.clone(), i);
            sorted.insert(id, i);
        }
        for i in 0..32 {
            let probe = ItemId::new(format!("map.{i}"));
            assert_eq!(hashed.get(&probe), Some(&i));
            assert_eq!(sorted.get(&probe), Some(&i));
        }
    }

    #[test]
    fn copy_id_display_includes_site() {
        let c = CopyId::new(ItemId::new("x"), SiteId(3));
        assert_eq!(format!("{c}"), "x@site3");
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(format!("{}", HostId(2)), "host2");
        assert_eq!(format!("{}", SiteId(4)), "site4");
        assert_eq!(format!("{}", TxnId::new(SiteId(4), 9)), "T4.9");
        assert_eq!(format!("{}", MessageId(77)), "m77");
        assert_eq!(format!("{}", Timestamp::new(3, 1)), "3:1");
        assert_eq!(format!("{}", Version(5)), "v5");
    }

    #[test]
    fn serde_round_trip() {
        let t = TxnId::new(SiteId(2), 99);
        let json = serde_json::to_string(&t).unwrap();
        let back: TxnId = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);

        let ts = Timestamp::new(8, 3);
        let json = serde_json::to_string(&ts).unwrap();
        let back: Timestamp = serde_json::from_str(&json).unwrap();
        assert_eq!(ts, back);
    }
}
