//! Quorum plans and response collection.

use rainbow_common::config::ItemPlacement;
use rainbow_common::txn::AbortCause;
use rainbow_common::{ItemId, SiteId, Value, Version};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Whether a quorum is being built for a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuorumKind {
    /// Read quorum: copies return their current value and version.
    Read,
    /// Write quorum: copies are pre-written and return their current version
    /// number.
    Write,
}

/// The plan for building one quorum: which sites to contact and how many
/// votes must answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuorumPlan {
    /// The item the quorum is for.
    pub item: ItemId,
    /// Read or write.
    pub kind: QuorumKind,
    /// Sites to contact, in preference order.
    pub targets: Vec<SiteId>,
    /// Vote weight of each target.
    pub votes: BTreeMap<SiteId, u32>,
    /// Votes required for the quorum to be assembled.
    pub required_votes: u32,
}

impl QuorumPlan {
    /// Total votes obtainable from the planned targets.
    pub fn obtainable_votes(&self) -> u32 {
        self.targets
            .iter()
            .map(|s| self.votes.get(s).copied().unwrap_or(0))
            .sum()
    }

    /// Starts collecting responses for this plan.
    pub fn collector(self) -> QuorumCollector {
        QuorumCollector::new(self)
    }
}

/// A copy-holder's answer to a quorum request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuorumResponse {
    /// The responding site.
    pub site: SiteId,
    /// The copy's current version number.
    pub version: Version,
    /// The copy's current value (read quorums only; `None` for pre-writes).
    pub value: Option<Value>,
}

/// The state of quorum assembly after a response or failure is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumOutcome {
    /// Enough votes have been collected.
    Assembled,
    /// More responses are needed and can still arrive.
    Pending,
    /// Even if every outstanding site answered, the quorum could not be
    /// reached (too many failures/denials).
    Impossible,
}

/// Tracks responses and failures while a quorum is being assembled.
#[derive(Debug, Clone)]
pub struct QuorumCollector {
    plan: QuorumPlan,
    responses: BTreeMap<SiteId, QuorumResponse>,
    failed: BTreeSet<SiteId>,
}

impl QuorumCollector {
    /// Creates a collector for a plan.
    pub fn new(plan: QuorumPlan) -> Self {
        QuorumCollector {
            plan,
            responses: BTreeMap::new(),
            failed: BTreeSet::new(),
        }
    }

    /// The plan being collected.
    pub fn plan(&self) -> &QuorumPlan {
        &self.plan
    }

    /// Records a positive response from a site. Responses from sites that
    /// are not targets (or duplicate responses) are ignored.
    pub fn record_response(&mut self, response: QuorumResponse) -> QuorumOutcome {
        if self.plan.votes.contains_key(&response.site) && !self.failed.contains(&response.site) {
            self.responses.insert(response.site, response);
        }
        self.outcome()
    }

    /// Records that a site failed, refused, or timed out.
    pub fn record_failure(&mut self, site: SiteId) -> QuorumOutcome {
        if !self.responses.contains_key(&site) {
            self.failed.insert(site);
        }
        self.outcome()
    }

    /// Whether a positive response from `site` has already been recorded.
    pub fn has_response(&self, site: SiteId) -> bool {
        self.responses.contains_key(&site)
    }

    /// Whether `site` is one of the sites this plan actually contacted.
    /// (The votes map can cover *all* copy holders — e.g. a ROWA read plan
    /// targets one site — so response routing must check targets, not
    /// votes.)
    pub fn is_target(&self, site: SiteId) -> bool {
        self.plan.targets.contains(&site)
    }

    /// Whether `site` has already been recorded as failed.
    pub fn has_failure(&self, site: SiteId) -> bool {
        self.failed.contains(&site)
    }

    /// Votes collected so far.
    pub fn collected_votes(&self) -> u32 {
        self.responses
            .keys()
            .map(|s| self.plan.votes.get(s).copied().unwrap_or(0))
            .sum()
    }

    /// Votes that could still arrive from targets that have neither
    /// responded nor failed.
    pub fn outstanding_votes(&self) -> u32 {
        self.plan
            .targets
            .iter()
            .filter(|s| !self.responses.contains_key(s) && !self.failed.contains(s))
            .map(|s| self.plan.votes.get(s).copied().unwrap_or(0))
            .sum()
    }

    /// Current assembly state.
    pub fn outcome(&self) -> QuorumOutcome {
        let collected = self.collected_votes();
        if collected >= self.plan.required_votes {
            QuorumOutcome::Assembled
        } else if collected + self.outstanding_votes() < self.plan.required_votes {
            QuorumOutcome::Impossible
        } else {
            QuorumOutcome::Pending
        }
    }

    /// True when assembled.
    pub fn is_assembled(&self) -> bool {
        self.outcome() == QuorumOutcome::Assembled
    }

    /// Sites that answered positively so far.
    pub fn responders(&self) -> Vec<SiteId> {
        self.responses.keys().copied().collect()
    }

    /// The read result: value and version of the highest-versioned copy in
    /// the quorum. `None` when no response carried a value.
    pub fn latest_value(&self) -> Option<(Value, Version)> {
        self.responses
            .values()
            .filter(|r| r.value.is_some())
            .max_by_key(|r| r.version)
            .map(|r| (r.value.clone().expect("filtered on is_some"), r.version))
    }

    /// The highest version number observed in the quorum (0 when empty).
    pub fn max_version(&self) -> Version {
        self.responses
            .values()
            .map(|r| r.version)
            .max()
            .unwrap_or(Version::INITIAL)
    }

    /// The version a write assembled on this quorum must install:
    /// `max observed + 1`.
    pub fn next_version(&self) -> Version {
        self.max_version().next()
    }

    /// The abort cause to report when the quorum is impossible or timed out.
    pub fn abort_cause(&self) -> AbortCause {
        AbortCause::RcpQuorumUnavailable {
            item: self.plan.item.clone(),
            collected: self.collected_votes(),
            required: self.plan.required_votes,
        }
    }
}

/// Builds the vote map of a placement (helper shared by the planners).
pub(crate) fn votes_of(placement: &ItemPlacement) -> BTreeMap<SiteId, u32> {
    placement.copies.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(kind: QuorumKind, sites: &[(u32, u32)], required: u32) -> QuorumPlan {
        QuorumPlan {
            item: ItemId::new("x"),
            kind,
            targets: sites.iter().map(|(s, _)| SiteId(*s)).collect(),
            votes: sites.iter().map(|(s, v)| (SiteId(*s), *v)).collect(),
            required_votes: required,
        }
    }

    fn response(site: u32, version: u64, value: Option<i64>) -> QuorumResponse {
        QuorumResponse {
            site: SiteId(site),
            version: Version(version),
            value: value.map(Value::Int),
        }
    }

    #[test]
    fn quorum_assembles_when_votes_reach_threshold() {
        let mut collector = plan(QuorumKind::Read, &[(0, 1), (1, 1), (2, 1)], 2).collector();
        assert_eq!(collector.outcome(), QuorumOutcome::Pending);
        assert_eq!(
            collector.record_response(response(0, 1, Some(10))),
            QuorumOutcome::Pending
        );
        assert_eq!(
            collector.record_response(response(1, 2, Some(20))),
            QuorumOutcome::Assembled
        );
        assert!(collector.is_assembled());
        assert_eq!(collector.collected_votes(), 2);
        assert_eq!(collector.responders(), vec![SiteId(0), SiteId(1)]);
    }

    #[test]
    fn quorum_becomes_impossible_when_too_many_sites_fail() {
        let mut collector = plan(QuorumKind::Write, &[(0, 1), (1, 1), (2, 1)], 2).collector();
        assert_eq!(collector.record_failure(SiteId(0)), QuorumOutcome::Pending);
        assert_eq!(
            collector.record_failure(SiteId(1)),
            QuorumOutcome::Impossible
        );
        assert!(!collector.is_assembled());
        let cause = collector.abort_cause();
        assert!(matches!(
            cause,
            AbortCause::RcpQuorumUnavailable {
                collected: 0,
                required: 2,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_and_unknown_responses_are_ignored() {
        let mut collector = plan(QuorumKind::Read, &[(0, 1), (1, 1)], 2).collector();
        collector.record_response(response(0, 1, Some(1)));
        collector.record_response(response(0, 1, Some(1))); // duplicate
        collector.record_response(response(9, 5, Some(9))); // not a target
        assert_eq!(collector.collected_votes(), 1);
        assert_eq!(collector.outcome(), QuorumOutcome::Pending);
    }

    #[test]
    fn failure_after_response_does_not_unassemble() {
        let mut collector = plan(QuorumKind::Read, &[(0, 1), (1, 1)], 1).collector();
        collector.record_response(response(0, 1, Some(1)));
        assert!(collector.is_assembled());
        collector.record_failure(SiteId(0));
        assert!(
            collector.is_assembled(),
            "a received response keeps counting"
        );
    }

    #[test]
    fn latest_value_picks_highest_version() {
        let mut collector = plan(QuorumKind::Read, &[(0, 1), (1, 1), (2, 1)], 3).collector();
        collector.record_response(response(0, 3, Some(30)));
        collector.record_response(response(1, 5, Some(50)));
        collector.record_response(response(2, 4, Some(40)));
        assert_eq!(collector.latest_value(), Some((Value::Int(50), Version(5))));
        assert_eq!(collector.max_version(), Version(5));
        assert_eq!(collector.next_version(), Version(6));
    }

    #[test]
    fn prewrite_responses_have_no_value_but_versions_count() {
        let mut collector = plan(QuorumKind::Write, &[(0, 1), (1, 1)], 2).collector();
        collector.record_response(response(0, 7, None));
        collector.record_response(response(1, 9, None));
        assert!(collector.is_assembled());
        assert_eq!(collector.latest_value(), None);
        assert_eq!(collector.next_version(), Version(10));
    }

    #[test]
    fn weighted_votes_are_summed() {
        let mut collector = plan(QuorumKind::Write, &[(0, 3), (1, 1), (2, 1)], 3).collector();
        assert_eq!(
            collector.record_response(response(0, 1, None)),
            QuorumOutcome::Assembled
        );
        assert_eq!(collector.collected_votes(), 3);

        let mut collector = plan(QuorumKind::Write, &[(0, 3), (1, 1), (2, 1)], 3).collector();
        collector.record_response(response(1, 1, None));
        collector.record_response(response(2, 1, None));
        assert_eq!(collector.outcome(), QuorumOutcome::Pending);
        collector.record_failure(SiteId(0));
        assert_eq!(collector.outcome(), QuorumOutcome::Impossible);
    }

    #[test]
    fn empty_collector_with_zero_required_is_assembled() {
        let collector = plan(QuorumKind::Read, &[], 0).collector();
        assert!(collector.is_assembled());
        assert_eq!(collector.max_version(), Version(0));
        assert_eq!(collector.next_version(), Version(1));
    }

    #[test]
    fn obtainable_votes_matches_targets() {
        let p = plan(QuorumKind::Read, &[(0, 2), (1, 1)], 2);
        assert_eq!(p.obtainable_votes(), 3);
    }
}
