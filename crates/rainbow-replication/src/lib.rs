//! # rainbow-replication
//!
//! Replication control protocols (RCP) of the Rainbow reproduction:
//! Read-One-Write-All (ROWA), Quorum Consensus (QC, the Rainbow default),
//! Available Copies (AC), Tree Quorum (TQ) and Primary Copy (PC).
//!
//! Section 2.1 of the paper describes the QC flow: "QC starts by building a
//! quorum (read or write) for the first operation of the transaction. To do
//! this, QC needs first to find a set of sites from whom the quorum can be
//! built. QC then sends each site in the set a request for that site's local
//! copies. At that site, copies are read (returning their current value) or
//! pre-written (returning their current version number) through CCP."
//!
//! This crate contains the *pure logic* half of that flow, independent of
//! messaging, so it can be unit- and property-tested exhaustively:
//!
//! * [`plan`] — [`plan::QuorumPlan`] (which sites to contact, how many votes
//!   are needed) and [`plan::QuorumCollector`] (tracks responses/failures,
//!   decides when the quorum is assembled or has become impossible, picks
//!   the highest-version read result and the next write version);
//! * [`protocols`] — the [`protocols::ReplicationControl`] trait with the
//!   five planners and a factory keyed by
//!   [`rainbow_common::protocol::RcpKind`]. The planners adapt their target
//!   sets to the fault controller's live site-status view (passed in as
//!   `suspected_down`), which is what makes the fault-aware protocols (AC,
//!   TQ's degraded reads, PC's lease failover) possible as pure logic.
//!
//! The transaction manager in `rainbow-core` drives the plans over the
//! simulated network: one copy-access request per target site, one response
//! per live copy holder.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod plan;
pub mod protocols;

pub use plan::{QuorumCollector, QuorumKind, QuorumOutcome, QuorumPlan, QuorumResponse};
pub use protocols::{
    make_rcp, AvailableCopies, PrimaryCopy, QuorumConsensus, ReadOneWriteAll, ReplicationControl,
    TreeQuorum,
};
