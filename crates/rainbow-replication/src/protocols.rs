//! The replication-control planners: ROWA and Quorum Consensus.

use crate::plan::{votes_of, QuorumKind, QuorumPlan};
use rainbow_common::config::ItemPlacement;
use rainbow_common::protocol::RcpKind;
use rainbow_common::{ItemId, SiteId};
use std::sync::Arc;

/// A replication control protocol plans which copies must be touched for a
/// read or a write of an item.
///
/// The planner is stateless; the transaction manager executes the plan
/// (sending copy-access requests, collecting responses in a
/// [`crate::plan::QuorumCollector`]).
pub trait ReplicationControl: Send + Sync {
    /// Plans a read of `item`. `prefer` is the site the transaction would
    /// like to read from when the protocol allows a choice (its home site),
    /// and `suspected_down` lists sites the caller believes are unavailable
    /// so the planner can route around them when it has freedom to.
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        prefer: Option<SiteId>,
        suspected_down: &[SiteId],
    ) -> QuorumPlan;

    /// Plans a write (pre-write) of `item`.
    fn plan_write(&self, item: &ItemId, placement: &ItemPlacement) -> QuorumPlan;

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Read-One-Write-All.
///
/// Reads touch a single copy (preferably a local one); writes must touch
/// every copy, so a single unavailable copy holder blocks all writes of the
/// item — the availability weakness the quorum experiments demonstrate.
#[derive(Debug, Default)]
pub struct ReadOneWriteAll;

impl ReadOneWriteAll {
    /// Creates the planner.
    pub fn new() -> Self {
        ReadOneWriteAll
    }
}

impl ReplicationControl for ReadOneWriteAll {
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        prefer: Option<SiteId>,
        suspected_down: &[SiteId],
    ) -> QuorumPlan {
        let holders = placement.holders();
        // Preference order: the preferred site if it holds a copy and is not
        // suspected down, then any other live holder, then (as a last resort)
        // suspected-down holders so the request at least gets a chance.
        let chosen = prefer
            .filter(|p| placement.holds_copy(*p) && !suspected_down.contains(p))
            .or_else(|| {
                holders
                    .iter()
                    .find(|s| !suspected_down.contains(s))
                    .copied()
            })
            .or_else(|| holders.first().copied());
        let targets: Vec<SiteId> = chosen.into_iter().collect();
        let votes = votes_of(placement);
        let required_votes = targets
            .iter()
            .map(|s| votes.get(s).copied().unwrap_or(1))
            .sum();
        QuorumPlan {
            item: item.clone(),
            kind: QuorumKind::Read,
            targets,
            votes,
            required_votes,
        }
    }

    fn plan_write(&self, item: &ItemId, placement: &ItemPlacement) -> QuorumPlan {
        let votes = votes_of(placement);
        let required_votes = votes.values().sum();
        QuorumPlan {
            item: item.clone(),
            kind: QuorumKind::Write,
            targets: placement.holders(),
            votes,
            required_votes,
        }
    }

    fn name(&self) -> &'static str {
        "ROWA"
    }
}

/// Quorum Consensus (weighted voting), the Rainbow default RCP.
///
/// Both reads and writes contact every copy holder and wait until the
/// configured vote threshold answers; the quorum thresholds in the
/// [`ItemPlacement`] guarantee that read quorums intersect write quorums and
/// write quorums intersect each other.
#[derive(Debug, Default)]
pub struct QuorumConsensus;

impl QuorumConsensus {
    /// Creates the planner.
    pub fn new() -> Self {
        QuorumConsensus
    }
}

impl ReplicationControl for QuorumConsensus {
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        _prefer: Option<SiteId>,
        _suspected_down: &[SiteId],
    ) -> QuorumPlan {
        QuorumPlan {
            item: item.clone(),
            kind: QuorumKind::Read,
            targets: placement.holders(),
            votes: votes_of(placement),
            required_votes: placement.read_quorum,
        }
    }

    fn plan_write(&self, item: &ItemId, placement: &ItemPlacement) -> QuorumPlan {
        QuorumPlan {
            item: item.clone(),
            kind: QuorumKind::Write,
            targets: placement.holders(),
            votes: votes_of(placement),
            required_votes: placement.write_quorum,
        }
    }

    fn name(&self) -> &'static str {
        "QC"
    }
}

/// Builds an RCP planner from the configured kind.
pub fn make_rcp(kind: RcpKind) -> Arc<dyn ReplicationControl> {
    match kind {
        RcpKind::Rowa => Arc::new(ReadOneWriteAll::new()),
        RcpKind::QuorumConsensus => Arc::new(QuorumConsensus::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{QuorumOutcome, QuorumResponse};
    use rainbow_common::Version;

    fn sites(n: u32) -> Vec<SiteId> {
        (0..n).map(SiteId).collect()
    }

    fn item() -> ItemId {
        ItemId::new("x")
    }

    #[test]
    fn rowa_reads_touch_one_copy_preferring_home() {
        let rcp = ReadOneWriteAll::new();
        let placement = ItemPlacement::majority(sites(3));
        let plan = rcp.plan_read(&item(), &placement, Some(SiteId(2)), &[]);
        assert_eq!(plan.targets, vec![SiteId(2)]);
        assert_eq!(plan.required_votes, 1);
        assert_eq!(plan.kind, QuorumKind::Read);

        // Preferred site not a holder: falls back to some holder.
        let plan = rcp.plan_read(&item(), &placement, Some(SiteId(9)), &[]);
        assert_eq!(plan.targets.len(), 1);
        assert!(placement.holds_copy(plan.targets[0]));
    }

    #[test]
    fn rowa_read_routes_around_suspected_down_sites() {
        let rcp = ReadOneWriteAll::new();
        let placement = ItemPlacement::majority(sites(3));
        let plan = rcp.plan_read(&item(), &placement, Some(SiteId(0)), &[SiteId(0), SiteId(1)]);
        assert_eq!(plan.targets, vec![SiteId(2)]);
        // All holders down: still pick someone rather than nobody.
        let plan = rcp.plan_read(
            &item(),
            &placement,
            None,
            &[SiteId(0), SiteId(1), SiteId(2)],
        );
        assert_eq!(plan.targets.len(), 1);
    }

    #[test]
    fn rowa_writes_require_every_copy() {
        let rcp = ReadOneWriteAll::new();
        let placement = ItemPlacement::majority(sites(4));
        let plan = rcp.plan_write(&item(), &placement);
        assert_eq!(plan.targets.len(), 4);
        assert_eq!(plan.required_votes, 4);
        assert_eq!(plan.kind, QuorumKind::Write);

        // One failure makes a ROWA write impossible.
        let mut collector = plan.collector();
        collector.record_failure(SiteId(1));
        assert_eq!(collector.outcome(), QuorumOutcome::Impossible);
    }

    #[test]
    fn qc_uses_placement_thresholds() {
        let rcp = QuorumConsensus::new();
        let placement = ItemPlacement::majority(sites(5));
        let read = rcp.plan_read(&item(), &placement, Some(SiteId(0)), &[]);
        let write = rcp.plan_write(&item(), &placement);
        assert_eq!(read.targets.len(), 5);
        assert_eq!(read.required_votes, 3);
        assert_eq!(write.required_votes, 3);
    }

    #[test]
    fn qc_write_survives_minority_failures() {
        let rcp = QuorumConsensus::new();
        let placement = ItemPlacement::majority(sites(5));
        let mut collector = rcp.plan_write(&item(), &placement).collector();
        collector.record_failure(SiteId(0));
        collector.record_failure(SiteId(1));
        for s in 2..5 {
            collector.record_response(QuorumResponse {
                site: SiteId(s),
                version: Version(1),
                value: None,
            });
        }
        assert!(collector.is_assembled());
    }

    #[test]
    fn qc_read_and_write_quorums_intersect() {
        // For every replication degree, any assembled read quorum shares at
        // least one site with any assembled write quorum.
        for n in 1..=7u32 {
            let placement = ItemPlacement::majority(sites(n));
            let read_q = placement.read_quorum as usize;
            let write_q = placement.write_quorum as usize;
            assert!(read_q + write_q > n as usize, "degree {n}");
        }
    }

    #[test]
    fn rowa_read_quorum_is_cheaper_than_qc() {
        let placement = ItemPlacement::majority(sites(5));
        let rowa_read = ReadOneWriteAll::new().plan_read(&item(), &placement, None, &[]);
        let qc_read = QuorumConsensus::new().plan_read(&item(), &placement, None, &[]);
        assert!(rowa_read.targets.len() < qc_read.targets.len());
    }

    #[test]
    fn factory_produces_the_requested_protocol() {
        assert_eq!(make_rcp(RcpKind::Rowa).name(), "ROWA");
        assert_eq!(make_rcp(RcpKind::QuorumConsensus).name(), "QC");
    }

    #[test]
    fn weighted_qc_respects_vote_weights() {
        let mut copies = std::collections::BTreeMap::new();
        copies.insert(SiteId(0), 3u32);
        copies.insert(SiteId(1), 1u32);
        copies.insert(SiteId(2), 1u32);
        let placement = ItemPlacement::weighted(copies, 3, 3);
        let rcp = QuorumConsensus::new();
        let plan = rcp.plan_write(&item(), &placement);
        let mut collector = plan.collector();
        // The heavyweight site alone is a write quorum.
        collector.record_response(QuorumResponse {
            site: SiteId(0),
            version: Version(4),
            value: None,
        });
        assert!(collector.is_assembled());
        assert_eq!(collector.next_version(), Version(5));
    }

    #[test]
    fn single_replica_degenerates_to_primary_copy() {
        let placement = ItemPlacement::majority(vec![SiteId(3)]);
        for rcp in [make_rcp(RcpKind::Rowa), make_rcp(RcpKind::QuorumConsensus)] {
            let read = rcp.plan_read(&item(), &placement, None, &[]);
            let write = rcp.plan_write(&item(), &placement);
            assert_eq!(read.targets, vec![SiteId(3)]);
            assert_eq!(write.targets, vec![SiteId(3)]);
            assert_eq!(read.required_votes, 1);
            assert_eq!(write.required_votes, 1);
        }
    }
}
