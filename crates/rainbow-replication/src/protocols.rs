//! The replication-control planners: ROWA, Quorum Consensus, Available
//! Copies, Tree Quorum and Primary Copy.

use crate::plan::{votes_of, QuorumKind, QuorumPlan};
use parking_lot::Mutex;
use rainbow_common::config::ItemPlacement;
use rainbow_common::protocol::RcpKind;
use rainbow_common::{ItemId, SiteId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A replication control protocol plans which copies must be touched for a
/// read or a write of an item.
///
/// The planner decides *which* sites to contact using the fault
/// controller's live view of the cluster (`suspected_down`); the
/// transaction manager executes the plan (sending copy-access requests,
/// collecting responses in a [`crate::plan::QuorumCollector`]).
pub trait ReplicationControl: Send + Sync {
    /// Plans a read of `item`. `prefer` is the site the transaction would
    /// like to read from when the protocol allows a choice (its home site),
    /// and `suspected_down` lists sites the caller believes are unavailable
    /// so the planner can route around them when it has freedom to.
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        prefer: Option<SiteId>,
        suspected_down: &[SiteId],
    ) -> QuorumPlan;

    /// Plans a write (pre-write) of `item`. `suspected_down` carries the
    /// same live site-status view as reads: protocols that adapt their
    /// write set to failures (Available Copies, Tree Quorum, Primary Copy)
    /// consult it, the static ones (ROWA, QC) ignore it.
    fn plan_write(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        suspected_down: &[SiteId],
    ) -> QuorumPlan;

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Shared read-one planner: pick a single copy, preferring `prefer` when it
/// holds a live copy, then any live holder, then (as a last resort) a
/// suspected-down holder so the request at least gets a chance. Used by the
/// ROWA and Available Copies read paths.
fn read_one_plan(
    item: &ItemId,
    placement: &ItemPlacement,
    prefer: Option<SiteId>,
    suspected_down: &[SiteId],
) -> QuorumPlan {
    let holders = placement.holders();
    let chosen = prefer
        .filter(|p| placement.holds_copy(*p) && !suspected_down.contains(p))
        .or_else(|| {
            holders
                .iter()
                .find(|s| !suspected_down.contains(s))
                .copied()
        })
        .or_else(|| holders.first().copied());
    let targets: Vec<SiteId> = chosen.into_iter().collect();
    let votes = votes_of(placement);
    let required_votes = targets
        .iter()
        .map(|s| votes.get(s).copied().unwrap_or(1))
        .sum();
    QuorumPlan {
        item: item.clone(),
        kind: QuorumKind::Read,
        targets,
        votes,
        required_votes,
    }
}

/// Builds an all-of-targets plan: one vote per target, every target's
/// response required. Used by the fault-adaptive write paths and the tree
/// quorum planner, where the target set itself encodes the quorum.
fn all_of_plan(item: &ItemId, kind: QuorumKind, targets: Vec<SiteId>) -> QuorumPlan {
    let votes: BTreeMap<SiteId, u32> = targets.iter().map(|s| (*s, 1)).collect();
    // An empty target set must come out *impossible*, not trivially
    // assembled: requiring one unobtainable vote makes the collector abort
    // the transaction immediately instead of committing a write nowhere.
    let required_votes = (votes.len() as u32).max(1);
    QuorumPlan {
        item: item.clone(),
        kind,
        targets,
        votes,
        required_votes,
    }
}

/// Read-One-Write-All.
///
/// Reads touch a single copy (preferably a local one); writes must touch
/// every copy, so a single unavailable copy holder blocks all writes of the
/// item — the availability weakness the quorum experiments demonstrate.
#[derive(Debug, Default)]
pub struct ReadOneWriteAll;

impl ReadOneWriteAll {
    /// Creates the planner.
    pub fn new() -> Self {
        ReadOneWriteAll
    }
}

impl ReplicationControl for ReadOneWriteAll {
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        prefer: Option<SiteId>,
        suspected_down: &[SiteId],
    ) -> QuorumPlan {
        read_one_plan(item, placement, prefer, suspected_down)
    }

    fn plan_write(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        _suspected_down: &[SiteId],
    ) -> QuorumPlan {
        // Every copy, live or not: a single unavailable holder makes the
        // write impossible, which is exactly the ROWA trade-off.
        let votes = votes_of(placement);
        let required_votes = votes.values().sum();
        QuorumPlan {
            item: item.clone(),
            kind: QuorumKind::Write,
            targets: placement.holders(),
            votes,
            required_votes,
        }
    }

    fn name(&self) -> &'static str {
        "ROWA"
    }
}

/// Quorum Consensus (weighted voting), the Rainbow default RCP.
///
/// Both reads and writes contact every copy holder and wait until the
/// configured vote threshold answers; the quorum thresholds in the
/// [`ItemPlacement`] guarantee that read quorums intersect write quorums and
/// write quorums intersect each other.
#[derive(Debug, Default)]
pub struct QuorumConsensus;

impl QuorumConsensus {
    /// Creates the planner.
    pub fn new() -> Self {
        QuorumConsensus
    }
}

impl ReplicationControl for QuorumConsensus {
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        _prefer: Option<SiteId>,
        _suspected_down: &[SiteId],
    ) -> QuorumPlan {
        QuorumPlan {
            item: item.clone(),
            kind: QuorumKind::Read,
            targets: placement.holders(),
            votes: votes_of(placement),
            required_votes: placement.read_quorum,
        }
    }

    fn plan_write(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        _suspected_down: &[SiteId],
    ) -> QuorumPlan {
        QuorumPlan {
            item: item.clone(),
            kind: QuorumKind::Write,
            targets: placement.holders(),
            votes: votes_of(placement),
            required_votes: placement.write_quorum,
        }
    }

    fn name(&self) -> &'static str {
        "QC"
    }
}

/// Available Copies: read-any / write-all-*available*.
///
/// Reads touch a single copy like ROWA; writes touch every copy the fault
/// controller currently believes is up and require all of them to answer.
/// This keeps writes available under site crashes (ROWA's weakness) while
/// keeping reads one-copy cheap (QC's weakness). The validation half of the
/// classic protocol is inherited from the machinery around the planner: a
/// contacted copy that turns out to be dead fails the quorum (the write
/// aborts rather than silently shrinking), and under a network partition
/// the partitioned-but-not-crashed holders stay in the target set, so
/// cross-partition writes time out instead of committing on both sides.
///
/// Known limitation, as in the literature: a holder that crashes and later
/// recovers has missed the writes committed while it was down and must not
/// serve reads until a copier protocol has caught it up. The simulator's
/// recovery path replays only the local log, so experiments that recover a
/// site under AC should expect stale reads from it — that window is exactly
/// the lesson the protocol teaches.
#[derive(Debug, Default)]
pub struct AvailableCopies;

impl AvailableCopies {
    /// Creates the planner.
    pub fn new() -> Self {
        AvailableCopies
    }
}

impl ReplicationControl for AvailableCopies {
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        prefer: Option<SiteId>,
        suspected_down: &[SiteId],
    ) -> QuorumPlan {
        read_one_plan(item, placement, prefer, suspected_down)
    }

    fn plan_write(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        suspected_down: &[SiteId],
    ) -> QuorumPlan {
        let holders = placement.holders();
        let mut targets: Vec<SiteId> = holders
            .iter()
            .filter(|s| !suspected_down.contains(s))
            .copied()
            .collect();
        if targets.is_empty() {
            // Every copy suspected down: contact them all anyway so the
            // write fails honestly (timeout/denial) instead of "committing"
            // to an empty copy set.
            targets = holders;
        }
        all_of_plan(item, QuorumKind::Write, targets)
    }

    fn name(&self) -> &'static str {
        "AC"
    }
}

/// Tree Quorum (Agrawal & El Abbadi): the copy holders form a logical tree
/// (sorted site order, heap layout, arity 3 by default).
///
/// * A **read quorum** is the root alone; when the root is suspected down
///   the read degrades to a majority of its children's read quorums,
///   recursively.
/// * A **write quorum** is the root plus, recursively, a majority of the
///   children of every selected node. The root (and every selected inner
///   node) is mandatory, so writes block while the root is down — in
///   exchange, reads never pay more than one copy in the failure-free case
///   and every read quorum provably intersects every write quorum.
#[derive(Debug)]
pub struct TreeQuorum {
    arity: usize,
}

impl Default for TreeQuorum {
    fn default() -> Self {
        TreeQuorum::new()
    }
}

impl TreeQuorum {
    /// Creates the planner with the classic ternary tree.
    pub fn new() -> Self {
        TreeQuorum { arity: 3 }
    }

    /// Overrides the tree arity (minimum 2).
    pub fn with_arity(mut self, arity: usize) -> Self {
        self.arity = arity.max(2);
        self
    }

    /// The child indices of node `i` in a heap-shaped tree over `n` nodes.
    fn children(&self, i: usize, n: usize) -> std::ops::Range<usize> {
        let first = (i * self.arity + 1).min(n);
        let last = (i * self.arity + self.arity).min(n.saturating_sub(1));
        if first >= n {
            first..first
        } else {
            first..last + 1
        }
    }

    /// The read quorum of the subtree rooted at `i`: the root when live,
    /// otherwise a majority of the children's read quorums.
    fn read_quorum(
        &self,
        holders: &[SiteId],
        suspected_down: &[SiteId],
        i: usize,
    ) -> Option<Vec<SiteId>> {
        if !suspected_down.contains(&holders[i]) {
            return Some(vec![holders[i]]);
        }
        let kids = self.children(i, holders.len());
        if kids.is_empty() {
            return None;
        }
        let need = kids.len() / 2 + 1;
        let mut union = Vec::new();
        let mut got = 0;
        for kid in kids {
            if let Some(sub) = self.read_quorum(holders, suspected_down, kid) {
                union.extend(sub);
                got += 1;
                if got == need {
                    union.sort();
                    union.dedup();
                    return Some(union);
                }
            }
        }
        None
    }

    /// The write quorum of the subtree rooted at `i`: the (mandatory) root
    /// plus a majority of the children's write quorums. `None` when the
    /// root of the subtree is down or too few child subtrees are writable.
    fn write_quorum(
        &self,
        holders: &[SiteId],
        suspected_down: &[SiteId],
        i: usize,
    ) -> Option<Vec<SiteId>> {
        if suspected_down.contains(&holders[i]) {
            return None;
        }
        let kids = self.children(i, holders.len());
        if kids.is_empty() {
            return Some(vec![holders[i]]);
        }
        let need = kids.len() / 2 + 1;
        let mut union = vec![holders[i]];
        let mut got = 0;
        for kid in kids {
            if let Some(sub) = self.write_quorum(holders, suspected_down, kid) {
                union.extend(sub);
                got += 1;
                if got == need {
                    union.sort();
                    union.dedup();
                    return Some(union);
                }
            }
        }
        None
    }
}

impl ReplicationControl for TreeQuorum {
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        _prefer: Option<SiteId>,
        suspected_down: &[SiteId],
    ) -> QuorumPlan {
        let holders = placement.holders();
        let targets = if holders.is_empty() {
            Vec::new()
        } else {
            self.read_quorum(&holders, suspected_down, 0)
                .unwrap_or_default()
        };
        all_of_plan(item, QuorumKind::Read, targets)
    }

    fn plan_write(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        suspected_down: &[SiteId],
    ) -> QuorumPlan {
        let holders = placement.holders();
        let targets = if holders.is_empty() {
            Vec::new()
        } else {
            self.write_quorum(&holders, suspected_down, 0)
                .unwrap_or_default()
        };
        all_of_plan(item, QuorumKind::Write, targets)
    }

    fn name(&self) -> &'static str {
        "TQ"
    }
}

/// Primary Copy with lease-based failover.
///
/// Every read and write of an item is routed through the item's *primary* —
/// the lowest-numbered copy holder. Writes are propagated synchronously to
/// every available backup (eager primary copy), so a failover never loses a
/// committed write as long as the new primary was up when it committed.
/// When the primary is suspected down, the planner fails over to the next
/// live holder and records a **lease**: the replacement stays primary while
/// the lease keeps being renewed (every plan renews it), even after the old
/// primary recovers, because the recovered site may have missed writes.
/// Only when the leased site itself dies — or the item goes unaccessed past
/// the lease duration — is the role recomputed.
///
/// Known limitation, as in the literature (and shared with
/// [`AvailableCopies`]): a recovered primary is stale until it catches up,
/// and nothing here performs that catch-up. The lease only *mitigates* the
/// window, and only within one coordinator — leases live in the
/// per-coordinator planner instance, and an idle lease expires — so a read
/// planned after recovery by a coordinator without a fresh lease is routed
/// to the recovered (stale) primary until the item's next committed write
/// re-synchronizes it. A real deployment would gate re-election on a
/// log-shipping catch-up protocol; that window is exactly the lesson this
/// protocol teaches in failover experiments.
pub struct PrimaryCopy {
    lease_duration: Duration,
    leases: Mutex<HashMap<ItemId, (SiteId, Instant)>>,
}

impl std::fmt::Debug for PrimaryCopy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrimaryCopy")
            .field("lease_duration", &self.lease_duration)
            .finish_non_exhaustive()
    }
}

impl Default for PrimaryCopy {
    fn default() -> Self {
        PrimaryCopy::new()
    }
}

impl PrimaryCopy {
    /// Creates the planner with a 2-second lease.
    pub fn new() -> Self {
        PrimaryCopy {
            lease_duration: Duration::from_secs(2),
            leases: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the lease duration.
    pub fn with_lease_duration(mut self, lease: Duration) -> Self {
        self.lease_duration = lease;
        self
    }

    /// The site currently acting as primary for `item`, renewing or
    /// (re)granting the lease as a side effect.
    pub fn leader(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        suspected_down: &[SiteId],
    ) -> Option<SiteId> {
        let holders = placement.holders();
        let fallback = *holders.first()?;
        let mut leases = self.leases.lock();
        if let Some((holder, granted)) = leases.get_mut(item) {
            if placement.holds_copy(*holder)
                && !suspected_down.contains(holder)
                && granted.elapsed() < self.lease_duration
            {
                *granted = Instant::now();
                return Some(*holder);
            }
        }
        let chosen = holders
            .iter()
            .find(|s| !suspected_down.contains(s))
            .copied()
            .unwrap_or(fallback);
        leases.insert(item.clone(), (chosen, Instant::now()));
        Some(chosen)
    }
}

impl ReplicationControl for PrimaryCopy {
    fn plan_read(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        _prefer: Option<SiteId>,
        suspected_down: &[SiteId],
    ) -> QuorumPlan {
        let targets = match self.leader(item, placement, suspected_down) {
            Some(leader) => vec![leader],
            None => Vec::new(),
        };
        all_of_plan(item, QuorumKind::Read, targets)
    }

    fn plan_write(
        &self,
        item: &ItemId,
        placement: &ItemPlacement,
        suspected_down: &[SiteId],
    ) -> QuorumPlan {
        let targets = match self.leader(item, placement, suspected_down) {
            Some(leader) => {
                // The leader first (preference order), then every live
                // backup: all of them must acknowledge so that any future
                // failover target holds every committed write.
                let mut targets = vec![leader];
                targets.extend(
                    placement
                        .holders()
                        .into_iter()
                        .filter(|s| *s != leader && !suspected_down.contains(s)),
                );
                targets
            }
            None => Vec::new(),
        };
        all_of_plan(item, QuorumKind::Write, targets)
    }

    fn name(&self) -> &'static str {
        "PC"
    }
}

/// Builds an RCP planner from the configured kind.
pub fn make_rcp(kind: RcpKind) -> Arc<dyn ReplicationControl> {
    match kind {
        RcpKind::Rowa => Arc::new(ReadOneWriteAll::new()),
        RcpKind::QuorumConsensus => Arc::new(QuorumConsensus::new()),
        RcpKind::AvailableCopies => Arc::new(AvailableCopies::new()),
        RcpKind::TreeQuorum => Arc::new(TreeQuorum::new()),
        RcpKind::PrimaryCopy => Arc::new(PrimaryCopy::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{QuorumOutcome, QuorumResponse};
    use rainbow_common::Version;

    fn sites(n: u32) -> Vec<SiteId> {
        (0..n).map(SiteId).collect()
    }

    fn item() -> ItemId {
        ItemId::new("x")
    }

    #[test]
    fn rowa_reads_touch_one_copy_preferring_home() {
        let rcp = ReadOneWriteAll::new();
        let placement = ItemPlacement::majority(sites(3));
        let plan = rcp.plan_read(&item(), &placement, Some(SiteId(2)), &[]);
        assert_eq!(plan.targets, vec![SiteId(2)]);
        assert_eq!(plan.required_votes, 1);
        assert_eq!(plan.kind, QuorumKind::Read);

        // Preferred site not a holder: falls back to some holder.
        let plan = rcp.plan_read(&item(), &placement, Some(SiteId(9)), &[]);
        assert_eq!(plan.targets.len(), 1);
        assert!(placement.holds_copy(plan.targets[0]));
    }

    #[test]
    fn rowa_read_routes_around_suspected_down_sites() {
        let rcp = ReadOneWriteAll::new();
        let placement = ItemPlacement::majority(sites(3));
        let plan = rcp.plan_read(
            &item(),
            &placement,
            Some(SiteId(0)),
            &[SiteId(0), SiteId(1)],
        );
        assert_eq!(plan.targets, vec![SiteId(2)]);
        // All holders down: still pick someone rather than nobody.
        let plan = rcp.plan_read(
            &item(),
            &placement,
            None,
            &[SiteId(0), SiteId(1), SiteId(2)],
        );
        assert_eq!(plan.targets.len(), 1);
    }

    #[test]
    fn rowa_writes_require_every_copy() {
        let rcp = ReadOneWriteAll::new();
        let placement = ItemPlacement::majority(sites(4));
        let plan = rcp.plan_write(&item(), &placement, &[]);
        assert_eq!(plan.targets.len(), 4);
        assert_eq!(plan.required_votes, 4);
        assert_eq!(plan.kind, QuorumKind::Write);

        // One failure makes a ROWA write impossible.
        let mut collector = plan.collector();
        collector.record_failure(SiteId(1));
        assert_eq!(collector.outcome(), QuorumOutcome::Impossible);
    }

    #[test]
    fn qc_uses_placement_thresholds() {
        let rcp = QuorumConsensus::new();
        let placement = ItemPlacement::majority(sites(5));
        let read = rcp.plan_read(&item(), &placement, Some(SiteId(0)), &[]);
        let write = rcp.plan_write(&item(), &placement, &[]);
        assert_eq!(read.targets.len(), 5);
        assert_eq!(read.required_votes, 3);
        assert_eq!(write.required_votes, 3);
    }

    #[test]
    fn qc_write_survives_minority_failures() {
        let rcp = QuorumConsensus::new();
        let placement = ItemPlacement::majority(sites(5));
        let mut collector = rcp.plan_write(&item(), &placement, &[]).collector();
        collector.record_failure(SiteId(0));
        collector.record_failure(SiteId(1));
        for s in 2..5 {
            collector.record_response(QuorumResponse {
                site: SiteId(s),
                version: Version(1),
                value: None,
            });
        }
        assert!(collector.is_assembled());
    }

    #[test]
    fn qc_read_and_write_quorums_intersect() {
        // For every replication degree, any assembled read quorum shares at
        // least one site with any assembled write quorum.
        for n in 1..=7u32 {
            let placement = ItemPlacement::majority(sites(n));
            let read_q = placement.read_quorum as usize;
            let write_q = placement.write_quorum as usize;
            assert!(read_q + write_q > n as usize, "degree {n}");
        }
    }

    #[test]
    fn rowa_read_quorum_is_cheaper_than_qc() {
        let placement = ItemPlacement::majority(sites(5));
        let rowa_read = ReadOneWriteAll::new().plan_read(&item(), &placement, None, &[]);
        let qc_read = QuorumConsensus::new().plan_read(&item(), &placement, None, &[]);
        assert!(rowa_read.targets.len() < qc_read.targets.len());
    }

    #[test]
    fn factory_produces_the_requested_protocol() {
        // The factory's name must agree with the config `Display` name for
        // every protocol, so sweep reports and config files line up.
        for kind in RcpKind::ALL {
            assert_eq!(make_rcp(kind).name(), kind.to_string());
        }
    }

    #[test]
    fn available_copies_writes_route_around_crashed_holders() {
        let rcp = AvailableCopies::new();
        let placement = ItemPlacement::majority(sites(4));
        let plan = rcp.plan_write(&item(), &placement, &[SiteId(3)]);
        assert_eq!(plan.targets, vec![SiteId(0), SiteId(1), SiteId(2)]);
        assert_eq!(plan.required_votes, 3, "all available copies must answer");

        // Unlike ROWA, the write assembles with the crashed holder absent.
        let mut collector = plan.collector();
        for s in 0..3 {
            collector.record_response(QuorumResponse {
                site: SiteId(s),
                version: Version(1),
                value: None,
            });
        }
        assert!(collector.is_assembled());

        // But a *contacted* copy that fails mid-quorum kills the write
        // (write-all-available validation, no silent shrinking).
        let plan = rcp.plan_write(&item(), &placement, &[]);
        let mut collector = plan.collector();
        collector.record_failure(SiteId(2));
        assert_eq!(collector.outcome(), QuorumOutcome::Impossible);
    }

    #[test]
    fn available_copies_with_every_holder_down_cannot_commit_nowhere() {
        let rcp = AvailableCopies::new();
        let placement = ItemPlacement::majority(sites(2));
        let down = vec![SiteId(0), SiteId(1)];
        let plan = rcp.plan_write(&item(), &placement, &down);
        // Falls back to contacting everyone; the quorum is still >= 1 vote,
        // so with nobody answering the transaction aborts instead of
        // committing a write that touched zero copies.
        assert_eq!(plan.targets.len(), 2);
        assert!(plan.required_votes >= 1);
    }

    #[test]
    fn tree_quorum_reads_cost_one_copy_and_degrade_to_children() {
        let rcp = TreeQuorum::new();
        let placement = ItemPlacement::majority(sites(7));
        // Root alive: the read quorum is the root alone.
        let read = rcp.plan_read(&item(), &placement, None, &[]);
        assert_eq!(read.targets, vec![SiteId(0)]);
        assert_eq!(read.required_votes, 1);

        // Root down: degrade to a majority of its children (arity 3 → 2 of
        // {1, 2, 3}).
        let read = rcp.plan_read(&item(), &placement, None, &[SiteId(0)]);
        assert_eq!(read.targets.len(), 2);
        assert!(read.targets.iter().all(|s| s.0 >= 1 && s.0 <= 3));
        assert_eq!(read.required_votes, 2, "every degraded target is required");

        // Root and one child down: still a majority of children, picked
        // around the failure (child 1's subtree degrades to its children).
        let read = rcp.plan_read(&item(), &placement, None, &[SiteId(0), SiteId(1)]);
        assert!(read.targets.len() >= 2);
        assert!(!read.targets.contains(&SiteId(0)));
        assert!(!read.targets.contains(&SiteId(1)));
    }

    #[test]
    fn tree_quorum_writes_include_root_and_child_majorities() {
        let rcp = TreeQuorum::new();
        let placement = ItemPlacement::majority(sites(7));
        let write = rcp.plan_write(&item(), &placement, &[]);
        // Root + 2 of its 3 children + (leaf children have no subtrees to
        // recurse into beyond themselves).
        assert!(write.targets.contains(&SiteId(0)), "the root is mandatory");
        assert!(write.targets.len() < 7, "cheaper than write-all");
        assert_eq!(write.required_votes, write.targets.len() as u32);

        // A down root blocks writes entirely (reads keep the availability).
        let blocked = rcp.plan_write(&item(), &placement, &[SiteId(0)]);
        assert!(blocked.targets.is_empty());
        assert_eq!(blocked.collector().outcome(), QuorumOutcome::Impossible);
    }

    #[test]
    fn tree_quorum_read_and_write_quorums_intersect_under_failures() {
        // For every single-site failure view, any read quorum the planner
        // builds must share a site with any write quorum built under any
        // (possibly different) single-site failure view — the property that
        // makes version-number reads safe.
        let rcp = TreeQuorum::new();
        for n in 1..=9u32 {
            let placement = ItemPlacement::majority(sites(n));
            let mut views: Vec<Vec<SiteId>> = vec![vec![]];
            views.extend((0..n).map(|s| vec![SiteId(s)]));
            for read_view in &views {
                for write_view in &views {
                    let read = rcp.plan_read(&item(), &placement, None, read_view);
                    let write = rcp.plan_write(&item(), &placement, write_view);
                    if read.targets.is_empty() || write.targets.is_empty() {
                        continue; // that side aborts; nothing to intersect
                    }
                    assert!(
                        read.targets.iter().any(|s| write.targets.contains(s)),
                        "degree {n}: read {read_view:?}→{:?} misses write {write_view:?}→{:?}",
                        read.targets,
                        write.targets
                    );
                }
            }
        }
    }

    #[test]
    fn primary_copy_routes_reads_and_writes_through_the_primary() {
        let rcp = PrimaryCopy::new();
        let placement = ItemPlacement::majority(sites(3));
        let read = rcp.plan_read(&item(), &placement, Some(SiteId(2)), &[]);
        assert_eq!(read.targets, vec![SiteId(0)], "home preference is ignored");
        let write = rcp.plan_write(&item(), &placement, &[]);
        assert_eq!(write.targets[0], SiteId(0), "primary leads the write");
        assert_eq!(write.targets.len(), 3, "backups are updated synchronously");
        assert_eq!(write.required_votes, 3);
    }

    #[test]
    fn primary_copy_fails_over_and_holds_the_lease_after_recovery() {
        let rcp = PrimaryCopy::new();
        let placement = ItemPlacement::majority(sites(3));
        // Primary crashes: the next live holder takes over.
        let read = rcp.plan_read(&item(), &placement, None, &[SiteId(0)]);
        assert_eq!(read.targets, vec![SiteId(1)]);
        // Primary recovers: the lease keeps the replacement in charge (the
        // recovered site may have missed writes and must catch up first).
        let read = rcp.plan_read(&item(), &placement, None, &[]);
        assert_eq!(read.targets, vec![SiteId(1)], "lease is sticky");
        // Writes during the failover exclude the crashed primary but still
        // reach every live backup.
        let write = rcp.plan_write(&item(), &placement, &[SiteId(0)]);
        assert_eq!(write.targets, vec![SiteId(1), SiteId(2)]);
        // The leased replacement dying hands the role to the next live site.
        let read = rcp.plan_read(&item(), &placement, None, &[SiteId(1)]);
        assert_eq!(read.targets, vec![SiteId(0)]);
    }

    #[test]
    fn primary_copy_lease_expires_when_unused() {
        let rcp = PrimaryCopy::new().with_lease_duration(Duration::from_millis(20));
        let placement = ItemPlacement::majority(sites(2));
        let read = rcp.plan_read(&item(), &placement, None, &[SiteId(0)]);
        assert_eq!(read.targets, vec![SiteId(1)]);
        std::thread::sleep(Duration::from_millis(40));
        // Lease lapsed without renewal: the role reverts to the true
        // primary once it is live again.
        let read = rcp.plan_read(&item(), &placement, None, &[]);
        assert_eq!(read.targets, vec![SiteId(0)]);
    }

    #[test]
    fn weighted_qc_respects_vote_weights() {
        let mut copies = std::collections::BTreeMap::new();
        copies.insert(SiteId(0), 3u32);
        copies.insert(SiteId(1), 1u32);
        copies.insert(SiteId(2), 1u32);
        let placement = ItemPlacement::weighted(copies, 3, 3);
        let rcp = QuorumConsensus::new();
        let plan = rcp.plan_write(&item(), &placement, &[]);
        let mut collector = plan.collector();
        // The heavyweight site alone is a write quorum.
        collector.record_response(QuorumResponse {
            site: SiteId(0),
            version: Version(4),
            value: None,
        });
        assert!(collector.is_assembled());
        assert_eq!(collector.next_version(), Version(5));
    }

    #[test]
    fn single_replica_degenerates_to_primary_copy() {
        let placement = ItemPlacement::majority(vec![SiteId(3)]);
        for rcp in RcpKind::ALL.map(make_rcp) {
            let read = rcp.plan_read(&item(), &placement, None, &[]);
            let write = rcp.plan_write(&item(), &placement, &[]);
            assert_eq!(read.targets, vec![SiteId(3)]);
            assert_eq!(write.targets, vec![SiteId(3)]);
            assert_eq!(read.required_votes, 1);
            assert_eq!(write.required_votes, 1);
        }
    }
}
