//! Savable session configuration.
//!
//! "The configuration data can be saved for reuse in another session"
//! (Section 4.2). A [`SessionConfig`] captures everything the GUI panels
//! configure — sites, database items, replication scheme, protocol stack and
//! network simulation — and round-trips through JSON on disk.

use rainbow_common::config::{DatabaseSchema, DistributionSchema};
use rainbow_common::protocol::ProtocolStack;
use rainbow_common::{RainbowError, RainbowResult};
use rainbow_core::ClusterConfig;
use rainbow_net::NetworkConfig;
use rainbow_trace::TraceConfig;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Duration;

/// A complete, serializable Rainbow session configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Sites and hosts.
    pub distribution: DistributionSchema,
    /// Items, initial values, replication scheme.
    pub database: DatabaseSchema,
    /// Protocol stack.
    pub stack: ProtocolStack,
    /// Network simulation.
    pub network: NetworkConfig,
    /// Client timeout in milliseconds (after which an unanswered
    /// transaction is reported as orphaned).
    pub client_timeout_ms: u64,
    /// Master seed for workload generation in this session.
    pub seed: u64,
    /// Record every transaction's footprint (reads with versions, writes,
    /// outcome) into a cluster-wide history for the serializability
    /// checker. Off by default — the hot path pays nothing.
    pub record_history: bool,
    /// End-to-end tracing: span trees and per-phase latency histograms.
    /// Disabled by default — no tracer is constructed and the
    /// instrumentation compiles down to `None` checks.
    pub tracing: TraceConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            distribution: DistributionSchema::one_site_per_host(4),
            database: DatabaseSchema::default(),
            stack: ProtocolStack::rainbow_default(),
            network: NetworkConfig::perfect(),
            client_timeout_ms: 10_000,
            seed: 42,
            record_history: false,
            tracing: TraceConfig::disabled(),
        }
    }
}

impl SessionConfig {
    /// Converts into the cluster configuration used to start the core.
    pub fn to_cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            distribution: self.distribution.clone(),
            database: self.database.clone(),
            stack: self.stack.clone(),
            network: self.network.clone(),
            client_timeout: Duration::from_millis(self.client_timeout_ms),
            record_history: self.record_history,
            tracing: self.tracing.clone(),
            // Engine selection is a deployment knob, not part of the saved
            // session: the `RAINBOW_ENGINE` environment variable decides.
            storage: rainbow_core::StorageConfig::from_env(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> RainbowResult<String> {
        serde_json::to_string_pretty(self).map_err(|e| RainbowError::Serialization(e.to_string()))
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> RainbowResult<Self> {
        serde_json::from_str(json).map_err(|e| RainbowError::Serialization(e.to_string()))
    }

    /// Saves to a JSON file.
    pub fn save(&self, path: impl AsRef<Path>) -> RainbowResult<()> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| RainbowError::Storage(e.to_string()))
    }

    /// Loads from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> RainbowResult<Self> {
        let json =
            std::fs::read_to_string(path).map_err(|e| RainbowError::Storage(e.to_string()))?;
        Self::from_json(&json)
    }

    /// Validates the configuration (delegates to the cluster validation).
    pub fn validate(&self) -> RainbowResult<()> {
        self.to_cluster_config().validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::config::ItemPlacement;
    use rainbow_common::SiteId;

    fn sample() -> SessionConfig {
        let mut config = SessionConfig::default();
        let sites = config.distribution.site_ids();
        config.database = DatabaseSchema::uniform(6, 100, &sites, 3).unwrap();
        config
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let config = sample();
        let json = config.to_json().unwrap();
        let back = SessionConfig::from_json(&json).unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn file_round_trip() {
        let config = sample();
        let dir = std::env::temp_dir().join("rainbow-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.json");
        config.save(&path).unwrap();
        let back = SessionConfig::load(&path).unwrap();
        assert_eq!(config, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_of_missing_file_is_a_storage_error() {
        let err = SessionConfig::load("/definitely/not/a/real/path.json").unwrap_err();
        assert!(matches!(err, RainbowError::Storage(_)));
    }

    #[test]
    fn malformed_json_is_a_serialization_error() {
        let err = SessionConfig::from_json("{not json").unwrap_err();
        assert!(matches!(err, RainbowError::Serialization(_)));
    }

    #[test]
    fn validation_catches_bad_placements() {
        let mut config = sample();
        config
            .database
            .replication
            .place("x0", ItemPlacement::majority(vec![SiteId(99)]));
        assert!(config.validate().is_err());
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn cluster_config_conversion_copies_timeout() {
        let mut config = sample();
        config.client_timeout_ms = 1234;
        let cluster = config.to_cluster_config();
        assert_eq!(cluster.client_timeout, Duration::from_millis(1234));
        assert_eq!(cluster.distribution, config.distribution);
    }
}
