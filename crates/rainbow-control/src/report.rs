//! Text rendering of statistics and experiment tables.
//!
//! The Rainbow GUI displays "transaction processing output" (Figure 5) and
//! lets the user view statistics via the *Tx Processing* menu. This module
//! renders the same information as plain text so examples, benches and test
//! logs can show it, and provides a small fixed-width table builder used by
//! every experiment binary so their output is uniform and easy to diff
//! against EXPERIMENTS.md.

use crate::runners::SweepReport;
use rainbow_common::stats::StatsSnapshot;
use rainbow_common::txn::AbortLayer;
use rainbow_common::{RainbowError, RainbowResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the Figure-5-style transaction processing output panel.
pub fn render_stats_panel(title: &str, stats: &StatsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Rainbow Tx Processing Output: {title} ===");
    let _ = writeln!(out, "submitted transactions      : {}", stats.submitted);
    let _ = writeln!(out, "committed transactions      : {}", stats.committed);
    let _ = writeln!(out, "aborted transactions        : {}", stats.aborted);
    let _ = writeln!(out, "orphan transactions         : {}", stats.orphans);
    let _ = writeln!(out, "restarted transactions      : {}", stats.restarted);
    let _ = writeln!(
        out,
        "commit rate                 : {:.3}",
        stats.commit_rate()
    );
    let _ = writeln!(
        out,
        "abort rate                  : {:.3}",
        stats.abort_rate()
    );
    for layer in [
        AbortLayer::Rcp,
        AbortLayer::Ccp,
        AbortLayer::Acp,
        AbortLayer::Other,
    ] {
        let _ = writeln!(
            out,
            "  abort rate due to {:<9}: {:.3} ({} aborts)",
            layer.to_string(),
            stats.abort_rate_for(layer),
            stats.aborts.layer(layer)
        );
    }
    let _ = writeln!(
        out,
        "throughput (commit/s)       : {:.1}",
        stats.throughput()
    );
    let _ = writeln!(
        out,
        "response time mean/p95/p99  : {:.2} / {:.2} / {:.2} ms",
        stats.response_time.mean_us / 1000.0,
        stats.response_time.p95_us as f64 / 1000.0,
        stats.response_time.p99_us as f64 / 1000.0
    );
    let _ = writeln!(out, "messages sent               : {}", stats.messages.sent);
    let _ = writeln!(
        out,
        "messages per second         : {:.1}",
        stats.messages_per_sec()
    );
    let _ = writeln!(
        out,
        "messages per transaction    : {:.2}",
        stats.messages_per_txn()
    );
    let _ = writeln!(
        out,
        "round-trip messages         : {}",
        stats.messages.round_trips
    );
    let _ = writeln!(
        out,
        "load imbalance (cv)         : {:.3}",
        stats.load.imbalance()
    );
    if !stats.phases.is_empty() {
        let _ = writeln!(out, "phase latency p50/p95/p99/p999 (ms):");
        for (name, phase) in &stats.phases {
            let _ = writeln!(
                out,
                "  {name:<12} {:.3} / {:.3} / {:.3} / {:.3}  (n={})",
                phase.p50_us as f64 / 1000.0,
                phase.p95_us as f64 / 1000.0,
                phase.p99_us as f64 / 1000.0,
                phase.p999_us as f64 / 1000.0,
                phase.count
            );
        }
    }
    if !stats.messages.by_kind.is_empty() {
        let _ = writeln!(out, "messages by kind:");
        for (kind, count) in &stats.messages.by_kind {
            let _ = writeln!(out, "  {kind:<20} {count}");
        }
    }
    out
}

/// Renders a protocol sweep as the standard fixed-width table: one row per
/// (protocol, workload, fault) cell with the availability and latency
/// columns the replication experiments compare.
pub fn sweep_table(title: &str, report: &SweepReport) -> ExperimentTable {
    let mut headers = vec![
        "RCP",
        "workload",
        "fault",
        "commit%",
        "committed",
        "aborted",
        "orphans",
        "rt-p50 ms",
        "rt-p95 ms",
        "msgs/txn",
        "top abort cause",
    ];
    // Per-phase p95 columns, in breakdown order. Cells measured without
    // tracing render "-".
    let phase_headers: Vec<String> = rainbow_trace::Phase::ALL
        .iter()
        .map(|p| format!("{} p95 ms", p.name()))
        .collect();
    headers.extend(phase_headers.iter().map(|h| h.as_str()));
    let mut table = ExperimentTable::new(title, &headers);
    for cell in &report.cells {
        let top_cause = cell
            .abort_causes
            .iter()
            .max_by_key(|(_, count)| **count)
            .map(|(cause, count)| format!("{cause} ({count})"))
            .unwrap_or_else(|| "-".into());
        let mut row = vec![
            cell.protocol.clone(),
            cell.profile.clone(),
            cell.fault.clone(),
            format!("{:.1}", cell.commit_rate * 100.0),
            cell.committed.to_string(),
            cell.aborted.to_string(),
            cell.orphans.to_string(),
            format!("{:.2}", cell.latency.p50_ms),
            format!("{:.2}", cell.latency.p95_ms),
            format!("{:.1}", cell.messages_per_txn),
            top_cause,
        ];
        for phase in rainbow_trace::Phase::ALL {
            row.push(match cell.phases.get(phase.name()) {
                Some(stats) => format!("{:.3}", stats.p95_us as f64 / 1000.0),
                None => "-".into(),
            });
        }
        table.row(&row);
    }
    table
}

/// Serializes a protocol sweep to the pretty JSON written to
/// `BENCH_protocols.json`.
pub fn sweep_to_json(report: &SweepReport) -> RainbowResult<String> {
    serde_json::to_string_pretty(report).map_err(|e| RainbowError::Serialization(e.to_string()))
}

/// One row of `BENCH_phases.json`: where a (protocol, workload, fault) cell
/// spent its time, phase by phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdownCell {
    /// Replication protocol (short name, e.g. `QC`).
    pub protocol: String,
    /// Workload profile name.
    pub profile: String,
    /// Fault scenario name.
    pub fault: String,
    /// Selected percentiles per phase, keyed by phase name.
    pub phases: BTreeMap<String, PhasePercentiles>,
}

/// The percentiles `BENCH_phases.json` records for one phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasePercentiles {
    /// Number of samples behind the percentiles.
    pub count: u64,
    /// Median in microseconds.
    pub p50_us: u64,
    /// 95th percentile in microseconds.
    pub p95_us: u64,
    /// 99th percentile in microseconds.
    pub p99_us: u64,
    /// 99.9th percentile in microseconds.
    pub p999_us: u64,
}

/// Extracts the per-phase latency breakdown of every sweep cell. Cells that
/// ran with tracing disabled contribute an empty phase map.
pub fn phase_breakdown(report: &SweepReport) -> Vec<PhaseBreakdownCell> {
    report
        .cells
        .iter()
        .map(|cell| PhaseBreakdownCell {
            protocol: cell.protocol.clone(),
            profile: cell.profile.clone(),
            fault: cell.fault.clone(),
            phases: cell
                .phases
                .iter()
                .map(|(name, stats)| {
                    (
                        name.clone(),
                        PhasePercentiles {
                            count: stats.count,
                            p50_us: stats.p50_us,
                            p95_us: stats.p95_us,
                            p99_us: stats.p99_us,
                            p999_us: stats.p999_us,
                        },
                    )
                })
                .collect(),
        })
        .collect()
}

/// Serializes the per-phase breakdown of a sweep to the pretty JSON written
/// to `BENCH_phases.json`.
pub fn phases_to_json(report: &SweepReport) -> RainbowResult<String> {
    serde_json::to_string_pretty(&phase_breakdown(report))
        .map_err(|e| RainbowError::Serialization(e.to_string()))
}

/// A fixed-width table used by the experiment binaries to print the series
/// the paper's evaluation would report.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExperimentTable {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified by the caller).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there is no data row.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "--- {} ---", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .take(columns)
                .map(|(i, cell)| format!("{cell:<width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::stats::{AbortBreakdown, LatencyStats};
    use std::time::Duration;

    fn sample_stats() -> StatsSnapshot {
        let mut aborts = AbortBreakdown::default();
        aborts.record(AbortLayer::Ccp, "deadlock");
        let mut snapshot = StatsSnapshot {
            submitted: 10,
            committed: 8,
            aborted: 2,
            orphans: 0,
            restarted: 1,
            aborts,
            elapsed_secs: 2.0,
            response_time: LatencyStats::from_samples(&[
                Duration::from_millis(5),
                Duration::from_millis(10),
            ]),
            ..Default::default()
        };
        snapshot.messages.sent = 120;
        snapshot.messages.by_kind.insert("ACP_PREPARE".into(), 24);
        snapshot.load.served_requests.insert(0, 60);
        snapshot.load.served_requests.insert(1, 60);
        snapshot
    }

    #[test]
    fn stats_panel_contains_every_headline_number() {
        let panel = render_stats_panel("unit test", &sample_stats());
        assert!(panel.contains("committed transactions      : 8"));
        assert!(panel.contains("aborted transactions        : 2"));
        assert!(panel.contains("commit rate                 : 0.800"));
        assert!(panel.contains("CCP"));
        assert!(panel.contains("messages sent               : 120"));
        assert!(panel.contains("ACP_PREPARE"));
        assert!(panel.contains("throughput"));
    }

    #[test]
    fn experiment_table_renders_aligned_columns() {
        let mut table = ExperimentTable::new("quorum traffic", &["degree", "msgs/txn", "winner"]);
        assert!(table.is_empty());
        table.row(&["1".into(), "3.0".into(), "ROWA".into()]);
        table.row(&["5".into(), "17.5".into(), "QC".into()]);
        assert_eq!(table.len(), 2);
        let rendered = table.render();
        assert!(rendered.contains("--- quorum traffic ---"));
        assert!(rendered.contains("degree"));
        assert!(rendered.contains("msgs/txn"));
        assert!(rendered.contains("ROWA"));
        assert!(rendered.contains("17.5"));
        // Header separator present.
        assert!(rendered.contains("------"));
    }

    #[test]
    fn sweep_table_and_json_expose_every_cell() {
        use crate::runners::{LatencySummary, SweepCell, SweepReport};
        let cell = SweepCell {
            protocol: "QC".into(),
            profile: "write-heavy".into(),
            fault: "1-site-down".into(),
            affected_sites: vec![4],
            transactions: 40,
            committed: 36,
            aborted: 4,
            orphans: 0,
            commit_rate: 0.9,
            throughput: 55.0,
            abort_causes: [("rcp-quorum-unavailable".to_string(), 4u64)]
                .into_iter()
                .collect(),
            latency: LatencySummary {
                mean_ms: 4.0,
                p50_ms: 3.5,
                p95_ms: 9.0,
                p99_ms: 12.0,
            },
            messages_per_txn: 17.5,
            phases: [(
                "quorum-read".to_string(),
                LatencyStats {
                    count: 80,
                    p95_us: 2500,
                    ..Default::default()
                },
            )]
            .into_iter()
            .collect(),
        };
        let report = SweepReport {
            sites: 5,
            items: 10,
            replication_degree: 5,
            transactions_per_cell: 40,
            mpl: 6,
            seed: 42,
            cells: vec![cell],
        };
        let rendered = sweep_table("sweep", &report).render();
        assert!(rendered.contains("QC"));
        assert!(rendered.contains("1-site-down"));
        assert!(rendered.contains("90.0"));
        assert!(rendered.contains("rcp-quorum-unavailable (4)"));
        // Phase columns: the measured quorum-read p95 in ms, "-" for the
        // phases this cell has no histogram for.
        assert!(rendered.contains("quorum-read p95 ms"));
        assert!(rendered.contains("2.500"));
        assert!(rendered.contains("wal-force p95 ms"));

        let json = sweep_to_json(&report).unwrap();
        assert!(json.contains("\"commit_rate\""));
        assert!(json.contains("\"p95_ms\""));
        assert!(json.contains("\"protocol\""));
        // The JSON round-trips through the sweep types.
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].protocol, "QC");
        assert_eq!(back.cells[0].latency.p95_ms, 9.0);
    }

    #[test]
    fn table_handles_rows_wider_than_headers() {
        let mut table = ExperimentTable::new("t", &["a"]);
        table.row(&["a-very-long-cell".into()]);
        let rendered = table.render();
        assert!(rendered.contains("a-very-long-cell"));
    }
}
