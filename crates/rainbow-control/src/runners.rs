//! Middle-tier runner facades.
//!
//! The paper's middle tier consists of servlets with narrowly scoped roles:
//! the WLGlet "transfers transaction processing related requests ... to
//! Rainbow sites" and the PMlet "brings progress related requests to and
//! results back from both the name server and the Rainbow sites". These
//! facades preserve that separation of concerns for callers that want to
//! hand a *workload-only* or *monitoring-only* capability to part of their
//! code (for example, a classroom harness that lets students submit
//! transactions but not reconfigure the system).

use crate::session::{Session, WorkloadReport};
use rainbow_common::stats::StatsSnapshot;
use rainbow_common::txn::{TxnResult, TxnSpec};
use rainbow_common::{ItemId, RainbowResult, SiteId, Value, Version};
use rainbow_wlg::{ArrivalProcess, WorkloadParams, WorkloadProfile};

/// Workload-submission facade (the WLGlet role).
pub struct WorkloadRunner<'a> {
    session: &'a Session,
}

impl<'a> WorkloadRunner<'a> {
    /// Wraps a running session.
    pub fn new(session: &'a Session) -> Self {
        WorkloadRunner { session }
    }

    /// Submits one transaction.
    pub fn submit(&self, spec: TxnSpec) -> RainbowResult<TxnResult> {
        self.session.submit(spec)
    }

    /// Submits a batch of manual transactions.
    pub fn submit_all(&self, specs: Vec<TxnSpec>) -> RainbowResult<Vec<TxnResult>> {
        self.session.submit_manual(specs)
    }

    /// Runs a named workload profile.
    pub fn run_profile(
        &self,
        profile: WorkloadProfile,
        transactions: usize,
        arrival: ArrivalProcess,
    ) -> RainbowResult<WorkloadReport> {
        self.session.run_generated(profile, transactions, arrival)
    }

    /// Runs an explicitly parameterized workload.
    pub fn run_params(
        &self,
        params: WorkloadParams,
        arrival: ArrivalProcess,
    ) -> RainbowResult<WorkloadReport> {
        self.session.run_params(params, arrival)
    }
}

/// Monitoring facade (the PMlet role).
pub struct ProgressRunner<'a> {
    session: &'a Session,
}

impl<'a> ProgressRunner<'a> {
    /// Wraps a running session.
    pub fn new(session: &'a Session) -> Self {
        ProgressRunner { session }
    }

    /// The cumulative statistics snapshot.
    pub fn statistics(&self) -> RainbowResult<StatsSnapshot> {
        self.session.statistics()
    }

    /// Renders the text output panel.
    pub fn render(&self, title: &str) -> RainbowResult<String> {
        self.session.render_statistics(title)
    }

    /// The committed database state at one site.
    pub fn database_view(&self, site: SiteId) -> RainbowResult<Vec<(ItemId, Value, Version)>> {
        self.session.database_view(site)
    }

    /// Checks that every copy of every item has converged to the same value
    /// at every holder site (used after failure/recovery experiments).
    /// Returns the list of items whose copies diverge, with the differing
    /// `(site, value, version)` triples.
    #[allow(clippy::type_complexity)]
    pub fn replica_divergence(
        &self,
    ) -> RainbowResult<Vec<(ItemId, Vec<(SiteId, Value, Version)>)>> {
        let mut per_item: std::collections::BTreeMap<ItemId, Vec<(SiteId, Value, Version)>> =
            std::collections::BTreeMap::new();
        for site in self.session.site_ids() {
            for (item, value, version) in self.session.database_view(site)? {
                per_item.entry(item).or_default().push((site, value, version));
            }
        }
        Ok(per_item
            .into_iter()
            .filter(|(_, copies)| {
                // Copies may legitimately differ in version under quorum
                // consensus (stale minority copies); divergence means two
                // copies claim the same version with different values.
                let mut by_version: std::collections::BTreeMap<Version, &Value> =
                    std::collections::BTreeMap::new();
                for (_, value, version) in copies {
                    match by_version.get(version) {
                        Some(existing) if *existing != value => return true,
                        _ => {
                            by_version.insert(*version, value);
                        }
                    }
                }
                false
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::protocol::ProtocolStack;
    use rainbow_common::Operation;
    use std::time::Duration;

    fn session() -> Session {
        let mut session = Session::new();
        session.configure_sites(3).unwrap();
        session
            .configure_protocols(
                ProtocolStack::rainbow_default()
                    .with_lock_wait_timeout(Duration::from_millis(200))
                    .with_quorum_timeout(Duration::from_millis(500))
                    .with_commit_timeout(Duration::from_millis(500)),
            )
            .unwrap();
        session.configure_uniform_database(6, 50, 3).unwrap();
        session.start().unwrap();
        session
    }

    #[test]
    fn workload_runner_submits_and_runs_profiles() {
        let session = session();
        let wlg = WorkloadRunner::new(&session);
        let result = wlg
            .submit(TxnSpec::new("t", vec![Operation::increment("x0", 5)]))
            .unwrap();
        assert!(result.committed());
        let report = wlg
            .run_profile(
                WorkloadProfile::ReadHeavy,
                10,
                ArrivalProcess::Closed { mpl: 2 },
            )
            .unwrap();
        assert_eq!(report.results.len(), 10);
    }

    #[test]
    fn progress_runner_reports_statistics_and_convergence() {
        let session = session();
        let wlg = WorkloadRunner::new(&session);
        wlg.submit_all(vec![
            TxnSpec::new("w1", vec![Operation::write("x0", 1i64)]),
            TxnSpec::new("w2", vec![Operation::write("x1", 2i64)]),
        ])
        .unwrap();
        let pm = ProgressRunner::new(&session);
        let stats = pm.statistics().unwrap();
        assert_eq!(stats.submitted, 2);
        assert!(pm.render("runner test").unwrap().contains("committed"));
        assert!(!pm.database_view(SiteId(0)).unwrap().is_empty());
        let divergence = pm.replica_divergence().unwrap();
        assert!(
            divergence.is_empty(),
            "replicas diverged: {divergence:?}"
        );
    }
}
