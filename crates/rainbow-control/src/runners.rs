//! Middle-tier runner facades.
//!
//! The paper's middle tier consists of servlets with narrowly scoped roles:
//! the WLGlet "transfers transaction processing related requests ... to
//! Rainbow sites" and the PMlet "brings progress related requests to and
//! results back from both the name server and the Rainbow sites". These
//! facades preserve that separation of concerns for callers that want to
//! hand a *workload-only* or *monitoring-only* capability to part of their
//! code (for example, a classroom harness that lets students submit
//! transactions but not reconfigure the system).

use crate::session::{Session, WorkloadReport};
use rainbow_common::protocol::{ProtocolStack, RcpKind};
use rainbow_common::stats::{LatencyStats, StatsSnapshot};
use rainbow_common::txn::{AbortCause, TxnResult, TxnSpec};
use rainbow_common::{ItemId, RainbowResult, SiteId, Value, Version};
use rainbow_trace::TraceConfig;
use rainbow_wlg::{ArrivalProcess, WorkloadParams, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Workload-submission facade (the WLGlet role).
pub struct WorkloadRunner<'a> {
    session: &'a Session,
}

impl<'a> WorkloadRunner<'a> {
    /// Wraps a running session.
    pub fn new(session: &'a Session) -> Self {
        WorkloadRunner { session }
    }

    /// Submits one transaction.
    pub fn submit(&self, spec: TxnSpec) -> RainbowResult<TxnResult> {
        self.session.submit(spec)
    }

    /// Submits a batch of manual transactions.
    pub fn submit_all(&self, specs: Vec<TxnSpec>) -> RainbowResult<Vec<TxnResult>> {
        self.session.submit_manual(specs)
    }

    /// Runs a named workload profile.
    pub fn run_profile(
        &self,
        profile: WorkloadProfile,
        transactions: usize,
        arrival: ArrivalProcess,
    ) -> RainbowResult<WorkloadReport> {
        self.session.run_generated(profile, transactions, arrival)
    }

    /// Runs an explicitly parameterized workload.
    pub fn run_params(
        &self,
        params: WorkloadParams,
        arrival: ArrivalProcess,
    ) -> RainbowResult<WorkloadReport> {
        self.session.run_params(params, arrival)
    }

    /// Runs a named conversational (interactive) workload profile.
    pub fn run_interactive(
        &self,
        profile: rainbow_wlg::InteractiveProfile,
        transactions: usize,
    ) -> RainbowResult<WorkloadReport> {
        self.session.run_interactive(profile, transactions)
    }
}

/// Monitoring facade (the PMlet role).
pub struct ProgressRunner<'a> {
    session: &'a Session,
}

impl<'a> ProgressRunner<'a> {
    /// Wraps a running session.
    pub fn new(session: &'a Session) -> Self {
        ProgressRunner { session }
    }

    /// The cumulative statistics snapshot.
    pub fn statistics(&self) -> RainbowResult<StatsSnapshot> {
        self.session.statistics()
    }

    /// Renders the text output panel.
    pub fn render(&self, title: &str) -> RainbowResult<String> {
        self.session.render_statistics(title)
    }

    /// The committed database state at one site.
    pub fn database_view(&self, site: SiteId) -> RainbowResult<Vec<(ItemId, Value, Version)>> {
        self.session.database_view(site)
    }

    /// Checks that every copy of every item has converged to the same value
    /// at every holder site (used after failure/recovery experiments).
    /// Returns the list of items whose copies diverge, with the differing
    /// `(site, value, version)` triples.
    #[allow(clippy::type_complexity)]
    pub fn replica_divergence(
        &self,
    ) -> RainbowResult<Vec<(ItemId, Vec<(SiteId, Value, Version)>)>> {
        let mut per_item: std::collections::BTreeMap<ItemId, Vec<(SiteId, Value, Version)>> =
            std::collections::BTreeMap::new();
        for site in self.session.site_ids() {
            for (item, value, version) in self.session.database_view(site)? {
                per_item
                    .entry(item)
                    .or_default()
                    .push((site, value, version));
            }
        }
        Ok(per_item
            .into_iter()
            .filter(|(_, copies)| {
                // Copies may legitimately differ in version under quorum
                // consensus (stale minority copies); divergence means two
                // copies claim the same version with different values.
                let mut by_version: std::collections::BTreeMap<Version, &Value> =
                    std::collections::BTreeMap::new();
                for (_, value, version) in copies {
                    match by_version.get(version) {
                        Some(existing) if *existing != value => return true,
                        _ => {
                            by_version.insert(*version, value);
                        }
                    }
                }
                false
            })
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Protocol sweeps: (protocol × workload × fault scenario) grids
// ---------------------------------------------------------------------------

/// A fault scenario applied to a fresh session for the duration of one
/// sweep cell — the programmatic version of the paper's failure-injection
/// panel, packaged so experiment grids can iterate over it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScenario {
    /// No faults: the availability baseline.
    Healthy,
    /// Crash the `count` highest-numbered sites before the workload starts
    /// (at least one site always survives).
    SiteDown {
        /// Number of sites to crash.
        count: usize,
    },
    /// Partition a minority of the sites (the highest-numbered
    /// `(n - 1) / 2`) away from the rest of the cluster — and from the
    /// clients, which stay with the majority.
    MinorityPartition,
}

impl FaultScenario {
    /// The canonical scenario set sweeps run by default.
    pub fn standard() -> Vec<FaultScenario> {
        vec![
            FaultScenario::Healthy,
            FaultScenario::SiteDown { count: 1 },
            FaultScenario::MinorityPartition,
        ]
    }

    /// A short, file-name-safe label for tables and JSON.
    pub fn name(&self) -> String {
        match self {
            FaultScenario::Healthy => "healthy".into(),
            FaultScenario::SiteDown { count } => format!("{count}-site-down"),
            FaultScenario::MinorityPartition => "minority-partition".into(),
        }
    }

    /// Injects the scenario into a running session and returns the affected
    /// sites.
    pub fn apply(&self, session: &Session) -> RainbowResult<Vec<SiteId>> {
        let sites = session.site_ids();
        match self {
            FaultScenario::Healthy => Ok(Vec::new()),
            FaultScenario::SiteDown { count } => {
                let count = (*count).min(sites.len().saturating_sub(1));
                let victims: Vec<SiteId> = sites.iter().rev().take(count).copied().collect();
                for site in &victims {
                    session.crash_site(*site)?;
                }
                Ok(victims)
            }
            FaultScenario::MinorityPartition => {
                let minority = sites.len().saturating_sub(1) / 2;
                let isolated: Vec<SiteId> = sites.iter().rev().take(minority).copied().collect();
                if !isolated.is_empty() {
                    session.partition(std::slice::from_ref(&isolated))?;
                }
                Ok(isolated)
            }
        }
    }
}

/// Configuration of one protocol sweep: the grid axes plus the fixed
/// cluster and workload shape every cell shares.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Replication protocols to sweep (the RCP axis).
    pub protocols: Vec<RcpKind>,
    /// Workload profiles to sweep.
    pub profiles: Vec<WorkloadProfile>,
    /// Fault scenarios to sweep.
    pub faults: Vec<FaultScenario>,
    /// Number of sites.
    pub sites: usize,
    /// Number of database items.
    pub items: usize,
    /// Replication degree (copies per item).
    pub replication_degree: usize,
    /// Transactions per cell.
    pub transactions: usize,
    /// Multiprogramming level.
    pub mpl: usize,
    /// Base workload seed (each cell derives its own from it).
    pub seed: u64,
    /// Base protocol stack; each cell overrides the RCP.
    pub stack: ProtocolStack,
    /// Client timeout after which an unanswered transaction counts as an
    /// orphan. Kept short so cells with unreachable home sites finish.
    pub client_timeout: Duration,
    /// Tracing configuration for every cell. Defaults to
    /// [`TraceConfig::histograms_only`] so each cell records its per-phase
    /// latency breakdown without storing span trees.
    pub tracing: TraceConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            protocols: RcpKind::ALL.to_vec(),
            profiles: vec![WorkloadProfile::WriteHeavy],
            faults: FaultScenario::standard(),
            sites: 5,
            items: 24,
            replication_degree: 5,
            transactions: 40,
            mpl: 6,
            seed: 42,
            stack: ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(150))
                .with_quorum_timeout(Duration::from_millis(400))
                .with_commit_timeout(Duration::from_millis(400)),
            client_timeout: Duration::from_millis(1500),
            tracing: TraceConfig::histograms_only(),
        }
    }
}

/// Response-time percentiles of one sweep cell, in milliseconds, over every
/// transaction that reached a decision (committed or aborted).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

impl LatencySummary {
    /// Summarizes a set of response times.
    pub fn from_millis(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let percentile = |p: f64| -> f64 {
            let rank = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[rank]
        };
        LatencySummary {
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            p50_ms: percentile(0.50),
            p95_ms: percentile(0.95),
            p99_ms: percentile(0.99),
        }
    }
}

/// One cell of a protocol sweep: a (protocol, workload, fault) combination
/// and everything measured while running it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Replication protocol (short name, e.g. `QC`).
    pub protocol: String,
    /// Workload profile name.
    pub profile: String,
    /// Fault scenario name.
    pub fault: String,
    /// Sites affected by the fault scenario.
    pub affected_sites: Vec<u32>,
    /// Transactions submitted.
    pub transactions: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Transactions orphaned (home site unreachable).
    pub orphans: usize,
    /// Commit rate over decided (committed + aborted) transactions.
    pub commit_rate: f64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Abort counts keyed by cause.
    pub abort_causes: BTreeMap<String, u64>,
    /// Response-time percentiles.
    pub latency: LatencySummary,
    /// Messages per decided transaction.
    pub messages_per_txn: f64,
    /// Per-phase latency breakdown (lock-wait, quorum-read, prepare,
    /// commit-apply, wal-force, queue-delay), keyed by phase name. Empty
    /// when the sweep ran with tracing disabled.
    pub phases: BTreeMap<String, LatencyStats>,
}

/// A completed protocol sweep: the grid shape plus every cell, ready to be
/// rendered as a table or serialized to `BENCH_protocols.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Number of sites every cell ran with.
    pub sites: usize,
    /// Number of items.
    pub items: usize,
    /// Replication degree.
    pub replication_degree: usize,
    /// Transactions per cell.
    pub transactions_per_cell: usize,
    /// Multiprogramming level.
    pub mpl: usize,
    /// Base seed.
    pub seed: u64,
    /// The measured cells, in protocol-major grid order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// The cell for a (protocol, profile, fault) combination, if measured.
    pub fn cell(&self, protocol: RcpKind, profile: &str, fault: &str) -> Option<&SweepCell> {
        let name = protocol.to_string();
        self.cells
            .iter()
            .find(|c| c.protocol == name && c.profile == profile && c.fault == fault)
    }
}

/// A short stable key for an abort cause, used to aggregate the per-cell
/// abort breakdown. Exhaustive on purpose: a new abort cause must pick a
/// key here before it can ship.
fn abort_cause_key(cause: &AbortCause) -> &'static str {
    match cause {
        AbortCause::RcpQuorumUnavailable { .. } => "rcp-quorum-unavailable",
        AbortCause::RcpTimeout { .. } => "rcp-timeout",
        AbortCause::CcpLockConflict { .. } => "ccp-lock-conflict",
        AbortCause::CcpDeadlock { .. } => "ccp-deadlock",
        AbortCause::CcpTimestampViolation { .. } => "ccp-timestamp",
        AbortCause::AcpVotedNo { .. } => "acp-voted-no",
        AbortCause::AcpTimeout { .. } => "acp-timeout",
        AbortCause::SiteFailure { .. } => "site-failure",
        AbortCause::ClientTimeout => "client-timeout",
        AbortCause::UserAbort => "user-abort",
    }
}

/// Runs one sweep cell on a fresh session.
fn run_sweep_cell(
    config: &SweepConfig,
    rcp: RcpKind,
    profile: WorkloadProfile,
    fault: &FaultScenario,
    seed: u64,
) -> RainbowResult<SweepCell> {
    let mut session = Session::new();
    session.configure_sites(config.sites)?;
    session.configure_protocols(config.stack.clone().with_rcp(rcp))?;
    session.configure_uniform_database(config.items, 100, config.replication_degree)?;
    session.set_seed(seed);
    session.set_client_timeout(config.client_timeout);
    session.set_tracing(config.tracing.clone());
    session.start()?;

    let affected = fault.apply(&session)?;
    let report = session.run_generated(
        profile,
        config.transactions,
        ArrivalProcess::Closed { mpl: config.mpl },
    )?;

    let mut abort_causes: BTreeMap<String, u64> = BTreeMap::new();
    let mut decided_latencies_ms = Vec::new();
    for result in &report.results {
        if let Some(cause) = result.outcome.abort_cause() {
            *abort_causes
                .entry(abort_cause_key(cause).to_string())
                .or_insert(0) += 1;
        }
        if !result.outcome.is_orphaned() {
            decided_latencies_ms.push(result.response_time.as_secs_f64() * 1000.0);
        }
    }

    Ok(SweepCell {
        protocol: rcp.to_string(),
        profile: profile.name().to_string(),
        fault: fault.name(),
        affected_sites: affected.iter().map(|s| s.0).collect(),
        transactions: config.transactions,
        committed: report.committed(),
        aborted: report.aborted(),
        orphans: report.orphaned(),
        commit_rate: report.commit_rate(),
        throughput: report.throughput(),
        abort_causes,
        latency: LatencySummary::from_millis(decided_latencies_ms),
        messages_per_txn: report.messages_per_txn(),
        phases: report.stats.phases.clone(),
    })
}

/// Runs the full (protocol × workload profile × fault scenario) grid, one
/// fresh Rainbow instance per cell so scenarios cannot contaminate each
/// other. Cells are produced in protocol-major order.
pub fn run_protocol_sweep(config: &SweepConfig) -> RainbowResult<SweepReport> {
    let mut cells = Vec::new();
    for (i, rcp) in config.protocols.iter().enumerate() {
        for (j, profile) in config.profiles.iter().enumerate() {
            for (k, fault) in config.faults.iter().enumerate() {
                // Derive a distinct seed per cell so cells are independent
                // but the whole sweep stays reproducible.
                let seed = config
                    .seed
                    .wrapping_add((i as u64) << 16)
                    .wrapping_add((j as u64) << 8)
                    .wrapping_add(k as u64);
                cells.push(run_sweep_cell(config, *rcp, *profile, fault, seed)?);
            }
        }
    }
    Ok(SweepReport {
        sites: config.sites,
        items: config.items,
        replication_degree: config.replication_degree,
        transactions_per_cell: config.transactions,
        mpl: config.mpl,
        seed: config.seed,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::protocol::ProtocolStack;
    use rainbow_common::Operation;
    use std::time::Duration;

    fn session() -> Session {
        let mut session = Session::new();
        session.configure_sites(3).unwrap();
        session
            .configure_protocols(
                ProtocolStack::rainbow_default()
                    .with_lock_wait_timeout(Duration::from_millis(200))
                    .with_quorum_timeout(Duration::from_millis(500))
                    .with_commit_timeout(Duration::from_millis(500)),
            )
            .unwrap();
        session.configure_uniform_database(6, 50, 3).unwrap();
        session.start().unwrap();
        session
    }

    #[test]
    fn workload_runner_submits_and_runs_profiles() {
        let session = session();
        let wlg = WorkloadRunner::new(&session);
        let result = wlg
            .submit(TxnSpec::new("t", vec![Operation::increment("x0", 5)]))
            .unwrap();
        assert!(result.committed());
        let report = wlg
            .run_profile(
                WorkloadProfile::ReadHeavy,
                10,
                ArrivalProcess::Closed { mpl: 2 },
            )
            .unwrap();
        assert_eq!(report.results.len(), 10);
    }

    #[test]
    fn fault_scenarios_have_stable_names_and_apply_cleanly() {
        let session = session();
        assert_eq!(FaultScenario::Healthy.name(), "healthy");
        assert_eq!(FaultScenario::SiteDown { count: 2 }.name(), "2-site-down");
        assert_eq!(
            FaultScenario::MinorityPartition.name(),
            "minority-partition"
        );

        assert!(FaultScenario::Healthy.apply(&session).unwrap().is_empty());
        // 3 sites: one crash victim, chosen from the top.
        let down = FaultScenario::SiteDown { count: 1 }
            .apply(&session)
            .unwrap();
        assert_eq!(down, vec![SiteId(2)]);
        // Crashing "all" sites still leaves one alive.
        let down = FaultScenario::SiteDown { count: 99 }
            .apply(&session)
            .unwrap();
        assert_eq!(down.len(), 2);
    }

    #[test]
    fn a_small_protocol_sweep_covers_the_whole_grid() {
        let config = SweepConfig {
            protocols: vec![
                rainbow_common::protocol::RcpKind::QuorumConsensus,
                rainbow_common::protocol::RcpKind::AvailableCopies,
            ],
            profiles: vec![rainbow_wlg::WorkloadProfile::ReadHeavy],
            faults: vec![FaultScenario::Healthy, FaultScenario::SiteDown { count: 1 }],
            sites: 3,
            items: 6,
            replication_degree: 3,
            transactions: 6,
            mpl: 3,
            seed: 7,
            client_timeout: Duration::from_millis(1000),
            ..SweepConfig::default()
        };
        let report = run_protocol_sweep(&config).unwrap();
        assert_eq!(report.cells.len(), 4, "2 protocols × 1 profile × 2 faults");
        for cell in &report.cells {
            assert_eq!(
                cell.committed + cell.aborted + cell.orphans,
                cell.transactions,
                "{cell:?} lost transactions"
            );
        }
        // Both protocols keep committing reads with a minority crash.
        let qc = report
            .cell(
                rainbow_common::protocol::RcpKind::QuorumConsensus,
                "read-heavy",
                "1-site-down",
            )
            .unwrap();
        assert!(qc.committed > 0, "QC under one crash: {qc:?}");
        assert!(qc.latency.p95_ms >= qc.latency.p50_ms);
        assert!(qc.latency.mean_ms > 0.0);
        // The default histograms-only tracing gives every cell a per-phase
        // breakdown; a read-heavy committed workload must have exercised
        // quorum reads and the commit pipeline.
        for phase in ["quorum-read", "prepare", "wal-force"] {
            assert!(
                qc.phases.get(phase).is_some_and(|s| s.count > 0),
                "phase {phase} missing in {:?}",
                qc.phases
            );
        }
    }

    #[test]
    fn latency_summary_percentiles_are_ordered() {
        let samples: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let summary = LatencySummary::from_millis(samples);
        assert_eq!(summary.p50_ms, 50.0);
        assert_eq!(summary.p95_ms, 95.0);
        assert_eq!(summary.p99_ms, 99.0);
        assert!((summary.mean_ms - 50.0).abs() < 1e-9);
        assert_eq!(
            LatencySummary::from_millis(vec![]),
            LatencySummary::default()
        );
    }

    #[test]
    fn progress_runner_reports_statistics_and_convergence() {
        let session = session();
        let wlg = WorkloadRunner::new(&session);
        wlg.submit_all(vec![
            TxnSpec::new("w1", vec![Operation::write("x0", 1i64)]),
            TxnSpec::new("w2", vec![Operation::write("x1", 2i64)]),
        ])
        .unwrap();
        let pm = ProgressRunner::new(&session);
        let stats = pm.statistics().unwrap();
        assert_eq!(stats.submitted, 2);
        assert!(pm.render("runner test").unwrap().contains("committed"));
        assert!(!pm.database_view(SiteId(0)).unwrap().is_empty());
        let divergence = pm.replica_divergence().unwrap();
        assert!(divergence.is_empty(), "replicas diverged: {divergence:?}");
    }
}
