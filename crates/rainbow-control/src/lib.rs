//! # rainbow-control
//!
//! The control plane of the Rainbow reproduction — the programmatic
//! replacement for the paper's GUI applet and servlet middle tier.
//!
//! In the original system the user drives Rainbow through a Java applet
//! that talks to servlets (NSRunnerlet, SiteRunnerlet, NSlet, Sitelet,
//! WLGlet, PMlet); those servlets start the name server and the sites and
//! route workload-generator and progress-monitor requests to them. None of
//! that applet/servlet machinery is meaningful for a Rust library, but its
//! *verbs* are, and they are preserved one-to-one:
//!
//! | GUI / middle-tier action (paper) | This crate |
//! |---|---|
//! | configure a network simulation | [`Session::configure_network`] |
//! | configure Rainbow sites | [`Session::configure_sites`] |
//! | configure transaction processing protocols | [`Session::configure_protocols`] |
//! | configure database items & replication scheme | [`Session::declare_item`], [`Session::configure_uniform_database`] |
//! | save / reuse configuration data | [`config::SessionConfig`] + [`Session::save_config`] / [`Session::load_config`] |
//! | NSRunnerlet / SiteRunnerlet start core components | [`Session::start`] (builds the [`rainbow_core::Cluster`]) |
//! | manual workload generation panel | [`Session::submit_manual`] (+ [`rainbow_wlg::ManualWorkloadBuilder`]) |
//! | simulated workload generation panel (WLGlet) | [`Session::run_generated`] |
//! | inject network and site failures and recoveries | [`Session::crash_site`], [`Session::recover_site`], [`Session::partition`], [`Session::heal_partition`] |
//! | progress monitor / Tx processing statistics (PMlet) | [`Session::statistics`], [`report::render_stats_panel`] |
//!
//! Beyond the paper's GUI verbs, the [`nemesis`] module industrialises the
//! failure-injection panel into a seeded, replayable chaos harness judged
//! by the `rainbow-check` serializability checker.
//!
//! [`Session`]: session::Session
//! [`Session::configure_network`]: session::Session::configure_network
//! [`Session::configure_sites`]: session::Session::configure_sites
//! [`Session::configure_protocols`]: session::Session::configure_protocols
//! [`Session::declare_item`]: session::Session::declare_item
//! [`Session::configure_uniform_database`]: session::Session::configure_uniform_database
//! [`Session::save_config`]: session::Session::save_config
//! [`Session::load_config`]: session::Session::load_config
//! [`Session::start`]: session::Session::start
//! [`Session::submit_manual`]: session::Session::submit_manual
//! [`Session::run_generated`]: session::Session::run_generated
//! [`Session::crash_site`]: session::Session::crash_site
//! [`Session::recover_site`]: session::Session::recover_site
//! [`Session::partition`]: session::Session::partition
//! [`Session::heal_partition`]: session::Session::heal_partition
//! [`Session::statistics`]: session::Session::statistics

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod nemesis;
pub mod report;
pub mod runners;
pub mod session;

pub use config::SessionConfig;
pub use nemesis::{
    format_schedule, generate_schedule, run_nemesis, NemesisConfig, NemesisEvent, NemesisReport,
    ScheduledEvent,
};
pub use report::{
    phase_breakdown, phases_to_json, render_stats_panel, sweep_table, sweep_to_json,
    ExperimentTable, PhaseBreakdownCell, PhasePercentiles,
};
pub use runners::{
    run_protocol_sweep, FaultScenario, LatencySummary, ProgressRunner, SweepCell, SweepConfig,
    SweepReport, WorkloadRunner,
};
pub use session::{run_interactive_script, Session, WorkloadReport};
