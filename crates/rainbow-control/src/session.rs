//! The Rainbow session: configure → start → submit workloads → inject
//! failures → monitor. One `Session` is the programmatic equivalent of one
//! GUI session in the paper ("When a new session starts, the user should
//! first configure Rainbow and then submit a workload").

use crate::config::SessionConfig;
use crate::report::render_stats_panel;
use rainbow_common::config::{DatabaseSchema, DistributionSchema, ItemPlacement};
use rainbow_common::protocol::ProtocolStack;
use rainbow_common::stats::{is_finished, StatsSnapshot};
use rainbow_common::txn::{TxnError, TxnOutcome, TxnResult, TxnSpec};
use rainbow_common::{ItemId, RainbowError, RainbowResult, SiteId, Value, Version};
use rainbow_core::{Client, Cluster, Txn};
use rainbow_net::NetworkConfig;
use rainbow_wlg::{
    ArrivalProcess, InteractiveProfile, InteractiveScript, WorkloadGenerator, WorkloadParams,
    WorkloadProfile,
};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};

/// The result of running a workload through a session.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Per-transaction results, in completion order.
    pub results: Vec<TxnResult>,
    /// The statistics snapshot taken right after the workload finished
    /// (cumulative for the session).
    pub stats: StatsSnapshot,
    /// Wall-clock time the workload took.
    pub elapsed: Duration,
}

impl WorkloadReport {
    /// Number of committed transactions in this workload.
    pub fn committed(&self) -> usize {
        self.results.iter().filter(|r| r.committed()).count()
    }

    /// Number of aborted transactions in this workload.
    pub fn aborted(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome.is_aborted())
            .count()
    }

    /// Number of orphaned transactions in this workload.
    pub fn orphaned(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome.is_orphaned())
            .count()
    }

    /// Transactions that finished, per the single workspace-wide definition
    /// in [`rainbow_common::stats::is_finished`]: committed + aborted,
    /// orphans excluded. Every rate below uses this same definition, so
    /// `commit_rate` and `throughput` can never disagree about which
    /// transactions count.
    pub fn finished(&self) -> usize {
        self.results
            .iter()
            .filter(|r| is_finished(&r.outcome))
            .count()
    }

    /// Commit rate of this workload: committed / [`WorkloadReport::finished`].
    pub fn commit_rate(&self) -> f64 {
        let finished = self.finished();
        if finished == 0 {
            0.0
        } else {
            self.committed() as f64 / finished as f64
        }
    }

    /// Committed transactions per second of wall-clock time (the numerator
    /// is the committed subset of [`WorkloadReport::finished`]).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.committed() as f64 / secs
        }
    }

    /// Mean response time over finished transactions.
    pub fn mean_response_time(&self) -> Duration {
        let finished: Vec<&TxnResult> = self
            .results
            .iter()
            .filter(|r| is_finished(&r.outcome))
            .collect();
        if finished.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = finished.iter().map(|r| r.response_time).sum();
        total / finished.len() as u32
    }

    /// Total messages attributed to the workload's transactions.
    pub fn total_messages(&self) -> u64 {
        self.results.iter().map(|r| r.messages).sum()
    }

    /// Messages per finished transaction.
    pub fn messages_per_txn(&self) -> f64 {
        let finished = self.finished() as f64;
        if finished == 0.0 {
            0.0
        } else {
            self.total_messages() as f64 / finished
        }
    }
}

/// A Rainbow session: configuration plus (once started) the running core.
pub struct Session {
    config: SessionConfig,
    cluster: Option<Cluster>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A new, unstarted session with the default configuration (4 sites,
    /// empty database, default protocols, perfect network).
    pub fn new() -> Self {
        Session {
            config: SessionConfig::default(),
            cluster: None,
        }
    }

    /// A session from a saved configuration.
    pub fn from_config(config: SessionConfig) -> Self {
        Session {
            config,
            cluster: None,
        }
    }

    /// Loads a session configuration from a JSON file.
    pub fn load_config(path: impl AsRef<Path>) -> RainbowResult<Self> {
        Ok(Session::from_config(SessionConfig::load(path)?))
    }

    /// Saves the current configuration to a JSON file.
    pub fn save_config(&self, path: impl AsRef<Path>) -> RainbowResult<()> {
        self.config.save(path)
    }

    /// The current configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Whether the Rainbow core has been started.
    pub fn is_running(&self) -> bool {
        self.cluster.is_some()
    }

    fn ensure_not_running(&self) -> RainbowResult<()> {
        if self.is_running() {
            Err(RainbowError::InvalidConfig(
                "the session is already running; stop it before reconfiguring".into(),
            ))
        } else {
            Ok(())
        }
    }

    fn cluster(&self) -> RainbowResult<&Cluster> {
        self.cluster.as_ref().ok_or_else(|| {
            RainbowError::InvalidConfig("the session has not been started yet".into())
        })
    }

    // ------------------------------------------------------------------
    // Configuration (the GUI panels)
    // ------------------------------------------------------------------

    /// Configures the network simulation (latency, loss, seed). Must be done
    /// before starting, exactly as the paper requires networking simulation
    /// to be configured first.
    pub fn configure_network(&mut self, network: NetworkConfig) -> RainbowResult<&mut Self> {
        self.ensure_not_running()?;
        self.config.network = network;
        Ok(self)
    }

    /// Configures `n` sites, one per simulated host.
    pub fn configure_sites(&mut self, n: usize) -> RainbowResult<&mut Self> {
        self.ensure_not_running()?;
        self.config.distribution = DistributionSchema::one_site_per_host(n);
        Ok(self)
    }

    /// Configures an explicit distribution schema.
    pub fn configure_distribution(
        &mut self,
        distribution: DistributionSchema,
    ) -> RainbowResult<&mut Self> {
        self.ensure_not_running()?;
        self.config.distribution = distribution;
        Ok(self)
    }

    /// Selects the transaction-processing protocols (RCP, CCP, ACP and
    /// their timeouts) — the Figure 4 panel.
    pub fn configure_protocols(&mut self, stack: ProtocolStack) -> RainbowResult<&mut Self> {
        self.ensure_not_running()?;
        self.config.stack = stack;
        Ok(self)
    }

    /// Declares a database item with its initial value and copy-holder
    /// sites (majority quorums) — one row of the Figure A-1 panel.
    pub fn declare_item(
        &mut self,
        item: impl Into<ItemId>,
        initial: impl Into<Value>,
        holders: &[SiteId],
    ) -> RainbowResult<&mut Self> {
        self.ensure_not_running()?;
        self.config
            .database
            .declare(item, initial, ItemPlacement::majority(holders.to_vec()));
        Ok(self)
    }

    /// Declares a database item with an explicit weighted placement.
    pub fn declare_item_with_placement(
        &mut self,
        item: impl Into<ItemId>,
        initial: impl Into<Value>,
        placement: ItemPlacement,
    ) -> RainbowResult<&mut Self> {
        self.ensure_not_running()?;
        self.config.database.declare(item, initial, placement);
        Ok(self)
    }

    /// Replaces the database with `n_items` uniform integer items replicated
    /// on `degree` sites each.
    pub fn configure_uniform_database(
        &mut self,
        n_items: usize,
        initial: i64,
        degree: usize,
    ) -> RainbowResult<&mut Self> {
        self.ensure_not_running()?;
        let sites = self.config.distribution.site_ids();
        self.config.database = DatabaseSchema::uniform(n_items, initial, &sites, degree)?;
        Ok(self)
    }

    /// Sets the workload seed for this session.
    pub fn set_seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Sets the client timeout after which an unanswered transaction is
    /// reported as orphaned.
    pub fn set_client_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.config.client_timeout_ms = timeout.as_millis() as u64;
        self
    }

    /// Toggles history recording for the serializability checker (takes
    /// effect at the next [`Session::start`]).
    pub fn set_history_recording(&mut self, record: bool) -> &mut Self {
        self.config.record_history = record;
        self
    }

    /// Configures end-to-end tracing (takes effect at the next
    /// [`Session::start`]). Use [`rainbow_trace::TraceConfig::sample_all`]
    /// for span trees of every transaction,
    /// [`rainbow_trace::TraceConfig::histograms_only`] for the per-phase
    /// latency breakdown without span storage.
    pub fn set_tracing(&mut self, tracing: rainbow_trace::TraceConfig) -> &mut Self {
        self.config.tracing = tracing;
        self
    }

    // ------------------------------------------------------------------
    // Lifecycle (NSRunnerlet / SiteRunnerlet)
    // ------------------------------------------------------------------

    /// Starts the Rainbow core: network, name server and every configured
    /// site.
    pub fn start(&mut self) -> RainbowResult<&mut Self> {
        self.ensure_not_running()?;
        self.config.validate()?;
        let cluster = Cluster::start(self.config.to_cluster_config())?;
        self.cluster = Some(cluster);
        Ok(self)
    }

    /// Stops the Rainbow core; the configuration is kept and the session can
    /// be started again.
    pub fn stop(&mut self) {
        if let Some(mut cluster) = self.cluster.take() {
            cluster.shutdown();
        }
    }

    /// The ids of the running sites.
    pub fn site_ids(&self) -> Vec<SiteId> {
        match &self.cluster {
            Some(cluster) => cluster.site_ids(),
            None => self.config.distribution.site_ids(),
        }
    }

    // ------------------------------------------------------------------
    // Workload submission (manual panel + WLGlet)
    // ------------------------------------------------------------------

    /// An interactive client of the running core: `begin → read/write →
    /// commit` conversations with typed, layer-attributed errors and a
    /// retry combinator (see `rainbow_core::client`). The one-shot
    /// `submit*` methods below are adapters over the same conversations.
    pub fn client(&self) -> RainbowResult<Client<'_>> {
        Ok(self.cluster()?.client())
    }

    /// Submits one transaction and waits for its result.
    pub fn submit(&self, spec: TxnSpec) -> RainbowResult<TxnResult> {
        Ok(self.cluster()?.submit(spec))
    }

    /// Submits hand-composed transactions sequentially (the manual panel
    /// submits one at a time) and returns their results.
    pub fn submit_manual(&self, specs: Vec<TxnSpec>) -> RainbowResult<Vec<TxnResult>> {
        let cluster = self.cluster()?;
        Ok(specs.into_iter().map(|spec| cluster.submit(spec)).collect())
    }

    /// Generates and runs a workload from explicit generator parameters.
    pub fn run_params(
        &self,
        params: WorkloadParams,
        arrival: ArrivalProcess,
    ) -> RainbowResult<WorkloadReport> {
        let cluster = self.cluster()?;
        let specs = WorkloadGenerator::new(params).generate();
        let started = Instant::now();
        let results = match arrival {
            ArrivalProcess::Closed { mpl } => cluster.run_workload(specs, mpl),
            open => {
                let delays = open.delays(specs.len(), self.config.seed);
                let mut receivers = Vec::with_capacity(specs.len());
                for (spec, delay) in specs.into_iter().zip(delays) {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    receivers.push(cluster.submit_async(spec));
                }
                let timeout = Duration::from_millis(self.config.client_timeout_ms);
                receivers
                    .into_iter()
                    .filter_map(|rx| rx.recv_timeout(timeout).ok())
                    .collect()
            }
        };
        Ok(WorkloadReport {
            results,
            stats: cluster.stats(),
            elapsed: started.elapsed(),
        })
    }

    /// Generates and runs one of the named workload profiles.
    pub fn run_generated(
        &self,
        profile: WorkloadProfile,
        transactions: usize,
        arrival: ArrivalProcess,
    ) -> RainbowResult<WorkloadReport> {
        let items = self.config.database.item_ids();
        let sites = self.site_ids();
        let params = profile.params(items, sites, transactions, self.config.seed);
        self.run_params(params, arrival)
    }

    /// Generates and runs one of the *conversational* workload profiles:
    /// every transaction is a closure-driven conversation (read → decide →
    /// write) interpreted against a live interactive `Txn` handle through
    /// the retry combinator, so aborted attempts restart with backoff. No
    /// pre-declared `TxnSpec` can express these workloads.
    pub fn run_interactive(
        &self,
        profile: InteractiveProfile,
        transactions: usize,
    ) -> RainbowResult<WorkloadReport> {
        let cluster = self.cluster()?;
        let items = self.config.database.item_ids();
        let specs = profile.generate(&items, transactions, self.config.seed);
        let started = Instant::now();
        let mut client = cluster.client();
        let mut results = Vec::with_capacity(specs.len());
        for spec in &specs {
            let conversation_started = Instant::now();
            let conversation =
                client.run(&spec.label, |txn| run_interactive_script(txn, &spec.script));
            results.push(match conversation {
                Ok(((), receipt)) => TxnResult {
                    id: receipt.id,
                    label: receipt.label,
                    outcome: TxnOutcome::Committed,
                    reads: receipt.reads,
                    response_time: receipt.response_time,
                    restarts: receipt.restarts,
                    messages: receipt.messages,
                },
                Err(error) => TxnResult {
                    id: rainbow_common::TxnId::new(SiteId(u32::MAX), 0),
                    label: spec.label.clone(),
                    outcome: match error {
                        TxnError::Orphaned { .. } => TxnOutcome::Orphaned,
                        TxnError::Aborted(cause) => TxnOutcome::Aborted(cause),
                        TxnError::Expired | TxnError::Finished => TxnOutcome::Orphaned,
                    },
                    reads: BTreeMap::new(),
                    // This conversation's span (every retry attempt
                    // included), not the whole run's elapsed time.
                    response_time: conversation_started.elapsed(),
                    restarts: 0,
                    messages: 0,
                },
            });
        }
        drop(client);
        Ok(WorkloadReport {
            results,
            stats: cluster.stats(),
            elapsed: started.elapsed(),
        })
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Crashes a site.
    pub fn crash_site(&self, site: SiteId) -> RainbowResult<()> {
        self.cluster()?.crash_site(site)
    }

    /// Recovers a crashed site.
    pub fn recover_site(&self, site: SiteId) -> RainbowResult<()> {
        self.cluster()?.recover_site(site)
    }

    /// Partitions the network into site groups.
    pub fn partition(&self, groups: &[Vec<SiteId>]) -> RainbowResult<()> {
        self.cluster()?.partition(groups);
        Ok(())
    }

    /// Heals every partition.
    pub fn heal_partition(&self) -> RainbowResult<()> {
        self.cluster()?.heal_partition();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Monitoring (PMlet / Tx Processing menu)
    // ------------------------------------------------------------------

    /// The cumulative statistics snapshot of this session.
    pub fn statistics(&self) -> RainbowResult<StatsSnapshot> {
        Ok(self.cluster()?.stats())
    }

    /// Renders the Figure-5-style output panel for this session.
    pub fn render_statistics(&self, title: &str) -> RainbowResult<String> {
        Ok(render_stats_panel(title, &self.statistics()?))
    }

    /// The committed database state at one site (the Display menu's
    /// database view).
    pub fn database_view(&self, site: SiteId) -> RainbowResult<Vec<(ItemId, Value, Version)>> {
        self.cluster()?.database_snapshot(site)
    }

    /// The transaction history recorded so far; `None` when the session was
    /// started without [`Session::set_history_recording`].
    pub fn history(&self) -> RainbowResult<Option<rainbow_common::History>> {
        Ok(self.cluster()?.history())
    }

    /// The tracer of the running core; `None` when the session was started
    /// without [`Session::set_tracing`].
    pub fn tracer(&self) -> RainbowResult<Option<std::sync::Arc<rainbow_trace::Tracer>>> {
        Ok(self.cluster()?.tracer())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Interprets one generated [`InteractiveScript`] against a live transaction
/// handle, making the conversation's decisions from the values the read
/// quorums actually observed. Used by [`Session::run_interactive`] and
/// available to examples and experiment harnesses.
pub fn run_interactive_script(txn: &mut Txn, script: &InteractiveScript) -> Result<(), TxnError> {
    match script {
        InteractiveScript::ConditionalTransfer {
            source,
            target,
            amount,
        } => {
            let balance = txn.read(source.clone())?;
            if balance.as_int().unwrap_or(0) >= *amount {
                txn.increment(source.clone(), -*amount)?;
                txn.increment(target.clone(), *amount)?;
            }
            Ok(())
        }
        InteractiveScript::AuditAndFlag {
            inputs,
            flag,
            threshold,
        } => {
            let mut sum = 0i64;
            for item in inputs {
                sum += txn.read(item.clone())?.as_int().unwrap_or(0);
            }
            if sum < *threshold {
                txn.write(flag.clone(), sum)?;
            }
            Ok(())
        }
        InteractiveScript::Replenish {
            item,
            low_water,
            refill,
        } => {
            let stock = txn.read(item.clone())?;
            if stock.as_int().unwrap_or(0) < *low_water {
                txn.increment(item.clone(), *refill)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::Operation;
    use rainbow_wlg::ManualWorkloadBuilder;

    fn quick_session(sites: usize, items: usize) -> Session {
        let mut session = Session::new();
        session.configure_sites(sites).unwrap();
        session
            .configure_protocols(
                ProtocolStack::rainbow_default()
                    .with_lock_wait_timeout(Duration::from_millis(200))
                    .with_quorum_timeout(Duration::from_millis(500))
                    .with_commit_timeout(Duration::from_millis(500)),
            )
            .unwrap();
        session
            .configure_uniform_database(items, 100, sites.min(3))
            .unwrap();
        session.start().unwrap();
        session
    }

    #[test]
    fn configure_start_submit_monitor_cycle() {
        let session = quick_session(3, 8);
        assert!(session.is_running());
        assert_eq!(session.site_ids().len(), 3);

        let result = session
            .submit(TxnSpec::new("t", vec![Operation::read("x0")]))
            .unwrap();
        assert!(result.committed());

        let stats = session.statistics().unwrap();
        assert_eq!(stats.submitted, 1);
        let panel = session.render_statistics("smoke").unwrap();
        assert!(panel.contains("committed transactions"));
        let view = session.database_view(SiteId(0)).unwrap();
        assert!(!view.is_empty());
    }

    #[test]
    fn reconfiguring_a_running_session_is_rejected() {
        let mut session = quick_session(2, 2);
        assert!(session.configure_sites(5).is_err());
        assert!(session.configure_uniform_database(4, 0, 1).is_err());
        assert!(session.start().is_err());
        session.stop();
        assert!(!session.is_running());
        // After stopping, reconfiguration works again.
        assert!(session.configure_sites(2).is_ok());
    }

    #[test]
    fn submitting_before_start_fails() {
        let session = Session::new();
        assert!(session
            .submit(TxnSpec::new("t", vec![Operation::read("x")]))
            .is_err());
        assert!(session.statistics().is_err());
    }

    #[test]
    fn manual_workload_round_trip() {
        let session = quick_session(2, 4);
        let txns = ManualWorkloadBuilder::new()
            .begin("transfer")
            .increment("x0", -10)
            .increment("x1", 10)
            .begin("audit")
            .read("x0")
            .read("x1")
            .build();
        let results = session.submit_manual(txns).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.committed()));
        // Money is conserved.
        let audit = &results[1];
        let sum: i64 = audit.reads.values().map(|v| v.as_int().unwrap_or(0)).sum();
        assert_eq!(sum, 200);
    }

    #[test]
    fn generated_workload_produces_a_report() {
        let session = quick_session(3, 8);
        let report = session
            .run_generated(
                WorkloadProfile::ReadHeavy,
                20,
                ArrivalProcess::Closed { mpl: 4 },
            )
            .unwrap();
        assert_eq!(report.results.len(), 20);
        assert!(report.committed() > 0);
        assert!(report.commit_rate() > 0.0);
        assert!(report.throughput() > 0.0);
        assert!(report.mean_response_time() > Duration::ZERO);
        assert_eq!(report.orphaned(), 0);
    }

    #[test]
    fn open_arrival_workload_also_completes() {
        let session = quick_session(2, 4);
        let report = session
            .run_generated(
                WorkloadProfile::ReadHeavy,
                10,
                ArrivalProcess::Uniform { gap_micros: 500 },
            )
            .unwrap();
        assert_eq!(report.results.len(), 10);
    }

    #[test]
    fn interactive_client_conversation_through_the_session() {
        let session = quick_session(3, 6);
        let mut client = session.client().unwrap();
        let mut txn = client.begin("conversation").unwrap();
        let before = txn.read("x0").unwrap();
        assert_eq!(before.as_int(), Some(100));
        // Decide from the observed value — impossible with a TxnSpec.
        txn.write("x1", before.as_int().unwrap() + 23).unwrap();
        let receipt = txn.commit().unwrap();
        assert_eq!(receipt.label, "conversation");

        let audit = session
            .submit(TxnSpec::new("audit", vec![Operation::read("x1")]))
            .unwrap();
        assert_eq!(audit.reads.get(&ItemId::new("x1")), Some(&Value::Int(123)));
    }

    #[test]
    fn interactive_profiles_run_to_completion() {
        let session = quick_session(3, 8);
        for profile in rainbow_wlg::InteractiveProfile::all() {
            let report = session.run_interactive(profile, 6).unwrap();
            assert_eq!(report.results.len(), 6, "{}", profile.name());
            assert!(
                report.committed() > 0,
                "{} should commit conversations",
                profile.name()
            );
            assert_eq!(report.orphaned(), 0, "{}", profile.name());
            // The shared finished definition keeps the rates coherent.
            assert_eq!(report.finished(), report.committed() + report.aborted());
        }
    }

    #[test]
    fn workload_report_rates_share_one_finished_definition() {
        use rainbow_common::txn::AbortCause;
        use rainbow_common::TxnId;
        let result = |outcome| TxnResult {
            id: TxnId::new(SiteId(0), 1),
            label: "t".into(),
            outcome,
            reads: BTreeMap::new(),
            response_time: Duration::from_millis(10),
            restarts: 0,
            messages: 4,
        };
        let report = WorkloadReport {
            results: vec![
                result(TxnOutcome::Committed),
                result(TxnOutcome::Committed),
                result(TxnOutcome::Aborted(AbortCause::UserAbort)),
                result(TxnOutcome::Orphaned),
            ],
            stats: StatsSnapshot::default(),
            elapsed: Duration::from_secs(2),
        };
        assert_eq!(report.finished(), 3, "orphans never finished");
        assert!((report.commit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert!((report.throughput() - 1.0).abs() < 1e-9, "committed / sec");
        // Orphans contribute neither latency nor the message denominator.
        assert_eq!(report.mean_response_time(), Duration::from_millis(10));
        assert!((report.messages_per_txn() - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fault_injection_via_the_session() {
        let session = quick_session(3, 6);
        session.crash_site(SiteId(2)).unwrap();
        let result = session
            .submit(TxnSpec::new("r", vec![Operation::read("x0")]))
            .unwrap();
        // A single crashed site must not block quorum reads.
        assert!(result.committed(), "outcome: {:?}", result.outcome);
        session.recover_site(SiteId(2)).unwrap();
        session
            .partition(&[vec![SiteId(0)], vec![SiteId(1), SiteId(2)]])
            .unwrap();
        session.heal_partition().unwrap();
    }

    #[test]
    fn config_save_load_start_round_trip() {
        let mut session = Session::new();
        session.configure_sites(2).unwrap();
        session.configure_uniform_database(4, 7, 2).unwrap();
        session
            .set_seed(9)
            .set_client_timeout(Duration::from_secs(5));
        let dir = std::env::temp_dir().join("rainbow-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saved.json");
        session.save_config(&path).unwrap();

        let mut reloaded = Session::load_config(&path).unwrap();
        assert_eq!(reloaded.config(), session.config());
        reloaded.start().unwrap();
        let result = reloaded
            .submit(TxnSpec::new("t", vec![Operation::read("x0")]))
            .unwrap();
        assert!(result.committed());
        std::fs::remove_file(path).ok();
    }
}
