//! The seeded nemesis: a replayable chaos schedule driven against a live
//! cluster, judged by the `rainbow-check` serializability checker.
//!
//! The paper's GUI lets a user "inject network and site failures and
//! recoveries" by hand; the nemesis is that panel industrialised. From one
//! seed it derives — purely, so any seed replays the identical plan
//! bit-for-bit —
//!
//! 1. an **event schedule** interleaving crash / recover / partition / heal
//!    / clock-skew events ([`generate_schedule`]), and
//! 2. a **workload** mixing one-shot spec transactions with interactive
//!    retry-looped conversations (both generators were already pure and
//!    seeded).
//!
//! [`run_nemesis`] plays schedule and workload against a fresh cluster with
//! history recording on, waits for every conversation to reach its final
//! outcome, and hands the complete [`History`] to
//! [`rainbow_check::check_history`]. A failing seed is fully described by
//! its [`NemesisReport`]: the seed, the schedule it (re)produces, the
//! serialized history and the checker's verdict — everything CI needs to
//! upload and everything a developer needs to replay locally.
//!
//! Recoveries use [`Cluster::recover_site_with_catchup`] — the copier
//! catch-up the read-one protocols (Available Copies, Primary Copy) require
//! before a recovered site may serve reads. Recovering without it is not a
//! harness bug but a protocol lesson; the checker turns that lesson into a
//! reproducible red verdict, which is exactly what a laboratory is for.

use rainbow_check::{check_history, CheckReport, Violation};
use rainbow_common::config::{DatabaseSchema, DistributionSchema};
use rainbow_common::history::History;
use rainbow_common::protocol::{CcpKind, ProtocolStack, RcpKind};
use rainbow_common::rng::{derive_seed, seeded_rng};
use rainbow_common::{RainbowResult, SiteId, TxnId};
use rainbow_core::{Cluster, ClusterConfig, EngineKind, PowerLossFault, StorageConfig};
use rainbow_net::NetworkConfig;
use rainbow_trace::{ascii_span_tree, TraceConfig};
use rainbow_wlg::{InteractiveProfile, WorkloadGenerator, WorkloadProfile};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};

use crate::session::run_interactive_script;

/// One fault (or fault-adjacent) event the nemesis injects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NemesisEvent {
    /// Crash a site.
    Crash(SiteId),
    /// Recover a crashed site (with copier catch-up).
    Recover(SiteId),
    /// Partition the listed minority away from the rest of the cluster
    /// (clients and the name server stay with the majority).
    PartitionMinority(Vec<SiteId>),
    /// Heal all partitions.
    Heal,
    /// Jump a site's logical clock ahead by `ticks` — a clock-skewed load
    /// burst that stresses timestamp-ordering stacks.
    ClockSkew {
        /// The skewed site.
        site: SiteId,
        /// How far ahead the clock jumps.
        ticks: u64,
    },
    /// Pull the plug on a site: drop **all** of its volatile state
    /// (including storage-engine buffers), optionally tear or corrupt the
    /// tail of its durable log, and restart it from the disk image alone
    /// (with copier catch-up). On the memory engine this degrades to a
    /// crash+recover. A recovery error — forgotten committed writes show up
    /// later as checker violations, corruption before the tail as a typed
    /// error — is collected into [`NemesisReport::event_errors`].
    PowerLoss {
        /// The site losing power.
        site: SiteId,
        /// What happens to the log tail.
        fault: PowerLossFault,
    },
}

impl fmt::Display for NemesisEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NemesisEvent::Crash(site) => write!(f, "crash {site}"),
            NemesisEvent::Recover(site) => write!(f, "recover {site}"),
            NemesisEvent::PartitionMinority(sites) => {
                write!(f, "partition-minority [")?;
                for (i, site) in sites.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{site}")?;
                }
                write!(f, "]")
            }
            NemesisEvent::Heal => write!(f, "heal"),
            NemesisEvent::ClockSkew { site, ticks } => write!(f, "clock-skew {site} +{ticks}"),
            NemesisEvent::PowerLoss { site, fault } => {
                write!(f, "power-loss {site} ({})", fault.name())
            }
        }
    }
}

/// A nemesis event with the offset (from run start) it fires at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledEvent {
    /// Offset from the start of the run.
    pub at: Duration,
    /// The event.
    pub event: NemesisEvent,
}

impl fmt::Display for ScheduledEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:>5}ms {}", self.at.as_millis(), self.event)
    }
}

/// Shape of one nemesis run: cluster size, workload volume, fault budget.
/// The protocol under test is the `stack`'s RCP/CCP (use
/// [`NemesisConfig::with_rcp`] / [`NemesisConfig::with_ccp`] to sweep).
#[derive(Debug, Clone)]
pub struct NemesisConfig {
    /// Number of sites.
    pub sites: usize,
    /// Number of database items (each initialised to 100).
    pub items: usize,
    /// Copies per item.
    pub replication_degree: usize,
    /// One-shot spec transactions in the workload.
    pub spec_transactions: usize,
    /// Interactive (retry-looped) conversations in the workload.
    pub interactive_transactions: usize,
    /// Multiprogramming level of the spec workload.
    pub mpl: usize,
    /// Number of scheduled fault events (closing heal/recover events are
    /// appended on top).
    pub events: usize,
    /// Gap between consecutive scheduled events.
    pub event_gap: Duration,
    /// The protocol stack under test.
    pub stack: ProtocolStack,
    /// Client timeout (kept short so conversations whose home site crashed
    /// orphan out quickly and retry elsewhere).
    pub client_timeout: Duration,
    /// Storage engine the cluster under test runs on. Disk engines get a
    /// unique per-run subdirectory so concurrent seeds never share files.
    pub storage: StorageConfig,
    /// Include power-loss events (kill-and-restart-from-disk, possibly
    /// with a torn or corrupted log tail) in generated schedules.
    pub power_loss: bool,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        NemesisConfig {
            sites: 5,
            items: 10,
            replication_degree: 5,
            spec_transactions: 40,
            interactive_transactions: 10,
            mpl: 4,
            events: 6,
            event_gap: Duration::from_millis(40),
            stack: ProtocolStack::rainbow_default()
                .with_lock_wait_timeout(Duration::from_millis(150))
                .with_quorum_timeout(Duration::from_millis(400))
                .with_commit_timeout(Duration::from_millis(400))
                .with_parallel_quorums_from_env()
                .with_coordinator_from_env(),
            client_timeout: Duration::from_millis(800),
            storage: StorageConfig::from_env(),
            power_loss: true,
        }
    }
}

impl NemesisConfig {
    /// Builder-style replication-protocol selection.
    pub fn with_rcp(mut self, rcp: RcpKind) -> Self {
        self.stack = self.stack.with_rcp(rcp);
        self
    }

    /// Builder-style concurrency-protocol selection.
    pub fn with_ccp(mut self, ccp: CcpKind) -> Self {
        self.stack = self.stack.with_ccp(ccp);
        self
    }

    /// Builder-style fault-event budget.
    pub fn with_events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// Builder-style storage-engine selection.
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Builder-style power-loss toggle.
    pub fn with_power_loss(mut self, enabled: bool) -> Self {
        self.power_loss = enabled;
        self
    }
}

/// Derives the event schedule for a seed — a *pure* function: the same
/// `(config, seed)` always yields the identical schedule, which is what
/// makes a CI failure replayable bit-for-bit.
///
/// The generator keeps the cluster viable by construction: at most a
/// minority of sites is crashed at any instant, at most one partition is
/// active, and the schedule closes by healing and recovering everything so
/// the run ends fault-free (protocols may still abort freely in between —
/// aborts are never violations).
pub fn generate_schedule(config: &NemesisConfig, seed: u64) -> Vec<ScheduledEvent> {
    let mut rng = seeded_rng(derive_seed(seed, "nemesis-schedule"));
    let sites: Vec<SiteId> = (0..config.sites as u32).map(SiteId).collect();
    let max_down = config.sites.saturating_sub(1) / 2;
    let mut crashed: Vec<SiteId> = Vec::new();
    let mut partitioned = false;
    let mut events = Vec::new();
    let mut at = Duration::ZERO;

    for _ in 0..config.events {
        at += config.event_gap;
        // Legal moves in the current model state; clock skew always is.
        let mut moves: Vec<u8> = vec![4];
        if crashed.len() < max_down {
            moves.push(0);
        }
        if !crashed.is_empty() {
            moves.push(1);
        }
        if !partitioned && max_down >= 1 {
            moves.push(2);
        }
        if partitioned {
            moves.push(3);
        }
        // A power loss crashes its target only for the duration of the
        // event, but that still counts against the minority-down envelope.
        if config.power_loss && crashed.len() < max_down {
            moves.push(5);
        }
        let event = match moves[rng.gen_range(0..moves.len())] {
            0 => {
                let live: Vec<SiteId> = sites
                    .iter()
                    .filter(|s| !crashed.contains(s))
                    .copied()
                    .collect();
                let victim = live[rng.gen_range(0..live.len())];
                crashed.push(victim);
                NemesisEvent::Crash(victim)
            }
            1 => {
                let victim = crashed.remove(rng.gen_range(0..crashed.len()));
                NemesisEvent::Recover(victim)
            }
            2 => {
                let count = rng.gen_range(1..=max_down);
                let mut isolated = Vec::with_capacity(count);
                while isolated.len() < count {
                    let candidate = sites[rng.gen_range(0..sites.len())];
                    if !isolated.contains(&candidate) {
                        isolated.push(candidate);
                    }
                }
                isolated.sort();
                partitioned = true;
                NemesisEvent::PartitionMinority(isolated)
            }
            3 => {
                partitioned = false;
                NemesisEvent::Heal
            }
            5 => {
                let live: Vec<SiteId> = sites
                    .iter()
                    .filter(|s| !crashed.contains(s))
                    .copied()
                    .collect();
                NemesisEvent::PowerLoss {
                    site: live[rng.gen_range(0..live.len())],
                    fault: PowerLossFault::ALL[rng.gen_range(0..PowerLossFault::ALL.len())],
                }
            }
            _ => NemesisEvent::ClockSkew {
                site: sites[rng.gen_range(0..sites.len())],
                ticks: rng.gen_range(1_000..100_000),
            },
        };
        events.push(ScheduledEvent { at, event });
    }

    // Close the run fault-free: heal, then recover every crashed site.
    if partitioned {
        at += config.event_gap;
        events.push(ScheduledEvent {
            at,
            event: NemesisEvent::Heal,
        });
    }
    crashed.sort();
    for site in crashed {
        at += config.event_gap;
        events.push(ScheduledEvent {
            at,
            event: NemesisEvent::Recover(site),
        });
    }
    events
}

/// Renders a schedule one event per line (printed for failing seeds).
pub fn format_schedule(schedule: &[ScheduledEvent]) -> String {
    schedule
        .iter()
        .map(|event| event.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Everything one nemesis run produced: the replayable inputs (seed +
/// schedule), the recorded history and the checker's verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NemesisReport {
    /// The seed the run was derived from.
    pub seed: u64,
    /// The protocol stack label (e.g. `AC+2PL+2PC`).
    pub stack: String,
    /// The event schedule the seed produced.
    pub schedule: Vec<ScheduledEvent>,
    /// Whether every conversation reached its recorded outcome before the
    /// history snapshot (a run that fails to quiesce is reported failed).
    pub quiesced: bool,
    /// Transactions committed / aborted / orphaned, per the history.
    pub committed: usize,
    /// Aborted transactions.
    pub aborted: usize,
    /// Orphaned transactions.
    pub orphaned: usize,
    /// The complete recorded history (serialized into CI artifacts on
    /// failure).
    pub history: History,
    /// The checker's verdict.
    pub check: CheckReport,
    /// ASCII span trees of every transaction implicated in a violation,
    /// keyed by transaction id — the forensic view uploaded next to the
    /// verdict so a failing seed shows *where* the anomalous transactions
    /// spent their time. Empty for passing runs.
    pub anomaly_traces: BTreeMap<String, String>,
    /// Errors surfaced while applying nemesis events — above all power-loss
    /// recoveries that failed (e.g. a disk engine reporting mid-log
    /// corruption). A run with event errors did not survive its faults and
    /// is reported failed even when the history happens to check out.
    pub event_errors: Vec<String>,
}

impl NemesisReport {
    /// True when the run quiesced, every nemesis event applied cleanly and
    /// the checker found no violation.
    pub fn passed(&self) -> bool {
        self.quiesced && self.event_errors.is_empty() && self.check.is_serializable()
    }

    /// One-line summary for matrix logs.
    pub fn summary(&self) -> String {
        format!(
            "[{}] seed {:>4}: {} events, {} committed, {} aborted, {} orphaned — {}",
            self.stack,
            self.seed,
            self.schedule.len(),
            self.committed,
            self.aborted,
            self.orphaned,
            if self.passed() {
                "OK".to_string()
            } else if !self.quiesced {
                "FAILED (history did not quiesce)".to_string()
            } else if !self.event_errors.is_empty() {
                format!("FAILED (event errors: {})", self.event_errors.join("; "))
            } else {
                format!("FAILED ({})", self.check.summary())
            }
        )
    }
}

/// Applies one nemesis event to a running cluster. Most events are
/// best-effort (a recover racing a concurrent shutdown is ignored; the
/// checker judges outcomes, not event bookkeeping) — except a power loss,
/// whose recovery failure is the exact bug class this nemesis hunts and is
/// therefore reported back.
fn apply_event(cluster: &Cluster, event: &NemesisEvent) -> Result<(), String> {
    match event {
        NemesisEvent::Crash(site) => {
            let _ = cluster.crash_site(*site);
        }
        NemesisEvent::Recover(site) => {
            let _ = cluster.recover_site_with_catchup(*site);
        }
        NemesisEvent::PartitionMinority(sites) => {
            cluster.partition(std::slice::from_ref(sites));
        }
        NemesisEvent::Heal => cluster.heal_partition(),
        NemesisEvent::ClockSkew { site, ticks } => {
            let _ = cluster.skew_site_clock(*site, *ticks);
        }
        NemesisEvent::PowerLoss { site, fault } => {
            cluster
                .power_loss_site(*site, *fault)
                .map_err(|err| format!("{event}: {err}"))?;
        }
    }
    Ok(())
}

/// Runs one seeded nemesis experiment: fresh cluster, seed-derived schedule
/// and workload, full-history verdict. See the module docs.
pub fn run_nemesis(config: &NemesisConfig, seed: u64) -> RainbowResult<NemesisReport> {
    let distribution = DistributionSchema::one_site_per_host(config.sites);
    let database = DatabaseSchema::uniform(
        config.items,
        100,
        &distribution.site_ids(),
        config.replication_degree,
    )?;
    let items = database.item_ids();
    // Disk engines get a unique per-run subdirectory (cleaned up with the
    // cluster): concurrent seeds and stacked runs must never share files.
    let mut storage = config.storage.clone();
    if storage.engine == EngineKind::Disk {
        if let Some(dir) = storage.data_dir.take() {
            storage.data_dir = Some(dir.join(format!(
                "nemesis-{}-seed{seed}",
                config.stack.label().replace('+', "_")
            )));
        }
        storage.ephemeral = true;
    }
    let cluster = Cluster::start(ClusterConfig {
        distribution,
        database,
        stack: config.stack.clone(),
        network: NetworkConfig::perfect(),
        client_timeout: config.client_timeout,
        record_history: true,
        // Trace every transaction: which ones turn out anomalous is only
        // known after the checker runs, and failed seeds must ship their
        // span trees.
        tracing: TraceConfig::sample_all(),
        storage,
    })?;

    let schedule = generate_schedule(config, seed);
    let specs = WorkloadGenerator::new(WorkloadProfile::WriteHeavy.params(
        items.clone(),
        cluster.site_ids(),
        config.spec_transactions,
        derive_seed(seed, "nemesis-specs"),
    ))
    .generate();
    let conversations = InteractiveProfile::ConditionalTransfer.generate(
        &items,
        config.interactive_transactions,
        derive_seed(seed, "nemesis-conversations"),
    );

    let mut event_errors: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let cluster = &cluster;
        let mpl = config.mpl;
        scope.spawn(move || {
            cluster.run_workload(specs, mpl);
        });
        scope.spawn(move || {
            let mut client = cluster.client();
            for conversation in &conversations {
                // Failures (abort-retry exhaustion, orphans) are fine: the
                // coordinator records whatever actually happened.
                let _ = client.run(&conversation.label, |txn| {
                    run_interactive_script(txn, &conversation.script)
                });
            }
        });
        // This thread is the nemesis: fire each event at its offset.
        let started = Instant::now();
        for event in &schedule {
            let wait = event.at.saturating_sub(started.elapsed());
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            if let Err(err) = apply_event(cluster, &event.event) {
                event_errors.push(err);
            }
        }
    });

    // The schedule already closed fault-free; make it unconditional so a
    // history snapshot can never observe a faulted cluster.
    cluster.heal_partition();
    let faults = cluster.faults();
    for site in cluster.site_ids() {
        if faults.is_crashed(rainbow_net::NodeId::Site(site)) {
            let _ = cluster.recover_site_with_catchup(site);
        }
    }

    // Every conversation that began must record its outcome; the deadline
    // is the coordinator's own idle-abort horizon (shared definition on the
    // stack, so the two can never drift apart) plus slack.
    let horizon = config.stack.janitor_horizon() + Duration::from_secs(2);
    let quiesced = cluster.await_history_quiescence(horizon);
    let history = cluster.history().expect("nemesis runs record history");
    let (committed, aborted, orphaned) = history.outcome_counts();
    let check = check_history(&history);

    let mut anomaly_traces = BTreeMap::new();
    if let Some(tracer) = cluster.tracer() {
        let mut anomalous: BTreeSet<TxnId> = BTreeSet::new();
        for violation in &check.violations {
            anomalous.extend(violation_txns(violation));
        }
        for txn in anomalous {
            let events = tracer.txn_events(txn);
            if !events.is_empty() {
                anomaly_traces.insert(txn.to_string(), ascii_span_tree(&events));
            }
        }
    }

    Ok(NemesisReport {
        seed,
        stack: config.stack.label(),
        schedule,
        quiesced,
        committed,
        aborted,
        orphaned,
        history,
        check,
        anomaly_traces,
        event_errors,
    })
}

/// The transactions a violation implicates — the ones whose span trees are
/// attached to a failing report.
fn violation_txns(violation: &Violation) -> Vec<TxnId> {
    match violation {
        Violation::DirtyRead { reader, writer, .. } => vec![*reader, *writer],
        Violation::UnknownVersion { reader, .. } => vec![*reader],
        Violation::ValueMismatch { reader, .. } => vec![*reader],
        Violation::ConflictingVersions { writers, .. } => writers.clone(),
        Violation::Cycle { steps } => steps.iter().map(|s| s.txn).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let config = NemesisConfig::default();
        for seed in [0u64, 1, 7, 42, 1337] {
            let a = generate_schedule(&config, seed);
            let b = generate_schedule(&config, seed);
            assert_eq!(a, b, "seed {seed} must replay bit-for-bit");
            assert!(a.len() >= config.events, "closing events are appended");
        }
        assert_ne!(
            generate_schedule(&config, 1),
            generate_schedule(&config, 2),
            "different seeds explore different schedules"
        );
    }

    #[test]
    fn schedules_respect_the_safety_envelope() {
        let config = NemesisConfig::default().with_events(40);
        for seed in 0..20u64 {
            let schedule = generate_schedule(&config, seed);
            let max_down = (config.sites - 1) / 2;
            let mut crashed = std::collections::BTreeSet::new();
            let mut partitioned = false;
            let mut last_at = Duration::ZERO;
            for ScheduledEvent { at, event } in &schedule {
                assert!(*at >= last_at, "events fire in order");
                last_at = *at;
                match event {
                    NemesisEvent::Crash(site) => {
                        assert!(crashed.insert(*site), "no double crash");
                        assert!(crashed.len() <= max_down, "never a majority down");
                    }
                    NemesisEvent::Recover(site) => {
                        assert!(crashed.remove(site), "only crashed sites recover");
                    }
                    NemesisEvent::PartitionMinority(sites) => {
                        assert!(!partitioned, "one partition at a time");
                        assert!(!sites.is_empty() && sites.len() <= max_down);
                        partitioned = true;
                    }
                    NemesisEvent::Heal => {
                        partitioned = false;
                    }
                    NemesisEvent::ClockSkew { ticks, .. } => assert!(*ticks > 0),
                    NemesisEvent::PowerLoss { site, .. } => {
                        // Transiently down during the event: counts against
                        // the minority-down envelope and never hits a site
                        // that is already crashed.
                        assert!(!crashed.contains(site), "no power loss on a crashed site");
                        assert!(crashed.len() < max_down, "envelope leaves room");
                    }
                }
            }
            assert!(crashed.is_empty(), "seed {seed} must end fully recovered");
            assert!(!partitioned, "seed {seed} must end healed");
        }
    }

    #[test]
    fn power_loss_events_are_generated_and_optional() {
        // The CI smoke runs 8 seeds: every fault kind must actually show
        // up across a window that small, or the power-loss path rides
        // along untested.
        let config = NemesisConfig::default();
        let mut faults_seen = std::collections::BTreeSet::new();
        for seed in 0..8u64 {
            for ScheduledEvent { event, .. } in &generate_schedule(&config, seed) {
                if let NemesisEvent::PowerLoss { fault, .. } = event {
                    faults_seen.insert(fault.name());
                }
            }
        }
        for fault in PowerLossFault::ALL {
            assert!(
                faults_seen.contains(fault.name()),
                "seeds 0..8 never generated a {} power loss",
                fault.name()
            );
        }

        // And the knob really disables them.
        let disabled = NemesisConfig::default().with_power_loss(false);
        for seed in 0..8u64 {
            for ScheduledEvent { event, .. } in &generate_schedule(&disabled, seed) {
                assert!(
                    !matches!(event, NemesisEvent::PowerLoss { .. }),
                    "power loss generated while disabled"
                );
            }
        }
    }

    #[test]
    fn schedule_rendering_is_line_per_event() {
        let config = NemesisConfig::default();
        let schedule = generate_schedule(&config, 3);
        let text = format_schedule(&schedule);
        assert_eq!(text.lines().count(), schedule.len());
        assert!(text.contains("t+"));
    }
}
