//! # rainbow-wlg
//!
//! The Rainbow workload generator (the "WLG" of the paper's middle tier).
//!
//! Rainbow lets the user "use either the manual or the simulated workload
//! generation panel to compose and submit transactions" (Section 4.2).
//! This crate provides both halves as pure data generators — they produce
//! [`rainbow_common::txn::TxnSpec`] lists that the cluster / Session layer
//! submits:
//!
//! * [`manual`] — a builder mirroring the Manual Workload Generation panel
//!   (Figure A-2): compose individual transactions operation by operation;
//! * [`generator`] — the simulated workload generator: number of
//!   transactions, operations per transaction, read/write mix, access
//!   distribution (uniform, Zipf, hot-spot), value ranges and home-site
//!   placement policy, all driven by a seed so experiments are repeatable;
//! * [`profiles`] — named parameter presets used by the examples and the
//!   benches (read-heavy, write-heavy, debit/credit transfers, hot-spot
//!   contention);
//! * [`interactive`] — *conversational* workload presets (read, decide,
//!   then write) generated as decision scripts the Session layer interprets
//!   against live interactive `Txn` handles;
//! * [`arrival`] — arrival processes for open (Poisson) and closed (fixed
//!   multiprogramming level) workloads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod generator;
pub mod interactive;
pub mod manual;
pub mod profiles;

pub use arrival::ArrivalProcess;
pub use generator::{HomePolicy, WorkloadGenerator, WorkloadParams};
pub use interactive::{InteractiveProfile, InteractiveScript, InteractiveSpec};
pub use manual::ManualWorkloadBuilder;
pub use profiles::WorkloadProfile;
