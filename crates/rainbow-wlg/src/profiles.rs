//! Named workload profiles used by the examples and the experiment benches.

use crate::generator::WorkloadParams;
use rainbow_common::rng::AccessDistribution;
use rainbow_common::{ItemId, SiteId};
use serde::{Deserialize, Serialize};

/// Workload presets: each corresponds to one kind of classroom or research
/// experiment the paper motivates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadProfile {
    /// 90% reads, uniform access — the "browsing" baseline.
    ReadHeavy,
    /// 60% updates, uniform access — stresses write quorums and 2PC.
    WriteHeavy,
    /// Debit/credit transfers: every transaction increments two items
    /// (one negatively, one positively) and reads both — the classic bank
    /// workload used in lab assignments.
    DebitCredit,
    /// High contention: 80% of accesses hit 10% of the items, half of them
    /// updates — produces the lock-conflict / timestamp-abort behaviour the
    /// CCP experiment measures.
    HotSpotContention,
    /// Read-only analytical scan over many items.
    ReadOnlyScan,
}

impl WorkloadProfile {
    /// Every profile, for sweeps.
    pub fn all() -> [WorkloadProfile; 5] {
        [
            WorkloadProfile::ReadHeavy,
            WorkloadProfile::WriteHeavy,
            WorkloadProfile::DebitCredit,
            WorkloadProfile::HotSpotContention,
            WorkloadProfile::ReadOnlyScan,
        ]
    }

    /// Short name used in reports and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadProfile::ReadHeavy => "read-heavy",
            WorkloadProfile::WriteHeavy => "write-heavy",
            WorkloadProfile::DebitCredit => "debit-credit",
            WorkloadProfile::HotSpotContention => "hot-spot",
            WorkloadProfile::ReadOnlyScan => "read-only-scan",
        }
    }

    /// Concrete generator parameters for this profile over the given item
    /// universe and site set.
    pub fn params(
        &self,
        items: Vec<ItemId>,
        sites: Vec<SiteId>,
        transactions: usize,
        seed: u64,
    ) -> WorkloadParams {
        let base = WorkloadParams::default()
            .with_items(items)
            .with_sites(sites)
            .with_transactions(transactions)
            .with_seed(seed);
        match self {
            WorkloadProfile::ReadHeavy => base
                .with_read_fraction(0.9)
                .with_ops_range(2, 6)
                .with_access(AccessDistribution::Uniform),
            WorkloadProfile::WriteHeavy => base
                .with_read_fraction(0.4)
                .with_ops_range(2, 6)
                .with_access(AccessDistribution::Uniform),
            WorkloadProfile::DebitCredit => base
                .with_read_fraction(0.0)
                .with_ops_range(2, 2)
                .with_access(AccessDistribution::Uniform),
            WorkloadProfile::HotSpotContention => base
                .with_read_fraction(0.5)
                .with_ops_range(2, 4)
                .with_access(AccessDistribution::HotSpot {
                    access_fraction: 0.8,
                    item_fraction: 0.1,
                }),
            WorkloadProfile::ReadOnlyScan => base
                .with_read_fraction(1.0)
                .with_ops_range(6, 10)
                .with_access(AccessDistribution::Uniform),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;

    fn items(n: usize) -> Vec<ItemId> {
        (0..n).map(|i| ItemId::new(format!("x{i}"))).collect()
    }

    #[test]
    fn every_profile_generates_a_valid_workload() {
        for profile in WorkloadProfile::all() {
            let params = profile.params(items(16), vec![SiteId(0), SiteId(1)], 25, 1);
            let txns = WorkloadGenerator::new(params).generate();
            assert_eq!(txns.len(), 25, "profile {}", profile.name());
            assert!(!profile.name().is_empty());
        }
    }

    #[test]
    fn read_heavy_is_mostly_reads_and_write_heavy_is_not() {
        let count_updates = |profile: WorkloadProfile| {
            let params = profile.params(items(16), vec![], 100, 3);
            let txns = WorkloadGenerator::new(params).generate();
            txns.iter()
                .flat_map(|t| t.operations.iter())
                .filter(|op| op.is_update())
                .count()
        };
        let read_heavy = count_updates(WorkloadProfile::ReadHeavy);
        let write_heavy = count_updates(WorkloadProfile::WriteHeavy);
        assert!(
            write_heavy > read_heavy * 2,
            "write-heavy ({write_heavy}) should update far more than read-heavy ({read_heavy})"
        );
    }

    #[test]
    fn read_only_scan_never_updates() {
        let params = WorkloadProfile::ReadOnlyScan.params(items(16), vec![], 50, 5);
        let txns = WorkloadGenerator::new(params).generate();
        assert!(txns.iter().all(|t| t.is_read_only()));
    }

    #[test]
    fn debit_credit_transactions_touch_exactly_two_items() {
        let params = WorkloadProfile::DebitCredit.params(items(16), vec![], 50, 5);
        let txns = WorkloadGenerator::new(params).generate();
        assert!(txns.iter().all(|t| t.len() == 2 && !t.is_read_only()));
    }
}
