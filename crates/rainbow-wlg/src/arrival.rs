//! Arrival processes for simulated workloads.
//!
//! A *closed* workload keeps a fixed number of transactions in the system
//! (the multiprogramming level, MPL); an *open* workload submits
//! transactions at a given rate regardless of completions (Poisson
//! arrivals). The control layer uses the generated inter-arrival delays to
//! pace submission.

use rainbow_common::rng::seeded_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How transactions arrive at the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Closed system: at most `mpl` transactions outstanding, the next one
    /// starts as soon as one finishes.
    Closed {
        /// Multiprogramming level.
        mpl: usize,
    },
    /// Open system: exponential (Poisson-process) inter-arrival times with
    /// the given mean rate in transactions per second.
    Poisson {
        /// Mean arrival rate (transactions per second).
        rate_per_sec: f64,
    },
    /// Open system with a constant inter-arrival gap.
    Uniform {
        /// Fixed gap between submissions.
        gap_micros: u64,
    },
}

impl ArrivalProcess {
    /// The multiprogramming level to use when running this process through a
    /// closed executor (open processes effectively allow unbounded
    /// concurrency, bounded here to a large practical value).
    pub fn effective_mpl(&self) -> usize {
        match self {
            ArrivalProcess::Closed { mpl } => (*mpl).max(1),
            _ => 64,
        }
    }

    /// Inter-arrival delays for `n` transactions (the first delay is the gap
    /// before the first submission). Closed workloads have no pacing and
    /// return all-zero delays.
    pub fn delays(&self, n: usize, seed: u64) -> Vec<Duration> {
        match self {
            ArrivalProcess::Closed { .. } => vec![Duration::ZERO; n],
            ArrivalProcess::Uniform { gap_micros } => {
                vec![Duration::from_micros(*gap_micros); n]
            }
            ArrivalProcess::Poisson { rate_per_sec } => {
                let rate = rate_per_sec.max(f64::MIN_POSITIVE);
                let mut rng = seeded_rng(seed);
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        Duration::from_secs_f64((-u.ln() / rate).min(60.0))
                    })
                    .collect()
            }
        }
    }
}

impl Default for ArrivalProcess {
    fn default() -> Self {
        ArrivalProcess::Closed { mpl: 8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_arrivals_have_no_delay_and_keep_mpl() {
        let process = ArrivalProcess::Closed { mpl: 4 };
        assert_eq!(process.effective_mpl(), 4);
        assert!(process.delays(10, 1).iter().all(|d| d.is_zero()));
        assert_eq!(ArrivalProcess::Closed { mpl: 0 }.effective_mpl(), 1);
    }

    #[test]
    fn uniform_arrivals_use_the_fixed_gap() {
        let process = ArrivalProcess::Uniform { gap_micros: 250 };
        let delays = process.delays(5, 1);
        assert_eq!(delays.len(), 5);
        assert!(delays.iter().all(|d| *d == Duration::from_micros(250)));
        assert_eq!(process.effective_mpl(), 64);
    }

    #[test]
    fn poisson_arrivals_average_the_requested_rate() {
        let process = ArrivalProcess::Poisson {
            rate_per_sec: 200.0,
        };
        let delays = process.delays(4000, 7);
        let mean_secs: f64 =
            delays.iter().map(|d| d.as_secs_f64()).sum::<f64>() / delays.len() as f64;
        // Expected mean inter-arrival = 1/200 = 5ms; allow 20% tolerance.
        assert!(
            (mean_secs - 0.005).abs() < 0.001,
            "observed mean inter-arrival {mean_secs}s"
        );
    }

    #[test]
    fn poisson_delays_are_deterministic_per_seed() {
        let process = ArrivalProcess::Poisson { rate_per_sec: 50.0 };
        assert_eq!(process.delays(10, 3), process.delays(10, 3));
        assert_ne!(process.delays(10, 3), process.delays(10, 4));
    }

    #[test]
    fn default_is_a_closed_mpl_8_system() {
        assert_eq!(ArrivalProcess::default(), ArrivalProcess::Closed { mpl: 8 });
    }
}
