//! The simulated workload generator.

use rainbow_common::rng::{derive_seed, seeded_rng, AccessDistribution, ItemSampler};
use rainbow_common::txn::TxnSpec;
use rainbow_common::{ItemId, Operation, SiteId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How transactions are assigned a home site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HomePolicy {
    /// Let the cluster pick (round-robin at submission time).
    #[default]
    ClusterChoice,
    /// Round-robin over the configured sites, decided by the generator.
    RoundRobin,
    /// Uniformly random site.
    Random,
    /// Every transaction goes to one fixed site (a deliberately imbalanced
    /// load used by the load-balance experiment).
    Fixed(SiteId),
}

/// Parameters of a simulated workload — the fields of the "simulated
/// workload generation panel".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of transactions to generate.
    pub transactions: usize,
    /// Minimum operations per transaction.
    pub min_ops: usize,
    /// Maximum operations per transaction.
    pub max_ops: usize,
    /// Fraction of operations that are reads (`0.0..=1.0`); the rest are
    /// updates.
    pub read_fraction: f64,
    /// When true, updates are read-modify-write increments (debit/credit
    /// style); when false they are blind writes of random values.
    pub updates_are_increments: bool,
    /// How items are selected.
    pub access: AccessDistribution,
    /// Items available to the workload (normally the schema's item ids).
    pub items: Vec<ItemId>,
    /// Sites available for home placement (used by
    /// [`HomePolicy::RoundRobin`] / [`HomePolicy::Random`]).
    pub sites: Vec<SiteId>,
    /// Home-site policy.
    pub home: HomePolicy,
    /// Inclusive range of values written by blind writes.
    pub write_value_range: (i64, i64),
    /// Inclusive range of increment deltas.
    pub increment_range: (i64, i64),
    /// Master seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            transactions: 100,
            min_ops: 2,
            max_ops: 6,
            read_fraction: 0.75,
            updates_are_increments: true,
            access: AccessDistribution::Uniform,
            items: (0..16).map(|i| ItemId::new(format!("x{i}"))).collect(),
            sites: Vec::new(),
            home: HomePolicy::ClusterChoice,
            write_value_range: (0, 1000),
            increment_range: (-50, 50),
            seed: 42,
        }
    }
}

impl WorkloadParams {
    /// Sets the item universe from a schema's item ids.
    pub fn with_items(mut self, items: Vec<ItemId>) -> Self {
        self.items = items;
        self
    }

    /// Sets the candidate home sites.
    pub fn with_sites(mut self, sites: Vec<SiteId>) -> Self {
        self.sites = sites;
        self
    }

    /// Sets the number of transactions.
    pub fn with_transactions(mut self, transactions: usize) -> Self {
        self.transactions = transactions;
        self
    }

    /// Sets the read fraction.
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the access distribution.
    pub fn with_access(mut self, access: AccessDistribution) -> Self {
        self.access = access;
        self
    }

    /// Sets the operations-per-transaction range.
    pub fn with_ops_range(mut self, min_ops: usize, max_ops: usize) -> Self {
        self.min_ops = min_ops.max(1);
        self.max_ops = max_ops.max(self.min_ops);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the home policy.
    pub fn with_home(mut self, home: HomePolicy) -> Self {
        self.home = home;
        self
    }
}

/// Generates [`TxnSpec`] workloads from [`WorkloadParams`].
#[derive(Debug)]
pub struct WorkloadGenerator {
    params: WorkloadParams,
}

impl WorkloadGenerator {
    /// Creates a generator.
    pub fn new(params: WorkloadParams) -> Self {
        WorkloadGenerator { params }
    }

    /// The parameters in force.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Generates the whole workload. Deterministic for a given set of
    /// parameters (including the seed).
    pub fn generate(&self) -> Vec<TxnSpec> {
        let params = &self.params;
        assert!(
            !params.items.is_empty(),
            "workload generation needs at least one item"
        );
        let mut rng = seeded_rng(derive_seed(params.seed, "wlg"));
        let sampler = ItemSampler::new(params.items.len(), params.access);
        let mut txns = Vec::with_capacity(params.transactions);
        for index in 0..params.transactions {
            let ops_count = if params.max_ops > params.min_ops {
                rng.gen_range(params.min_ops..=params.max_ops)
            } else {
                params.min_ops
            };
            // Pick distinct items so a transaction does not deadlock with
            // itself and the footprint is meaningful.
            let item_indices = sampler.sample_distinct(&mut rng, ops_count);
            let mut operations = Vec::with_capacity(ops_count);
            for item_index in item_indices {
                let item = params.items[item_index].clone();
                let is_read = rng.gen::<f64>() < params.read_fraction;
                if is_read {
                    operations.push(Operation::read(item));
                } else if params.updates_are_increments {
                    let (lo, hi) = params.increment_range;
                    let delta = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                    operations.push(Operation::increment(item, delta));
                } else {
                    let (lo, hi) = params.write_value_range;
                    let value = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                    operations.push(Operation::write(item, value));
                }
            }
            let mut spec = TxnSpec::new(format!("wlg-{index}"), operations);
            spec.home = match params.home {
                HomePolicy::ClusterChoice => None,
                HomePolicy::RoundRobin => {
                    if params.sites.is_empty() {
                        None
                    } else {
                        Some(params.sites[index % params.sites.len()])
                    }
                }
                HomePolicy::Random => {
                    if params.sites.is_empty() {
                        None
                    } else {
                        Some(params.sites[rng.gen_range(0..params.sites.len())])
                    }
                }
                HomePolicy::Fixed(site) => Some(site),
            };
            txns.push(spec);
        }
        txns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<ItemId> {
        (0..n).map(|i| ItemId::new(format!("x{i}"))).collect()
    }

    fn sites(n: u32) -> Vec<SiteId> {
        (0..n).map(SiteId).collect()
    }

    #[test]
    fn generates_the_requested_number_of_transactions() {
        let params = WorkloadParams::default()
            .with_items(items(8))
            .with_transactions(50);
        let txns = WorkloadGenerator::new(params).generate();
        assert_eq!(txns.len(), 50);
        for txn in &txns {
            assert!(!txn.is_empty());
            assert!(txn.len() >= 2 && txn.len() <= 6);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let params = WorkloadParams::default().with_items(items(8)).with_seed(7);
        let a = WorkloadGenerator::new(params.clone()).generate();
        let b = WorkloadGenerator::new(params).generate();
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(WorkloadParams::default().with_items(items(8)).with_seed(8))
            .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn read_fraction_extremes_produce_pure_workloads() {
        let read_only = WorkloadGenerator::new(
            WorkloadParams::default()
                .with_items(items(4))
                .with_read_fraction(1.0)
                .with_transactions(20),
        )
        .generate();
        assert!(read_only.iter().all(|t| t.is_read_only()));

        let write_only = WorkloadGenerator::new(
            WorkloadParams::default()
                .with_items(items(4))
                .with_read_fraction(0.0)
                .with_transactions(20),
        )
        .generate();
        assert!(write_only.iter().all(|t| !t.is_read_only()));
    }

    #[test]
    fn operations_within_a_transaction_touch_distinct_items() {
        let txns = WorkloadGenerator::new(
            WorkloadParams::default()
                .with_items(items(10))
                .with_ops_range(4, 4)
                .with_transactions(30),
        )
        .generate();
        for txn in txns {
            let mut touched: Vec<&ItemId> = txn.operations.iter().map(|op| op.item()).collect();
            let before = touched.len();
            touched.sort();
            touched.dedup();
            assert_eq!(touched.len(), before);
        }
    }

    #[test]
    fn blind_write_mode_produces_write_operations() {
        let mut params = WorkloadParams::default()
            .with_items(items(4))
            .with_read_fraction(0.0)
            .with_transactions(10);
        params.updates_are_increments = false;
        let txns = WorkloadGenerator::new(params).generate();
        assert!(txns.iter().all(|t| t
            .operations
            .iter()
            .all(|op| matches!(op, Operation::Write { .. }))));
    }

    #[test]
    fn home_policies_assign_sites_as_requested() {
        let base = WorkloadParams::default()
            .with_items(items(4))
            .with_sites(sites(3))
            .with_transactions(9);

        let rr = WorkloadGenerator::new(base.clone().with_home(HomePolicy::RoundRobin)).generate();
        assert_eq!(rr[0].home, Some(SiteId(0)));
        assert_eq!(rr[1].home, Some(SiteId(1)));
        assert_eq!(rr[2].home, Some(SiteId(2)));
        assert_eq!(rr[3].home, Some(SiteId(0)));

        let fixed =
            WorkloadGenerator::new(base.clone().with_home(HomePolicy::Fixed(SiteId(1)))).generate();
        assert!(fixed.iter().all(|t| t.home == Some(SiteId(1))));

        let random = WorkloadGenerator::new(base.clone().with_home(HomePolicy::Random)).generate();
        assert!(random.iter().all(|t| t.home.is_some()));

        let cluster = WorkloadGenerator::new(base.with_home(HomePolicy::ClusterChoice)).generate();
        assert!(cluster.iter().all(|t| t.home.is_none()));
    }

    #[test]
    fn hotspot_access_concentrates_on_the_hot_items() {
        let params = WorkloadParams::default()
            .with_items(items(20))
            .with_transactions(200)
            .with_ops_range(1, 1)
            .with_access(AccessDistribution::HotSpot {
                access_fraction: 0.9,
                item_fraction: 0.1,
            });
        let txns = WorkloadGenerator::new(params).generate();
        let hot_items: Vec<ItemId> = (0..2).map(|i| ItemId::new(format!("x{i}"))).collect();
        let hot_accesses = txns
            .iter()
            .flat_map(|t| t.operations.iter())
            .filter(|op| hot_items.contains(op.item()))
            .count();
        assert!(
            hot_accesses > 120,
            "expected most accesses on the hot set, got {hot_accesses}/200"
        );
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_item_universe_panics() {
        let params = WorkloadParams::default().with_items(Vec::new());
        WorkloadGenerator::new(params).generate();
    }

    #[test]
    fn ops_range_builder_enforces_ordering() {
        let params = WorkloadParams::default().with_ops_range(5, 2);
        assert_eq!(params.min_ops, 5);
        assert_eq!(params.max_ops, 5);
        let params = WorkloadParams::default().with_ops_range(0, 0);
        assert_eq!(params.min_ops, 1);
    }
}
