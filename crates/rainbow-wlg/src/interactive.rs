//! Conversational (interactive) workload profiles.
//!
//! The spec profiles in [`crate::profiles`] pre-declare every operation, but
//! the scenarios Rainbow was built to teach are *conversational*: read
//! something, decide, then write — a shape no pre-declared `TxnSpec` can
//! express. This module generates such conversations as data
//! ([`InteractiveScript`]s); the Session layer interprets each script
//! against a live interactive `Txn` handle, making the mid-transaction
//! decisions with the values the read quorums actually observed.
//!
//! Generation stays pure and seeded (like every other generator in this
//! crate), so interactive experiments are exactly as repeatable as spec
//! ones.

use rainbow_common::rng::{derive_seed, seeded_rng};
use rainbow_common::ItemId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Named conversational workload presets, generated alongside the existing
/// spec profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InteractiveProfile {
    /// Bank conversations: read a source balance and transfer only when the
    /// funds suffice (read-balance-then-conditionally-transfer). Exercises
    /// read→decide→read-modify-write chains and retry-on-conflict.
    ConditionalTransfer,
    /// Audit conversations: read a handful of items and flag an anomaly
    /// item only when their sum dips below a threshold. Mostly-read
    /// conversations whose single write depends on every value observed.
    AuditAndFlag,
    /// Inventory conversations: read a stock level and replenish it only
    /// when it fell below the low-water mark. Produces the classic
    /// shared→exclusive upgrade pattern on one item.
    Replenish,
}

impl InteractiveProfile {
    /// Every interactive profile, for sweeps.
    pub fn all() -> [InteractiveProfile; 3] {
        [
            InteractiveProfile::ConditionalTransfer,
            InteractiveProfile::AuditAndFlag,
            InteractiveProfile::Replenish,
        ]
    }

    /// Short name used in reports and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            InteractiveProfile::ConditionalTransfer => "conditional-transfer",
            InteractiveProfile::AuditAndFlag => "audit-and-flag",
            InteractiveProfile::Replenish => "replenish",
        }
    }

    /// Generates `transactions` conversations over the given item universe,
    /// deterministically from `seed`.
    pub fn generate(
        &self,
        items: &[ItemId],
        transactions: usize,
        seed: u64,
    ) -> Vec<InteractiveSpec> {
        assert!(!items.is_empty(), "interactive workloads need items");
        let mut rng = seeded_rng(derive_seed(seed, self.name()));
        (0..transactions)
            .map(|i| {
                let label = format!("{}-{i}", self.name());
                let script = match self {
                    InteractiveProfile::ConditionalTransfer => {
                        let source = items[rng.gen_range(0..items.len())].clone();
                        // A distinct target whenever the universe allows it.
                        let target = if items.len() == 1 {
                            source.clone()
                        } else {
                            loop {
                                let candidate = items[rng.gen_range(0..items.len())].clone();
                                if candidate != source {
                                    break candidate;
                                }
                            }
                        };
                        InteractiveScript::ConditionalTransfer {
                            source,
                            target,
                            amount: rng.gen_range(1..=40),
                        }
                    }
                    InteractiveProfile::AuditAndFlag => {
                        let span = if items.len() < 2 {
                            1
                        } else {
                            rng.gen_range(2..=items.len().min(5))
                        };
                        let first = rng.gen_range(0..items.len());
                        let inputs: Vec<ItemId> = (0..span)
                            .map(|k| items[(first + k) % items.len()].clone())
                            .collect();
                        let flag = items[rng.gen_range(0..items.len())].clone();
                        InteractiveScript::AuditAndFlag {
                            inputs,
                            flag,
                            threshold: rng.gen_range(50..300),
                        }
                    }
                    InteractiveProfile::Replenish => InteractiveScript::Replenish {
                        item: items[rng.gen_range(0..items.len())].clone(),
                        low_water: rng.gen_range(50..150),
                        refill: rng.gen_range(10..60),
                    },
                };
                InteractiveSpec { label, script }
            })
            .collect()
    }
}

/// One generated conversation: a label plus the decision script the Session
/// layer interprets against a live `Txn` handle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractiveSpec {
    /// Human-readable label used in reports.
    pub label: String,
    /// The conversation's decision script.
    pub script: InteractiveScript,
}

/// A conversational transaction described as data: every variant reads
/// first, then decides its writes from the values observed mid-transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InteractiveScript {
    /// Read `source`; when its balance covers `amount`, move the amount to
    /// `target` (two read-modify-writes), otherwise just audit.
    ConditionalTransfer {
        /// The account read (and debited when covered).
        source: ItemId,
        /// The credited account.
        target: ItemId,
        /// The amount to move.
        amount: i64,
    },
    /// Read every input; when their sum dips below `threshold`, record the
    /// observed sum in `flag`.
    AuditAndFlag {
        /// Items to read.
        inputs: Vec<ItemId>,
        /// Item written when the anomaly triggers.
        flag: ItemId,
        /// The anomaly threshold.
        threshold: i64,
    },
    /// Read `item`; when it fell below `low_water`, add `refill`.
    Replenish {
        /// The stock item.
        item: ItemId,
        /// The low-water mark.
        low_water: i64,
        /// Units added on replenishment.
        refill: i64,
    },
}

impl InteractiveScript {
    /// Items this conversation may read.
    pub fn read_set(&self) -> Vec<ItemId> {
        match self {
            InteractiveScript::ConditionalTransfer { source, .. } => vec![source.clone()],
            InteractiveScript::AuditAndFlag { inputs, .. } => inputs.clone(),
            InteractiveScript::Replenish { item, .. } => vec![item.clone()],
        }
    }

    /// Items this conversation may write (depending on what it observes).
    pub fn potential_write_set(&self) -> Vec<ItemId> {
        match self {
            InteractiveScript::ConditionalTransfer { source, target, .. } => {
                vec![source.clone(), target.clone()]
            }
            InteractiveScript::AuditAndFlag { flag, .. } => vec![flag.clone()],
            InteractiveScript::Replenish { item, .. } => vec![item.clone()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<ItemId> {
        (0..n).map(|i| ItemId::new(format!("x{i}"))).collect()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for profile in InteractiveProfile::all() {
            let a = profile.generate(&items(8), 12, 42);
            let b = profile.generate(&items(8), 12, 42);
            assert_eq!(a, b, "same seed must reproduce {}", profile.name());
            let c = profile.generate(&items(8), 12, 43);
            assert_ne!(a, c, "different seeds should differ for {}", profile.name());
            assert_eq!(a.len(), 12);
        }
    }

    #[test]
    fn transfers_use_distinct_accounts_when_possible() {
        let specs = InteractiveProfile::ConditionalTransfer.generate(&items(6), 50, 7);
        for spec in &specs {
            let InteractiveScript::ConditionalTransfer {
                source,
                target,
                amount,
            } = &spec.script
            else {
                panic!("wrong script kind");
            };
            assert_ne!(source, target);
            assert!(*amount > 0);
        }
    }

    #[test]
    fn scripts_expose_their_footprints() {
        let script = InteractiveScript::ConditionalTransfer {
            source: ItemId::new("a"),
            target: ItemId::new("b"),
            amount: 10,
        };
        assert_eq!(script.read_set(), vec![ItemId::new("a")]);
        assert_eq!(
            script.potential_write_set(),
            vec![ItemId::new("a"), ItemId::new("b")]
        );
        let audit = InteractiveScript::AuditAndFlag {
            inputs: vec![ItemId::new("a"), ItemId::new("b")],
            flag: ItemId::new("f"),
            threshold: 10,
        };
        assert_eq!(audit.read_set().len(), 2);
        assert_eq!(audit.potential_write_set(), vec![ItemId::new("f")]);
    }

    #[test]
    fn single_item_universe_degrades_gracefully() {
        for profile in InteractiveProfile::all() {
            let specs = profile.generate(&items(1), 5, 3);
            assert_eq!(specs.len(), 5, "{}", profile.name());
        }
    }
}
