//! Manual workload composition (the Figure A-2 panel).

use rainbow_common::txn::TxnSpec;
use rainbow_common::{Operation, SiteId, Value};

/// Builder for hand-composed workloads: the programmatic equivalent of the
/// "Manual Workload Generation" panel, where a student types individual
/// read/write operations and submits them.
#[derive(Debug, Default)]
pub struct ManualWorkloadBuilder {
    finished: Vec<TxnSpec>,
    current: Option<TxnSpec>,
}

impl ManualWorkloadBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ManualWorkloadBuilder::default()
    }

    /// Starts a new transaction with the given label; any transaction in
    /// progress is finished first.
    pub fn begin(mut self, label: impl Into<String>) -> Self {
        self.finish_current();
        self.current = Some(TxnSpec::new(label, Vec::new()));
        self
    }

    /// Adds a read operation to the current transaction.
    pub fn read(mut self, item: impl Into<rainbow_common::ItemId>) -> Self {
        self.push(Operation::read(item));
        self
    }

    /// Adds a write operation to the current transaction.
    pub fn write(
        mut self,
        item: impl Into<rainbow_common::ItemId>,
        value: impl Into<Value>,
    ) -> Self {
        self.push(Operation::write(item, value));
        self
    }

    /// Adds an increment operation to the current transaction.
    pub fn increment(mut self, item: impl Into<rainbow_common::ItemId>, delta: i64) -> Self {
        self.push(Operation::increment(item, delta));
        self
    }

    /// Pins the current transaction to a home site.
    pub fn at_site(mut self, site: SiteId) -> Self {
        if let Some(current) = self.current.as_mut() {
            current.home = Some(site);
        }
        self
    }

    /// Finishes the current transaction (no-op when none is open).
    pub fn end(mut self) -> Self {
        self.finish_current();
        self
    }

    /// Returns every composed transaction.
    pub fn build(mut self) -> Vec<TxnSpec> {
        self.finish_current();
        self.finished
    }

    fn push(&mut self, op: Operation) {
        match self.current.as_mut() {
            Some(current) => current.operations.push(op),
            None => {
                let label = format!("manual-{}", self.finished.len() + 1);
                self.current = Some(TxnSpec::new(label, vec![op]));
            }
        }
    }

    fn finish_current(&mut self) {
        if let Some(current) = self.current.take() {
            if !current.is_empty() {
                self.finished.push(current);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::ItemId;

    #[test]
    fn builds_labelled_transactions_in_order() {
        let txns = ManualWorkloadBuilder::new()
            .begin("transfer")
            .read("a")
            .read("b")
            .write("a", 90i64)
            .write("b", 110i64)
            .begin("audit")
            .read("a")
            .read("b")
            .build();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].label, "transfer");
        assert_eq!(txns[0].operations.len(), 4);
        assert_eq!(txns[1].label, "audit");
        assert!(txns[1].is_read_only());
    }

    #[test]
    fn operations_without_begin_get_an_implicit_transaction() {
        let txns = ManualWorkloadBuilder::new()
            .read("x")
            .increment("y", 5)
            .build();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].label, "manual-1");
        assert_eq!(txns[0].write_set(), vec![ItemId::new("y")]);
    }

    #[test]
    fn at_site_pins_the_home_site() {
        let txns = ManualWorkloadBuilder::new()
            .begin("pinned")
            .read("x")
            .at_site(SiteId(2))
            .build();
        assert_eq!(txns[0].home, Some(SiteId(2)));
    }

    #[test]
    fn empty_transactions_are_dropped() {
        let txns = ManualWorkloadBuilder::new()
            .begin("empty")
            .begin("real")
            .read("x")
            .end()
            .build();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].label, "real");
    }

    #[test]
    fn end_is_idempotent() {
        let txns = ManualWorkloadBuilder::new()
            .begin("t")
            .read("x")
            .end()
            .end()
            .build();
        assert_eq!(txns.len(), 1);
    }
}
