//! # rainbow-storage
//!
//! Per-site storage substrate of the Rainbow reproduction: a versioned,
//! in-memory item store backed by a write-ahead log, with crash and
//! recovery simulation.
//!
//! The original Rainbow paper does not describe its storage layer in detail
//! (the Java demo keeps copies in memory), but atomic commitment and the
//! fault-injection experiments need something real to force and recover:
//!
//! * the two-phase-commit participant must *force* a prepare record before
//!   voting YES and must be able to find in-doubt transactions after a
//!   crash;
//! * quorum consensus needs per-copy **version numbers** that survive site
//!   recovery;
//! * the failure-injection experiments (DESIGN.md E-FAIL) crash sites in the
//!   middle of transactions and expect committed data to survive and
//!   uncommitted data to disappear.
//!
//! The model is therefore: a volatile [`store::VersionedStore`] (lost on
//! crash) plus a durable log behind the pluggable [`engine::StorageEngine`]
//! trait, and a [`recovery`] module that rebuilds the store from the log
//! and reports in-doubt transactions to the commit layer.
//!
//! Two engines implement the trait: the original in-memory simulated WAL
//! ([`engine::MemoryEngine`], the fast deterministic default) and an
//! on-disk log-structured engine ([`disk::DiskEngine`]) with CRC-checked
//! segment files, group-commit fsync batching, rotation/compaction and
//! power-loss recovery (torn or corrupt tails are truncated; mid-log
//! damage is a typed [`rainbow_common::RainbowError::CorruptLog`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod disk;
pub mod engine;
pub mod recovery;
pub mod store;
pub mod wal;

pub use disk::DiskEngine;
pub use engine::{EngineKind, MemoryEngine, PowerLossFault, StorageConfig, StorageEngine};
pub use recovery::{recover, replay, RecoveryOutcome};
pub use store::{CopyState, SiteStorage, VersionedStore};
pub use wal::{LogRecord, LogSequence, WriteAheadLog};
