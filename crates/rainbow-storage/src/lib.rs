//! # rainbow-storage
//!
//! Per-site storage substrate of the Rainbow reproduction: a versioned,
//! in-memory item store backed by a write-ahead log, with crash and
//! recovery simulation.
//!
//! The original Rainbow paper does not describe its storage layer in detail
//! (the Java demo keeps copies in memory), but atomic commitment and the
//! fault-injection experiments need something real to force and recover:
//!
//! * the two-phase-commit participant must *force* a prepare record before
//!   voting YES and must be able to find in-doubt transactions after a
//!   crash;
//! * quorum consensus needs per-copy **version numbers** that survive site
//!   recovery;
//! * the failure-injection experiments (DESIGN.md E-FAIL) crash sites in the
//!   middle of transactions and expect committed data to survive and
//!   uncommitted data to disappear.
//!
//! The model is therefore: a volatile [`store::VersionedStore`] (lost on
//! crash) plus a durable [`wal::WriteAheadLog`] (survives crash), and a
//! [`recovery`] module that rebuilds the store from the log and reports
//! in-doubt transactions to the commit layer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod recovery;
pub mod store;
pub mod wal;

pub use recovery::{recover, RecoveryOutcome};
pub use store::{CopyState, SiteStorage, VersionedStore};
pub use wal::{LogRecord, LogSequence, WriteAheadLog};
