//! The pluggable storage-engine boundary.
//!
//! A [`StorageEngine`] is the durable half of a site: everything below the
//! versioned in-memory store. Two engines implement it:
//!
//! * [`MemoryEngine`] — the original simulated WAL ([`WriteAheadLog`]):
//!   fast, deterministic, "durability" is a forced prefix of a `Vec`. The
//!   default for tests and protocol experiments.
//! * [`crate::disk::DiskEngine`] — append-only CRC-checked segment files
//!   with group-commit fsync batching, rotation and compaction. The engine
//!   the power-loss chaos runs against.
//!
//! Engine selection and tuning live in [`StorageConfig`], which rides in
//! `ClusterConfig` so a whole cluster (and the nemesis) can be pointed at
//! either engine with one knob or the `RAINBOW_ENGINE` environment
//! variable.

use crate::recovery::RecoveryOutcome;
use crate::wal::{LogRecord, WriteAheadLog};
use rainbow_common::{ItemId, RainbowResult, Value, Version};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which engine implementation a site runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The in-memory simulated WAL (fast, deterministic default).
    Memory,
    /// The on-disk log-structured engine (real files, real fsync).
    Disk,
}

impl EngineKind {
    /// Stable lowercase name (matches the `RAINBOW_ENGINE` values).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Memory => "memory",
            EngineKind::Disk => "disk",
        }
    }
}

/// What a power loss does to the bytes that were in flight when the plug
/// was pulled. `Clean` models the lucky case (the last write completed);
/// the other two model the torn and bit-flipped tails that CRC-checked
/// recovery exists to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerLossFault {
    /// Volatile state is lost; the durable log is intact.
    Clean,
    /// The record being written when power died reached the disk only
    /// partially: the active segment ends mid-frame.
    TornWrite,
    /// The record reached the disk complete but damaged: the active
    /// segment ends with a full frame whose CRC cannot match.
    CorruptWrite,
}

impl PowerLossFault {
    /// Every fault, in severity order — what the nemesis samples from.
    pub const ALL: [PowerLossFault; 3] = [
        PowerLossFault::Clean,
        PowerLossFault::TornWrite,
        PowerLossFault::CorruptWrite,
    ];

    /// Stable lowercase name used in schedules and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PowerLossFault::Clean => "clean",
            PowerLossFault::TornWrite => "torn-write",
            PowerLossFault::CorruptWrite => "corrupt-write",
        }
    }
}

/// Storage-engine selection and tuning for every site of a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageConfig {
    /// Which engine to run.
    pub engine: EngineKind,
    /// Root directory for disk engines; each site stores its segments in
    /// `<data_dir>/site-<id>/`. Required when `engine` is
    /// [`EngineKind::Disk`], ignored for memory.
    pub data_dir: Option<PathBuf>,
    /// Coalesce concurrent forced appends into one `fsync` (group commit).
    /// When off, every forced append pays its own sync — the baseline the
    /// storage benchmark compares against.
    pub fsync_batching: bool,
    /// Rotate the active segment once it grows past this many bytes.
    pub segment_max_bytes: u64,
    /// Compact (checkpoint into a fresh segment, drop the old ones) once
    /// the total on-disk log grows past this many bytes.
    pub compaction_threshold_bytes: u64,
    /// Remove the data directory when the cluster shuts down. Set by
    /// [`StorageConfig::from_env`] for throwaway test runs; leave `false`
    /// to keep data across restarts.
    pub ephemeral: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig::memory()
    }
}

static EPHEMERAL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

impl StorageConfig {
    /// The in-memory engine (the fast deterministic default).
    pub fn memory() -> Self {
        StorageConfig {
            engine: EngineKind::Memory,
            data_dir: None,
            fsync_batching: true,
            segment_max_bytes: 4 << 20,
            compaction_threshold_bytes: 8 << 20,
            ephemeral: false,
        }
    }

    /// The disk engine rooted at `data_dir`.
    pub fn disk(data_dir: impl Into<PathBuf>) -> Self {
        StorageConfig {
            engine: EngineKind::Disk,
            data_dir: Some(data_dir.into()),
            ..StorageConfig::memory()
        }
    }

    /// Engine selection from the `RAINBOW_ENGINE` environment variable:
    /// `disk` gives a disk engine in a fresh ephemeral directory under the
    /// system temp dir (removed at cluster shutdown); anything else (or
    /// unset) gives the memory engine. This is how the CI matrix points
    /// the whole test suite at either engine without touching code.
    pub fn from_env() -> Self {
        match std::env::var("RAINBOW_ENGINE").as_deref() {
            Ok("disk") => {
                let seq = EPHEMERAL_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
                let dir =
                    std::env::temp_dir().join(format!("rainbow-data-{}-{seq}", std::process::id()));
                StorageConfig {
                    ephemeral: true,
                    ..StorageConfig::disk(dir)
                }
            }
            _ => StorageConfig::memory(),
        }
    }

    /// Disables group-commit fsync batching (benchmark baseline).
    pub fn without_fsync_batching(mut self) -> Self {
        self.fsync_batching = false;
        self
    }

    /// Overrides the segment rotation size.
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes;
        self
    }

    /// Overrides the compaction threshold.
    pub fn with_compaction_threshold(mut self, bytes: u64) -> Self {
        self.compaction_threshold_bytes = bytes;
        self
    }

    /// Checks internal consistency (a disk engine needs a directory).
    pub fn validate(&self) -> RainbowResult<()> {
        if self.engine == EngineKind::Disk && self.data_dir.is_none() {
            return Err(rainbow_common::RainbowError::InvalidConfig(
                "disk storage engine requires a data_dir".to_string(),
            ));
        }
        if self.segment_max_bytes == 0 || self.compaction_threshold_bytes == 0 {
            return Err(rainbow_common::RainbowError::InvalidConfig(
                "segment and compaction sizes must be non-zero".to_string(),
            ));
        }
        Ok(())
    }
}

/// The durable log interface a site's storage runs against.
///
/// Forced appends are the commit path's "write and flush": the engine must
/// not acknowledge them before the record would survive a power loss. The
/// memory engine simulates that with a forced-prefix marker; the disk
/// engine pays a real `fsync`.
pub trait StorageEngine: Send + Sync + std::fmt::Debug {
    /// Which engine this is.
    fn kind(&self) -> EngineKind;

    /// Appends a record without forcing it; it may be lost on power loss.
    fn append(&self, record: LogRecord);

    /// Appends a record and forces the log up to and including it. Returns
    /// only once the record is durable.
    fn append_forced(&self, record: LogRecord);

    /// Appends several records and forces the log once for the whole
    /// group, returning only when every record is durable. Semantically
    /// equivalent to forcing each record in order, but an engine can pay a
    /// single sync for the multi-transaction batch — this is how the
    /// group-commit pipeline hands a reactor tick's commit-time records to
    /// the fsync batcher as one unit instead of relying on lucky timing.
    fn append_forced_many(&self, records: Vec<LogRecord>) {
        if records.is_empty() {
            return;
        }
        for record in records {
            self.append(record);
        }
        self.force();
    }

    /// Forces everything appended so far.
    fn force(&self);

    /// Number of force (sync) operations performed. With group commit this
    /// is the number of *batches*, not the number of forced appends.
    fn force_count(&self) -> u64;

    /// Number of records currently in the log (durable or not).
    fn record_count(&self) -> usize;

    /// Total bytes the log occupies on disk (0 for the memory engine).
    fn log_bytes(&self) -> u64;

    /// Writes a checkpoint of `state` and compacts the log, retaining
    /// undecided prepares.
    fn checkpoint(&self, state: Vec<(ItemId, Value, Version)>);

    /// True when the log has grown enough that the caller should
    /// checkpoint soon.
    fn wants_compaction(&self) -> bool;

    /// (Re)opens the durable log and replays it: rebuilds the committed
    /// state and the in-doubt transaction set, truncating a torn or
    /// corrupt tail. Mid-log damage is a [`rainbow_common::RainbowError::CorruptLog`].
    fn recover(&self) -> RainbowResult<RecoveryOutcome>;

    /// Pulls the plug: all volatile engine state (buffers, unforced
    /// records) is lost; only what was synced survives. `fault` optionally
    /// injects a torn or corrupt tail into the durable log, as a real
    /// power loss would. The engine stays "off" until [`StorageEngine::recover`].
    fn power_loss(&self, fault: PowerLossFault);

    /// Flushes and syncs everything buffered (clean-shutdown path).
    fn flush_and_sync(&self) -> RainbowResult<()>;
}

/// The in-memory engine: the original simulated [`WriteAheadLog`].
#[derive(Debug, Default)]
pub struct MemoryEngine {
    log: WriteAheadLog,
}

impl MemoryEngine {
    /// A fresh, empty memory engine.
    pub fn new() -> Self {
        MemoryEngine::default()
    }

    /// The underlying simulated WAL (tests inspect record streams).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.log
    }
}

impl StorageEngine for MemoryEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Memory
    }

    fn append(&self, record: LogRecord) {
        self.log.append(record);
    }

    fn append_forced(&self, record: LogRecord) {
        self.log.append_forced(record);
    }

    fn force(&self) {
        self.log.force();
    }

    fn force_count(&self) -> u64 {
        self.log.force_count()
    }

    fn record_count(&self) -> usize {
        self.log.len()
    }

    fn log_bytes(&self) -> u64 {
        0
    }

    fn checkpoint(&self, state: Vec<(ItemId, Value, Version)>) {
        self.log.checkpoint(state);
    }

    fn wants_compaction(&self) -> bool {
        false
    }

    fn recover(&self) -> RainbowResult<RecoveryOutcome> {
        Ok(crate::recovery::recover(&self.log))
    }

    fn power_loss(&self, _fault: PowerLossFault) {
        // There are no real bytes to tear or flip; losing the unforced
        // tail is the whole fault model.
        self.log.simulate_crash();
    }

    fn flush_and_sync(&self) -> RainbowResult<()> {
        self.log.force();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::{SiteId, TxnId};

    #[test]
    fn config_defaults_and_builders() {
        let config = StorageConfig::default();
        assert_eq!(config.engine, EngineKind::Memory);
        assert!(config.fsync_batching);
        assert!(config.validate().is_ok());

        let disk = StorageConfig::disk("/tmp/somewhere")
            .without_fsync_batching()
            .with_segment_max_bytes(1024)
            .with_compaction_threshold(4096);
        assert_eq!(disk.engine, EngineKind::Disk);
        assert!(!disk.fsync_batching);
        assert_eq!(disk.segment_max_bytes, 1024);
        assert_eq!(disk.compaction_threshold_bytes, 4096);
        assert!(disk.validate().is_ok());

        let broken = StorageConfig {
            engine: EngineKind::Disk,
            data_dir: None,
            ..StorageConfig::memory()
        };
        assert!(broken.validate().is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EngineKind::Memory.name(), "memory");
        assert_eq!(EngineKind::Disk.name(), "disk");
        assert_eq!(PowerLossFault::Clean.name(), "clean");
        assert_eq!(PowerLossFault::TornWrite.name(), "torn-write");
        assert_eq!(PowerLossFault::CorruptWrite.name(), "corrupt-write");
    }

    #[test]
    fn memory_engine_power_loss_drops_unforced_tail() {
        let engine = MemoryEngine::new();
        let txn = TxnId::new(SiteId(0), 1);
        engine.append_forced(LogRecord::Commit {
            txn,
            writes: vec![],
        });
        engine.append(LogRecord::Begin {
            txn: TxnId::new(SiteId(0), 2),
        });
        assert_eq!(engine.record_count(), 2);
        engine.power_loss(PowerLossFault::TornWrite);
        assert_eq!(engine.record_count(), 1);
        let outcome = engine.recover().unwrap();
        assert_eq!(outcome.replayed_records, 1);
        assert_eq!(engine.kind(), EngineKind::Memory);
        assert_eq!(engine.log_bytes(), 0);
        assert!(!engine.wants_compaction());
        assert!(engine.flush_and_sync().is_ok());
    }
}
