//! Crash recovery: rebuilding a site's committed state from its write-ahead
//! log and reporting in-doubt transactions.
//!
//! Recovery replays the durable log front to back:
//!
//! 1. the latest [`LogRecord::Checkpoint`] (if any) seeds the committed
//!    state;
//! 2. every [`LogRecord::Commit`] after it re-installs its writes (replay is
//!    idempotent — installing the same `(value, version)` twice is a no-op in
//!    effect);
//! 3. every [`LogRecord::Prepare`] without a later commit or abort leaves an
//!    **in-doubt** transaction, which the atomic-commit layer must resolve by
//!    asking the coordinator (or cohorts) for the decision.

use crate::store::CopyState;
use crate::wal::{LogRecord, WriteAheadLog};
use rainbow_common::{ItemId, TxnId, Value, Version};
use std::collections::BTreeMap;

/// A transaction found prepared but undecided in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct InDoubtTxn {
    /// The transaction.
    pub txn: TxnId,
    /// The writes it prepared; applied if the decision turns out to be
    /// commit.
    pub writes: Vec<(ItemId, Value, Version)>,
}

/// The result of replaying the log.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOutcome {
    /// The recovered committed state.
    pub state: BTreeMap<ItemId, CopyState>,
    /// Prepared-but-undecided transactions.
    pub in_doubt: Vec<InDoubtTxn>,
    /// Number of log records replayed.
    pub replayed_records: usize,
}

/// Replays the durable portion of `log` and returns the recovered state and
/// in-doubt transaction list.
///
/// The replay borrows the log's record buffer in place
/// ([`WriteAheadLog::with_durable_records`]) instead of cloning the whole
/// durable prefix: only the writes that actually survive into the recovered
/// state (checkpoint snapshots, winning commits, in-doubt prepares) are
/// copied out.
pub fn recover(log: &WriteAheadLog) -> RecoveryOutcome {
    log.with_durable_records(replay)
}

/// Replays a slice of log records front to back. This is the pure core of
/// recovery shared by both engines: the memory engine hands it the forced
/// prefix of its record vector, the disk engine the records it decoded
/// from its segment files.
pub fn replay(records: &[LogRecord]) -> RecoveryOutcome {
    {
        let mut state: BTreeMap<ItemId, CopyState> = BTreeMap::new();
        let mut prepared: BTreeMap<TxnId, Vec<(ItemId, Value, Version)>> = BTreeMap::new();
        let replayed_records = records.len();

        for record in records {
            match record {
                LogRecord::Checkpoint { state: snapshot } => {
                    // A checkpoint supersedes everything replayed so far.
                    state = snapshot
                        .iter()
                        .map(|(item, value, version)| {
                            (
                                item.clone(),
                                CopyState {
                                    value: value.clone(),
                                    version: *version,
                                },
                            )
                        })
                        .collect();
                    prepared.clear();
                }
                LogRecord::Begin { .. } => {}
                LogRecord::Prepare { txn, writes } => {
                    prepared.insert(*txn, writes.clone());
                }
                LogRecord::Commit { txn, writes } => {
                    prepared.remove(txn);
                    for (item, value, version) in writes {
                        // Only move versions forward: replaying an old commit
                        // after a newer checkpoint must not regress state.
                        let newer = state
                            .get(item)
                            .map(|existing| *version >= existing.version)
                            .unwrap_or(true);
                        if newer {
                            state.insert(
                                item.clone(),
                                CopyState {
                                    value: value.clone(),
                                    version: *version,
                                },
                            );
                        }
                    }
                }
                LogRecord::Abort { txn } => {
                    prepared.remove(txn);
                }
            }
        }

        let in_doubt = prepared
            .into_iter()
            .map(|(txn, writes)| InDoubtTxn { txn, writes })
            .collect();

        RecoveryOutcome {
            state,
            in_doubt,
            replayed_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    #[test]
    fn empty_log_recovers_to_empty_state() {
        let log = WriteAheadLog::new();
        let outcome = recover(&log);
        assert!(outcome.state.is_empty());
        assert!(outcome.in_doubt.is_empty());
        assert_eq!(outcome.replayed_records, 0);
    }

    #[test]
    fn commits_after_checkpoint_are_applied_in_order() {
        let log = WriteAheadLog::new();
        log.checkpoint(vec![(item("x"), Value::Int(0), Version(0))]);
        log.append_forced(LogRecord::Commit {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        });
        log.append_forced(LogRecord::Commit {
            txn: txn(2),
            writes: vec![(item("x"), Value::Int(2), Version(2))],
        });
        let outcome = recover(&log);
        assert_eq!(
            outcome.state.get(&item("x")).unwrap(),
            &CopyState {
                value: Value::Int(2),
                version: Version(2)
            }
        );
        assert!(outcome.in_doubt.is_empty());
        assert_eq!(outcome.replayed_records, 3);
    }

    #[test]
    fn replay_is_idempotent() {
        let log = WriteAheadLog::new();
        log.checkpoint(vec![(item("x"), Value::Int(0), Version(0))]);
        log.append_forced(LogRecord::Commit {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(5), Version(1))],
        });
        let once = recover(&log);
        let twice = recover(&log);
        assert_eq!(once.state, twice.state);
    }

    #[test]
    fn old_commits_do_not_regress_newer_checkpoint_state() {
        let log = WriteAheadLog::new();
        // A commit record with an older version than the checkpointed state
        // (can happen if the checkpoint logic retains undecided prepares and
        // a stale commit is replayed afterwards in contrived orders).
        log.checkpoint(vec![(item("x"), Value::Int(9), Version(5))]);
        log.append_forced(LogRecord::Commit {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        });
        let outcome = recover(&log);
        assert_eq!(
            outcome.state.get(&item("x")).unwrap().version,
            Version(5),
            "older version must not overwrite newer state"
        );
    }

    #[test]
    fn prepared_without_decision_is_in_doubt() {
        let log = WriteAheadLog::new();
        log.checkpoint(vec![(item("x"), Value::Int(0), Version(0))]);
        log.append_forced(LogRecord::Prepare {
            txn: txn(7),
            writes: vec![(item("x"), Value::Int(7), Version(1))],
        });
        let outcome = recover(&log);
        assert_eq!(outcome.in_doubt.len(), 1);
        assert_eq!(outcome.in_doubt[0].txn, txn(7));
        // State unchanged.
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(0));
    }

    #[test]
    fn prepared_then_decided_is_not_in_doubt() {
        let log = WriteAheadLog::new();
        log.append_forced(LogRecord::Prepare {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        });
        log.append_forced(LogRecord::Commit {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        });
        log.append_forced(LogRecord::Prepare {
            txn: txn(2),
            writes: vec![(item("x"), Value::Int(2), Version(2))],
        });
        log.append(LogRecord::Abort { txn: txn(2) });
        log.force();
        let outcome = recover(&log);
        assert!(outcome.in_doubt.is_empty());
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(1));
    }

    #[test]
    fn checkpoint_clears_earlier_prepares() {
        let log = WriteAheadLog::new();
        log.append_forced(LogRecord::Prepare {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        });
        // The checkpoint method itself preserves undecided prepares, but a raw
        // Checkpoint record in the stream resets replay state; simulate a
        // fully-decided world by appending a checkpoint record directly.
        log.append_forced(LogRecord::Checkpoint {
            state: vec![(item("x"), Value::Int(1), Version(1))],
        });
        let outcome = recover(&log);
        assert!(outcome.in_doubt.is_empty());
        assert_eq!(outcome.state.get(&item("x")).unwrap().version, Version(1));
    }

    #[test]
    fn unforced_records_are_not_replayed() {
        let log = WriteAheadLog::new();
        log.append_forced(LogRecord::Commit {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        });
        log.append(LogRecord::Commit {
            txn: txn(2),
            writes: vec![(item("x"), Value::Int(2), Version(2))],
        });
        // No force, then crash.
        log.simulate_crash();
        let outcome = recover(&log);
        assert_eq!(outcome.state.get(&item("x")).unwrap().value, Value::Int(1));
    }
}
