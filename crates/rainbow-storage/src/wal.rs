//! The write-ahead log.
//!
//! The log is the *durable* half of a Rainbow site: it survives simulated
//! crashes while the in-memory store does not. Records are appended in
//! order and the commit layer *forces* the log (a no-op flush in this
//! in-memory simulation, but the call sites are exactly where a real system
//! would `fsync`) before acknowledging prepares and commits.

use parking_lot::Mutex;
use rainbow_common::{ItemId, TxnId, Value, Version};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Position of a record in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogSequence(pub u64);

/// One log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A transaction started at this site (home or participant).
    Begin {
        /// The transaction.
        txn: TxnId,
    },
    /// A participant prepared: the staged writes are durably recorded so the
    /// transaction can be committed after a crash if the coordinator decides
    /// commit.
    Prepare {
        /// The transaction.
        txn: TxnId,
        /// The staged writes `(item, new value, new version)`.
        writes: Vec<(ItemId, Value, Version)>,
    },
    /// The transaction committed at this site; its staged writes are now
    /// part of the database state.
    Commit {
        /// The transaction.
        txn: TxnId,
        /// The writes installed by the commit.
        writes: Vec<(ItemId, Value, Version)>,
    },
    /// The transaction aborted at this site; staged writes are discarded.
    Abort {
        /// The transaction.
        txn: TxnId,
    },
    /// A checkpoint: the complete committed state at the time of the
    /// checkpoint. Recovery starts from the latest checkpoint.
    Checkpoint {
        /// Snapshot of every item's committed value and version.
        state: Vec<(ItemId, Value, Version)>,
    },
}

impl LogRecord {
    /// The transaction the record belongs to, when any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Prepare { txn, .. }
            | LogRecord::Commit { txn, .. }
            | LogRecord::Abort { txn } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }

    /// Short label used in debugging output and log-size statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            LogRecord::Begin { .. } => "BEGIN",
            LogRecord::Prepare { .. } => "PREPARE",
            LogRecord::Commit { .. } => "COMMIT",
            LogRecord::Abort { .. } => "ABORT",
            LogRecord::Checkpoint { .. } => "CHECKPOINT",
        }
    }
}

/// An append-only, thread-safe write-ahead log.
///
/// Clones share the same underlying log (it is an `Arc` internally), so the
/// storage engine, the commit participant and the recovery routine can all
/// hold handles.
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog {
    inner: Arc<Mutex<LogInner>>,
}

#[derive(Debug, Default)]
struct LogInner {
    records: Vec<LogRecord>,
    forced_up_to: usize,
    force_count: u64,
}

impl WriteAheadLog {
    /// An empty log.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Appends a record and returns its sequence number. The record is in
    /// the log buffer but not yet forced.
    pub fn append(&self, record: LogRecord) -> LogSequence {
        let mut inner = self.inner.lock();
        inner.records.push(record);
        LogSequence(inner.records.len() as u64 - 1)
    }

    /// Appends a record and forces the log up to and including it. This is
    /// the "write and flush" path used for prepare and commit records.
    pub fn append_forced(&self, record: LogRecord) -> LogSequence {
        let mut inner = self.inner.lock();
        inner.records.push(record);
        inner.forced_up_to = inner.records.len();
        inner.force_count += 1;
        LogSequence(inner.records.len() as u64 - 1)
    }

    /// Forces everything appended so far.
    pub fn force(&self) {
        let mut inner = self.inner.lock();
        inner.forced_up_to = inner.records.len();
        inner.force_count += 1;
    }

    /// Number of records in the log (forced or not).
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of force (flush) operations performed, an indicator of commit
    /// path I/O cost reported by the ACP ablation experiment.
    pub fn force_count(&self) -> u64 {
        self.inner.lock().force_count
    }

    /// A copy of every record that would survive a crash, i.e. the forced
    /// prefix of the log. Unforced tail records are lost by
    /// [`WriteAheadLog::simulate_crash`]. Prefer
    /// [`WriteAheadLog::with_durable_records`] on hot paths — this method
    /// clones the whole prefix.
    pub fn durable_records(&self) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        inner.records[..inner.forced_up_to].to_vec()
    }

    /// Runs `f` over the durable (forced) prefix of the log **without
    /// copying it**. The log's lock is held for the duration of `f`.
    pub fn with_durable_records<R>(&self, f: impl FnOnce(&[LogRecord]) -> R) -> R {
        let inner = self.inner.lock();
        f(&inner.records[..inner.forced_up_to])
    }

    /// A copy of every record including the unforced tail (used by tests and
    /// debugging tools).
    pub fn all_records(&self) -> Vec<LogRecord> {
        self.inner.lock().records.clone()
    }

    /// Simulates a crash: the unforced tail of the log is lost, mirroring a
    /// real system losing its in-memory log buffer.
    pub fn simulate_crash(&self) {
        let mut inner = self.inner.lock();
        let keep = inner.forced_up_to;
        inner.records.truncate(keep);
    }

    /// Writes a checkpoint record containing `state` and forces it, then
    /// truncates everything *before* the checkpoint (log compaction).
    pub fn checkpoint(&self, state: Vec<(ItemId, Value, Version)>) {
        let mut inner = self.inner.lock();
        // Keep records of transactions that might still be in doubt: simply
        // retain every record after the last checkpoint that is a Prepare
        // without a matching Commit/Abort. For simplicity and safety we keep
        // all records from transactions that are not yet decided.
        let undecided: Vec<LogRecord> = {
            let mut decided: std::collections::BTreeSet<TxnId> = std::collections::BTreeSet::new();
            for record in &inner.records {
                match record {
                    LogRecord::Commit { txn, .. } | LogRecord::Abort { txn } => {
                        decided.insert(*txn);
                    }
                    _ => {}
                }
            }
            inner
                .records
                .iter()
                .filter(|r| match r {
                    LogRecord::Prepare { txn, .. } => !decided.contains(txn),
                    _ => false,
                })
                .cloned()
                .collect()
        };
        inner.records.clear();
        inner.records.push(LogRecord::Checkpoint { state });
        inner.records.extend(undecided);
        inner.forced_up_to = inner.records.len();
        inner.force_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainbow_common::SiteId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn item(name: &str) -> ItemId {
        ItemId::new(name)
    }

    #[test]
    fn append_assigns_increasing_sequence_numbers() {
        let log = WriteAheadLog::new();
        assert!(log.is_empty());
        let a = log.append(LogRecord::Begin { txn: txn(1) });
        let b = log.append(LogRecord::Abort { txn: txn(1) });
        assert!(a < b);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn unforced_tail_is_lost_on_crash() {
        let log = WriteAheadLog::new();
        log.append_forced(LogRecord::Begin { txn: txn(1) });
        log.append(LogRecord::Begin { txn: txn(2) }); // not forced
        assert_eq!(log.len(), 2);
        assert_eq!(log.durable_records().len(), 1);

        log.simulate_crash();
        assert_eq!(log.len(), 1);
        assert_eq!(log.all_records()[0].txn(), Some(txn(1)));
    }

    #[test]
    fn force_makes_tail_durable() {
        let log = WriteAheadLog::new();
        log.append(LogRecord::Begin { txn: txn(1) });
        log.force();
        log.simulate_crash();
        assert_eq!(log.len(), 1);
        assert_eq!(log.force_count(), 1);
    }

    #[test]
    fn append_forced_counts_forces() {
        let log = WriteAheadLog::new();
        log.append_forced(LogRecord::Begin { txn: txn(1) });
        log.append_forced(LogRecord::Commit {
            txn: txn(1),
            writes: vec![],
        });
        assert_eq!(log.force_count(), 2);
    }

    #[test]
    fn record_accessors() {
        let r = LogRecord::Prepare {
            txn: txn(3),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        };
        assert_eq!(r.txn(), Some(txn(3)));
        assert_eq!(r.kind(), "PREPARE");
        let c = LogRecord::Checkpoint { state: vec![] };
        assert_eq!(c.txn(), None);
        assert_eq!(c.kind(), "CHECKPOINT");
        assert_eq!(LogRecord::Begin { txn: txn(1) }.kind(), "BEGIN");
        assert_eq!(
            LogRecord::Commit {
                txn: txn(1),
                writes: vec![]
            }
            .kind(),
            "COMMIT"
        );
        assert_eq!(LogRecord::Abort { txn: txn(1) }.kind(), "ABORT");
    }

    #[test]
    fn checkpoint_compacts_but_keeps_undecided_prepares() {
        let log = WriteAheadLog::new();
        // T1 fully decided, T2 prepared but in doubt.
        log.append_forced(LogRecord::Prepare {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        });
        log.append_forced(LogRecord::Commit {
            txn: txn(1),
            writes: vec![(item("x"), Value::Int(1), Version(1))],
        });
        log.append_forced(LogRecord::Prepare {
            txn: txn(2),
            writes: vec![(item("y"), Value::Int(2), Version(1))],
        });

        log.checkpoint(vec![(item("x"), Value::Int(1), Version(1))]);
        let records = log.durable_records();
        assert_eq!(records.len(), 2, "checkpoint + in-doubt prepare expected");
        assert!(matches!(records[0], LogRecord::Checkpoint { .. }));
        assert!(matches!(&records[1], LogRecord::Prepare { txn: t, .. } if *t == txn(2)));
    }

    #[test]
    fn clones_share_the_same_log() {
        let log = WriteAheadLog::new();
        let clone = log.clone();
        clone.append_forced(LogRecord::Begin { txn: txn(9) });
        assert_eq!(log.len(), 1);
    }
}
